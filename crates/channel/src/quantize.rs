//! Quantisation of channel LLRs into the decoder's fixed-point message format.
//!
//! The ASIC datapath of the paper carries 8-bit messages (Fig. 3 shows 8-bit
//! buses throughout the SISO core). Channel LLRs are therefore quantised with
//! a uniform, saturating quantiser before entering the decoder. The quantiser
//! is described by the total word width `W` and the number of fractional bits
//! `F`: representable values are `k · 2^-F` for integer `k` in
//! `[-(2^{W-1} - 1), 2^{W-1} - 1]` (the most negative code is unused so the
//! range is symmetric, as is customary for LLR datapaths).

/// A uniform symmetric saturating LLR quantiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlrQuantizer {
    word_bits: u32,
    frac_bits: u32,
}

impl Default for LlrQuantizer {
    /// The paper's datapath format: 8-bit words with 2 fractional bits.
    fn default() -> Self {
        LlrQuantizer::new(8, 2)
    }
}

impl LlrQuantizer {
    /// Creates a quantiser with `word_bits` total bits and `frac_bits`
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ word_bits ≤ 16` and `frac_bits < word_bits`.
    #[must_use]
    pub fn new(word_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&word_bits) && frac_bits < word_bits,
            "invalid quantiser format W={word_bits}, F={frac_bits}"
        );
        LlrQuantizer {
            word_bits,
            frac_bits,
        }
    }

    /// Total word width in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The quantisation step `2^-F`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (0.5f64).powi(self.frac_bits as i32)
    }

    /// Largest representable integer code, `2^{W-1} − 1`.
    #[must_use]
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.word_bits - 1)) - 1
    }

    /// Largest representable LLR magnitude.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.max_code() as f64 * self.step()
    }

    /// Quantises one LLR to its integer code (saturating).
    #[must_use]
    pub fn quantize_to_code(&self, llr: f64) -> i32 {
        let scaled = (llr / self.step()).round();
        let max = self.max_code() as f64;
        scaled.clamp(-max, max) as i32
    }

    /// Quantises one LLR to the nearest representable value (saturating).
    #[must_use]
    pub fn quantize(&self, llr: f64) -> f64 {
        self.quantize_to_code(llr) as f64 * self.step()
    }

    /// Reconstructs the real value of an integer code.
    #[must_use]
    pub fn dequantize(&self, code: i32) -> f64 {
        code as f64 * self.step()
    }

    /// Quantises a slice of LLRs to integer codes.
    #[must_use]
    pub fn quantize_all_to_codes(&self, llrs: &[f64]) -> Vec<i32> {
        llrs.iter().map(|&l| self.quantize_to_code(l)).collect()
    }

    /// Quantises a slice of LLRs to representable values.
    #[must_use]
    pub fn quantize_all(&self, llrs: &[f64]) -> Vec<f64> {
        llrs.iter().map(|&l| self.quantize(l)).collect()
    }

    /// Normalises one frame of raw channel LLRs into the representable range
    /// and quantises it in place, returning the applied gain.
    ///
    /// Raw LLRs (`2y/σ²`) grow without bound as the SNR improves; fed
    /// straight into an 8-bit fixed-point decoder they *all* clip to the
    /// saturation code, which erases the relative reliability ordering
    /// between strong and weak bits — exactly the information belief
    /// propagation feeds on. This is the software analogue of the receiver's
    /// automatic gain control: when the frame's peak magnitude exceeds
    /// [`LlrQuantizer::max_value`], every LLR is scaled by
    /// `max_value / peak` (one common gain per frame, so the ordering and all
    /// relative magnitudes survive); frames already in range pass through
    /// with gain 1. The result is then rounded to representable values, so
    /// downstream fixed-point conversion is exact — except that non-zero
    /// inputs which would round to zero are rounded *away* from zero to
    /// ±1 LSB instead: collapsing a weak LLR to `+0.0` would erase its sign
    /// (the one bit of prior information it carries), which the fixed-point
    /// decoders' sign-magnitude datapaths go out of their way to preserve.
    pub fn normalize_in_place(&self, llrs: &mut [f64]) -> f64 {
        let peak = llrs.iter().fold(0.0f64, |m, &l| m.max(l.abs()));
        let gain = if peak > self.max_value() {
            self.max_value() / peak
        } else {
            1.0
        };
        for l in llrs.iter_mut() {
            let scaled = *l * gain;
            let q = self.quantize(scaled);
            // (NaN is excluded explicitly: `NaN != 0.0` is true, but NaN
            // carries no sign worth preserving and must stay 0.)
            *l = if q == 0.0 && scaled != 0.0 && !scaled.is_nan() {
                self.step().copysign(scaled)
            } else {
                q
            };
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_8_bit_q2() {
        let q = LlrQuantizer::default();
        assert_eq!(q.word_bits(), 8);
        assert_eq!(q.frac_bits(), 2);
        assert!((q.step() - 0.25).abs() < 1e-12);
        assert_eq!(q.max_code(), 127);
        assert!((q.max_value() - 31.75).abs() < 1e-12);
    }

    #[test]
    fn quantisation_is_saturating_and_symmetric() {
        let q = LlrQuantizer::default();
        assert_eq!(q.quantize_to_code(1000.0), 127);
        assert_eq!(q.quantize_to_code(-1000.0), -127);
        assert!((q.quantize(1000.0) - 31.75).abs() < 1e-12);
        assert!((q.quantize(-1000.0) + 31.75).abs() < 1e-12);
    }

    #[test]
    fn small_values_round_to_nearest_step() {
        let q = LlrQuantizer::default();
        assert!((q.quantize(0.1) - 0.0).abs() < 1e-12);
        assert!((q.quantize(0.13) - 0.25).abs() < 1e-12);
        assert!((q.quantize(-0.38) + 0.5).abs() < 1e-12);
        assert_eq!(q.quantize_to_code(0.25), 1);
    }

    #[test]
    fn quantize_dequantize_round_trip() {
        let q = LlrQuantizer::new(6, 2);
        for code in -31..=31 {
            let v = q.dequantize(code);
            assert_eq!(q.quantize_to_code(v), code);
        }
    }

    #[test]
    fn quantisation_error_is_bounded_by_half_step() {
        let q = LlrQuantizer::default();
        for i in -200..=200 {
            let x = i as f64 * 0.0937;
            let err = (q.quantize(x) - x).abs();
            if x.abs() < q.max_value() {
                assert!(err <= q.step() / 2.0 + 1e-12, "error {err} at {x}");
            }
        }
    }

    #[test]
    fn batch_quantisation_matches_scalar() {
        let q = LlrQuantizer::default();
        let xs = vec![0.3, -4.7, 100.0, -0.1];
        let codes = q.quantize_all_to_codes(&xs);
        let vals = q.quantize_all(&xs);
        for ((x, c), v) in xs.iter().zip(&codes).zip(&vals) {
            assert_eq!(*c, q.quantize_to_code(*x));
            assert!((v - q.quantize(*x)).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_scales_saturating_frames_and_preserves_ordering() {
        let q = LlrQuantizer::default();
        // High-SNR frame: strong bits at ±300, one weak (wrong-sign) bit at
        // -40 — raw quantisation would clip both to ±31.75 and erase the
        // reliability gap.
        let mut llrs = vec![300.0, -300.0, -40.0, 150.0];
        let gain = q.normalize_in_place(&mut llrs);
        assert!((gain - q.max_value() / 300.0).abs() < 1e-12);
        assert!((llrs[0] - q.max_value()).abs() < 1e-12, "peak maps to max");
        assert!((llrs[1] + q.max_value()).abs() < 1e-12);
        assert!(
            llrs[2].abs() < llrs[3].abs() && llrs[3].abs() < llrs[0].abs(),
            "relative ordering survives: {llrs:?}"
        );
        // The weak bit stays clearly below saturation.
        assert!(llrs[2].abs() < 0.5 * q.max_value());
        // Every value is exactly representable.
        for &l in &llrs {
            assert_eq!(q.quantize(l), l);
        }
    }

    #[test]
    fn normalize_never_erases_the_sign_of_weak_llrs() {
        // A weak LLR rounding to zero must keep its sign as ±1 LSB: the
        // fixed-point decoders remap the zero code by the *sign of the f64*
        // they receive, and `-0.1 → +0.0` would hard-flip the bit's prior.
        let q = LlrQuantizer::default();
        let mut llrs = vec![-0.1, 0.1, 0.0, -300.0, 0.002];
        q.normalize_in_place(&mut llrs);
        assert_eq!(llrs[0], -q.step(), "weak negative keeps its sign");
        assert_eq!(llrs[1], q.step());
        assert_eq!(llrs[2], 0.0, "exact zero stays zero");
        assert_eq!(llrs[3], -q.max_value());
        // Scaled-to-tiny values (0.002 · gain) also keep their sign.
        assert_eq!(llrs[4], q.step());
        let mut nan = vec![f64::NAN, 40.0];
        q.normalize_in_place(&mut nan);
        assert_eq!(nan[0], 0.0, "NaN maps to zero, not ±1 LSB");
    }

    #[test]
    fn normalize_passes_in_range_frames_through() {
        let q = LlrQuantizer::default();
        let mut llrs = vec![3.25, -0.5, 7.75, -31.75];
        let original = llrs.clone();
        let gain = q.normalize_in_place(&mut llrs);
        assert_eq!(gain, 1.0);
        assert_eq!(llrs, original, "representable in-range values unchanged");
        // In-range but unrepresentable values are rounded, not scaled.
        let mut odd = vec![1.13, -2.06];
        assert_eq!(q.normalize_in_place(&mut odd), 1.0);
        assert_eq!(odd, vec![1.25, -2.0]);
    }

    #[test]
    #[should_panic(expected = "invalid quantiser")]
    fn rejects_bad_format() {
        let _ = LlrQuantizer::new(4, 4);
    }
}
