//! Quantisation of channel LLRs into the decoder's fixed-point message format.
//!
//! The ASIC datapath of the paper carries 8-bit messages (Fig. 3 shows 8-bit
//! buses throughout the SISO core). Channel LLRs are therefore quantised with
//! a uniform, saturating quantiser before entering the decoder. The quantiser
//! is described by the total word width `W` and the number of fractional bits
//! `F`: representable values are `k · 2^-F` for integer `k` in
//! `[-(2^{W-1} - 1), 2^{W-1} - 1]` (the most negative code is unused so the
//! range is symmetric, as is customary for LLR datapaths).

/// A uniform symmetric saturating LLR quantiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlrQuantizer {
    word_bits: u32,
    frac_bits: u32,
}

impl Default for LlrQuantizer {
    /// The paper's datapath format: 8-bit words with 2 fractional bits.
    fn default() -> Self {
        LlrQuantizer::new(8, 2)
    }
}

impl LlrQuantizer {
    /// Creates a quantiser with `word_bits` total bits and `frac_bits`
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ word_bits ≤ 16` and `frac_bits < word_bits`.
    #[must_use]
    pub fn new(word_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&word_bits) && frac_bits < word_bits,
            "invalid quantiser format W={word_bits}, F={frac_bits}"
        );
        LlrQuantizer {
            word_bits,
            frac_bits,
        }
    }

    /// Total word width in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The quantisation step `2^-F`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (0.5f64).powi(self.frac_bits as i32)
    }

    /// Largest representable integer code, `2^{W-1} − 1`.
    #[must_use]
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.word_bits - 1)) - 1
    }

    /// Largest representable LLR magnitude.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.max_code() as f64 * self.step()
    }

    /// Quantises one LLR to its integer code (saturating).
    #[must_use]
    pub fn quantize_to_code(&self, llr: f64) -> i32 {
        let scaled = (llr / self.step()).round();
        let max = self.max_code() as f64;
        scaled.clamp(-max, max) as i32
    }

    /// Quantises one LLR to the nearest representable value (saturating).
    #[must_use]
    pub fn quantize(&self, llr: f64) -> f64 {
        self.quantize_to_code(llr) as f64 * self.step()
    }

    /// Reconstructs the real value of an integer code.
    #[must_use]
    pub fn dequantize(&self, code: i32) -> f64 {
        code as f64 * self.step()
    }

    /// Quantises a slice of LLRs to integer codes.
    #[must_use]
    pub fn quantize_all_to_codes(&self, llrs: &[f64]) -> Vec<i32> {
        llrs.iter().map(|&l| self.quantize_to_code(l)).collect()
    }

    /// Quantises a slice of LLRs to representable values.
    #[must_use]
    pub fn quantize_all(&self, llrs: &[f64]) -> Vec<f64> {
        llrs.iter().map(|&l| self.quantize(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_8_bit_q2() {
        let q = LlrQuantizer::default();
        assert_eq!(q.word_bits(), 8);
        assert_eq!(q.frac_bits(), 2);
        assert!((q.step() - 0.25).abs() < 1e-12);
        assert_eq!(q.max_code(), 127);
        assert!((q.max_value() - 31.75).abs() < 1e-12);
    }

    #[test]
    fn quantisation_is_saturating_and_symmetric() {
        let q = LlrQuantizer::default();
        assert_eq!(q.quantize_to_code(1000.0), 127);
        assert_eq!(q.quantize_to_code(-1000.0), -127);
        assert!((q.quantize(1000.0) - 31.75).abs() < 1e-12);
        assert!((q.quantize(-1000.0) + 31.75).abs() < 1e-12);
    }

    #[test]
    fn small_values_round_to_nearest_step() {
        let q = LlrQuantizer::default();
        assert!((q.quantize(0.1) - 0.0).abs() < 1e-12);
        assert!((q.quantize(0.13) - 0.25).abs() < 1e-12);
        assert!((q.quantize(-0.38) + 0.5).abs() < 1e-12);
        assert_eq!(q.quantize_to_code(0.25), 1);
    }

    #[test]
    fn quantize_dequantize_round_trip() {
        let q = LlrQuantizer::new(6, 2);
        for code in -31..=31 {
            let v = q.dequantize(code);
            assert_eq!(q.quantize_to_code(v), code);
        }
    }

    #[test]
    fn quantisation_error_is_bounded_by_half_step() {
        let q = LlrQuantizer::default();
        for i in -200..=200 {
            let x = i as f64 * 0.0937;
            let err = (q.quantize(x) - x).abs();
            if x.abs() < q.max_value() {
                assert!(err <= q.step() / 2.0 + 1e-12, "error {err} at {x}");
            }
        }
    }

    #[test]
    fn batch_quantisation_matches_scalar() {
        let q = LlrQuantizer::default();
        let xs = vec![0.3, -4.7, 100.0, -0.1];
        let codes = q.quantize_all_to_codes(&xs);
        let vals = q.quantize_all(&xs);
        for ((x, c), v) in xs.iter().zip(&codes).zip(&vals) {
            assert_eq!(*c, q.quantize_to_code(*x));
            assert!((v - q.quantize(*x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid quantiser")]
    fn rejects_bad_format() {
        let _ = LlrQuantizer::new(4, 4);
    }
}
