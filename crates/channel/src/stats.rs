//! Error-rate and iteration statistics.
//!
//! The power experiments of the paper (Fig. 9a) are driven by the *average
//! number of decoding iterations* at each operating point, and the error-rate
//! experiments by BER/FER. These accumulators collect both.

use std::fmt;

/// Accumulator for bit- and frame-error counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorCounter {
    bit_errors: u64,
    bits: u64,
    frame_errors: u64,
    frames: u64,
}

impl ErrorCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoded frame: the number of bit errors among `bits`
    /// compared bits.
    pub fn record_frame(&mut self, bit_errors: usize, bits: usize) {
        self.bit_errors += bit_errors as u64;
        self.bits += bits as u64;
        self.frames += 1;
        if bit_errors > 0 {
            self.frame_errors += 1;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &ErrorCounter) {
        self.bit_errors += other.bit_errors;
        self.bits += other.bits;
        self.frame_errors += other.frame_errors;
        self.frames += other.frames;
    }

    /// Total frames recorded.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total frames that contained at least one bit error.
    #[must_use]
    pub fn frame_errors(&self) -> u64 {
        self.frame_errors
    }

    /// Total bit errors recorded.
    #[must_use]
    pub fn bit_errors(&self) -> u64 {
        self.bit_errors
    }

    /// Bit-error rate (0 if nothing recorded).
    #[must_use]
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Frame-error rate (0 if nothing recorded).
    #[must_use]
    pub fn fer(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.frame_errors as f64 / self.frames as f64
        }
    }
}

impl fmt::Display for ErrorCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BER {:.3e} ({}/{} bits), FER {:.3e} ({}/{} frames)",
            self.ber(),
            self.bit_errors,
            self.bits,
            self.fer(),
            self.frame_errors,
            self.frames
        )
    }
}

/// Histogram of the number of iterations the decoder executed per frame.
///
/// Average iterations directly drive the dynamic-power estimate of the early
/// termination experiment (Fig. 9a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationHistogram {
    counts: Vec<u64>,
    total_frames: u64,
    total_iterations: u64,
}

impl IterationHistogram {
    /// Creates a histogram able to record up to `max_iterations`.
    #[must_use]
    pub fn new(max_iterations: usize) -> Self {
        IterationHistogram {
            counts: vec![0; max_iterations + 1],
            total_frames: 0,
            total_iterations: 0,
        }
    }

    /// Records one frame that used `iterations` full iterations.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` exceeds the histogram capacity.
    pub fn record(&mut self, iterations: usize) {
        assert!(
            iterations < self.counts.len(),
            "iteration count {iterations} exceeds histogram capacity {}",
            self.counts.len() - 1
        );
        self.counts[iterations] += 1;
        self.total_frames += 1;
        self.total_iterations += iterations as u64;
    }

    /// Number of frames recorded.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.total_frames
    }

    /// Average iterations per frame (0 if empty).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.total_frames == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.total_frames as f64
        }
    }

    /// Number of frames that used exactly `iterations` iterations.
    #[must_use]
    pub fn count(&self, iterations: usize) -> u64 {
        self.counts.get(iterations).copied().unwrap_or(0)
    }

    /// The maximum iteration count this histogram can record.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.counts.len() - 1
    }
}

/// One point of an `Eb/N0` sweep: error rates plus iteration statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SnrPoint {
    /// `Eb/N0` in dB.
    pub ebn0_db: f64,
    /// Bit/frame error counts at this point.
    pub errors: ErrorCounter,
    /// Iteration histogram at this point.
    pub iterations: IterationHistogram,
}

impl SnrPoint {
    /// Creates an empty point for the given `Eb/N0`.
    #[must_use]
    pub fn new(ebn0_db: f64, max_iterations: usize) -> Self {
        SnrPoint {
            ebn0_db,
            errors: ErrorCounter::new(),
            iterations: IterationHistogram::new(max_iterations),
        }
    }
}

/// A full `Eb/N0` sweep (ordered list of [`SnrPoint`]s).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnrSweep {
    points: Vec<SnrPoint>,
}

impl SnrSweep {
    /// Creates a sweep over the given `Eb/N0` values (dB).
    #[must_use]
    pub fn over(ebn0_dbs: &[f64], max_iterations: usize) -> Self {
        SnrSweep {
            points: ebn0_dbs
                .iter()
                .map(|&e| SnrPoint::new(e, max_iterations))
                .collect(),
        }
    }

    /// The sweep points, in construction order.
    #[must_use]
    pub fn points(&self) -> &[SnrPoint] {
        &self.points
    }

    /// Mutable access to the sweep points.
    pub fn points_mut(&mut self) -> &mut [SnrPoint] {
        &mut self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_counter_rates() {
        let mut c = ErrorCounter::new();
        c.record_frame(0, 100);
        c.record_frame(5, 100);
        c.record_frame(0, 100);
        assert_eq!(c.frames(), 3);
        assert_eq!(c.frame_errors(), 1);
        assert_eq!(c.bit_errors(), 5);
        assert!((c.ber() - 5.0 / 300.0).abs() < 1e-12);
        assert!((c.fer() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_rates_are_zero() {
        let c = ErrorCounter::new();
        assert_eq!(c.ber(), 0.0);
        assert_eq!(c.fer(), 0.0);
        assert_eq!(c.frames(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ErrorCounter::new();
        a.record_frame(1, 10);
        let mut b = ErrorCounter::new();
        b.record_frame(2, 10);
        b.record_frame(0, 10);
        a.merge(&b);
        assert_eq!(a.frames(), 3);
        assert_eq!(a.bit_errors(), 3);
        assert_eq!(a.frame_errors(), 2);
    }

    #[test]
    fn display_contains_rates() {
        let mut c = ErrorCounter::new();
        c.record_frame(1, 2);
        let s = c.to_string();
        assert!(s.contains("BER"));
        assert!(s.contains("FER"));
    }

    #[test]
    fn iteration_histogram_average() {
        let mut h = IterationHistogram::new(10);
        h.record(2);
        h.record(4);
        h.record(10);
        assert_eq!(h.frames(), 3);
        assert!((h.average() - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds histogram capacity")]
    fn iteration_histogram_rejects_overflow() {
        let mut h = IterationHistogram::new(5);
        h.record(6);
    }

    #[test]
    fn snr_sweep_structure() {
        let sweep = SnrSweep::over(&[0.0, 1.0, 2.0], 10);
        assert_eq!(sweep.len(), 3);
        assert!(!sweep.is_empty());
        assert!((sweep.points()[1].ebn0_db - 1.0).abs() < 1e-12);
        let empty = SnrSweep::default();
        assert!(empty.is_empty());
    }
}
