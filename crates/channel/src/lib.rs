//! # ldpc-channel — modulation, channel and workload substrate
//!
//! The paper evaluates its decoder over BPSK-modulated AWGN channels (Fig. 9a
//! plots power versus `Eb/N0` for a 2304-bit code). This crate supplies that
//! substrate:
//!
//! * [`bpsk`] — BPSK mapping between bits and antipodal symbols,
//! * [`awgn`] — the additive white Gaussian noise channel parameterised by
//!   `Eb/N0` and code rate,
//! * [`llr`] — channel log-likelihood ratios `L_n = 2·y_n/σ²` with the
//!   paper's sign convention (`L ≥ 0 ⇒ bit 0`),
//! * [`quantize`] — uniform saturating quantisation of channel LLRs to the
//!   decoder's fixed-point message format,
//! * [`workload`] — frame generators that encode random information words,
//!   including the deterministic multi-code [`MixedTraffic`] stream used by
//!   the serving-layer harnesses,
//! * [`stats`] — BER / FER / iteration-count accumulators and Eb/N0 sweeps.
//!
//! ```
//! use ldpc_channel::{awgn::AwgnChannel, workload::FrameSource};
//! use ldpc_codes::{CodeId, CodeRate, Standard};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
//! let mut source = FrameSource::random(&code, 42)?;
//! let channel = AwgnChannel::from_ebn0_db(2.0, code.rate());
//! let frame = source.next_frame();
//! let llrs = channel.transmit(&frame.codeword, source.noise_rng());
//! assert_eq!(llrs.len(), 576);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgn;
pub mod bpsk;
pub mod llr;
pub mod quantize;
pub mod stats;
pub mod workload;

pub use awgn::AwgnChannel;
pub use quantize::LlrQuantizer;
pub use stats::{ErrorCounter, IterationHistogram, SnrPoint, SnrSweep};
pub use workload::{
    BurstProfile, Frame, FrameBlock, FrameSource, HarqTraffic, HarqTx, MixedTraffic, SnrProfile,
};
