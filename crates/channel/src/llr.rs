//! Channel log-likelihood ratios.
//!
//! For a BPSK symbol `x ∈ {+1, −1}` received as `y = x + n`, `n ~ N(0, σ²)`,
//! the a-priori LLR of the corresponding bit is
//!
//! ```text
//! L_n = log(P(x_n = 0 | y_n) / P(x_n = 1 | y_n)) = 2·y_n / σ²
//! ```
//!
//! which is exactly the initialisation used by Algorithm 1 of the paper.

/// Computes the channel LLR of one received value.
#[must_use]
pub fn channel_llr(y: f64, sigma: f64) -> f64 {
    2.0 * y / (sigma * sigma)
}

/// Computes channel LLRs for a slice of received values.
#[must_use]
pub fn channel_llrs(received: &[f64], sigma: f64) -> Vec<f64> {
    received.iter().map(|&y| channel_llr(y, sigma)).collect()
}

/// Hard decision on an LLR: `L ≥ 0 ⇒ 0`, `L < 0 ⇒ 1` (the paper's
/// `x̂_n = sign(L_n)` rule).
#[must_use]
pub fn hard_decision(llr: f64) -> u8 {
    u8::from(llr < 0.0)
}

/// Hard decisions for a slice of LLRs.
#[must_use]
pub fn hard_decisions(llrs: &[f64]) -> Vec<u8> {
    llrs.iter().map(|&l| hard_decision(l)).collect()
}

/// Counts how many hard decisions differ from a reference bit pattern.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn count_bit_errors(llrs: &[f64], reference: &[u8]) -> usize {
    assert_eq!(llrs.len(), reference.len(), "length mismatch");
    llrs.iter()
        .zip(reference)
        .filter(|(&l, &b)| hard_decision(l) != (b & 1))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llr_formula() {
        assert!((channel_llr(1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((channel_llr(-0.5, 0.5) - (-4.0)).abs() < 1e-12);
        let batch = channel_llrs(&[1.0, -1.0], 2.0);
        assert!((batch[0] - 0.5).abs() < 1e-12);
        assert!((batch[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn hard_decision_convention() {
        assert_eq!(hard_decision(3.2), 0);
        assert_eq!(hard_decision(0.0), 0);
        assert_eq!(hard_decision(-1e-9), 1);
        assert_eq!(hard_decisions(&[1.0, -1.0, 0.0]), vec![0, 1, 0]);
    }

    #[test]
    fn bit_error_counting() {
        let llrs = vec![1.0, -1.0, 2.0, -2.0];
        assert_eq!(count_bit_errors(&llrs, &[0, 1, 0, 1]), 0);
        assert_eq!(count_bit_errors(&llrs, &[1, 1, 0, 1]), 1);
        assert_eq!(count_bit_errors(&llrs, &[1, 0, 1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bit_error_counting_checks_lengths() {
        let _ = count_bit_errors(&[1.0], &[0, 1]);
    }

    #[test]
    fn llr_magnitude_grows_with_confidence() {
        let low_noise = channel_llr(1.0, 0.5);
        let high_noise = channel_llr(1.0, 2.0);
        assert!(low_noise > high_noise);
    }
}
