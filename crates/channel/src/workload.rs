//! Frame generation for decoder evaluation.
//!
//! A [`FrameSource`] produces the transmit-side workload of one Monte-Carlo
//! trial: an information word, the systematically encoded codeword and (via
//! [`crate::awgn::AwgnChannel`]) the channel LLRs the decoder sees. For
//! batched decoding, [`FrameSource::fill_block`] generates whole blocks of
//! frames and LLRs into flat reusable buffers ([`FrameBlock`]): bits are
//! drawn, encoded and transmitted directly into the block, so refilling a
//! same-shape block allocates nothing beyond the encoder's internal parity
//! scratch, and the LLR buffer is handed to the decode engine's batch API
//! as-is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::awgn::AwgnChannel;
use ldpc_codes::{CodeError, Encoder, QcCode};

/// One generated frame: the information bits and the encoded codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Information bits (length `n − m`).
    pub info: Vec<u8>,
    /// Systematic codeword (length `n`).
    pub codeword: Vec<u8>,
}

impl Frame {
    /// Number of information bits in the frame.
    #[must_use]
    pub fn info_len(&self) -> usize {
        self.info.len()
    }

    /// Codeword length in bits.
    #[must_use]
    pub fn codeword_len(&self) -> usize {
        self.codeword.len()
    }
}

/// Deterministic, seedable source of frames for a given code.
///
/// The source owns two independent RNG streams: one for the information bits
/// and one for channel noise, so that the same frames can be replayed under
/// different noise realisations (or vice versa).
#[derive(Debug, Clone)]
pub struct FrameSource {
    encoder: Encoder,
    all_zero: bool,
    data_rng: StdRng,
    noise_rng: StdRng,
    frames_generated: u64,
}

impl FrameSource {
    /// A source of frames carrying uniformly random information bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable (see
    /// [`ldpc_codes::Encoder::new`]).
    pub fn random(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        Ok(FrameSource {
            encoder: Encoder::new(code)?,
            all_zero: false,
            data_rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A),
            noise_rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            frames_generated: 0,
        })
    }

    /// A source that always transmits the all-zero codeword (standard practice
    /// for BER simulation of linear codes: performance is codeword
    /// independent, and the all-zero word avoids the encoder in the inner
    /// loop).
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable.
    pub fn all_zero(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        let mut source = Self::random(code, seed)?;
        source.all_zero = true;
        Ok(source)
    }

    /// The code frames are generated for.
    #[must_use]
    pub fn code(&self) -> &QcCode {
        self.encoder.code()
    }

    /// Number of frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Generates the next frame.
    pub fn next_frame(&mut self) -> Frame {
        self.frames_generated += 1;
        let info_len = self.code().info_bits();
        if self.all_zero {
            return Frame {
                info: vec![0; info_len],
                codeword: self.encoder.all_zero_codeword(),
            };
        }
        let info: Vec<u8> = (0..info_len)
            .map(|_| self.data_rng.gen_range(0..=1))
            .collect();
        let codeword = self
            .encoder
            .encode(&info)
            .expect("info length matches the code by construction");
        Frame { info, codeword }
    }

    /// The RNG stream reserved for channel noise, to be passed to
    /// [`crate::awgn::AwgnChannel::transmit`].
    pub fn noise_rng(&mut self) -> &mut StdRng {
        &mut self.noise_rng
    }

    /// Generates `frames` frames and their channel LLRs into `block`,
    /// reusing its buffers. Bits are drawn, encoded and transmitted directly
    /// into the block's flat buffers, so a same-shape refill allocates
    /// nothing beyond the encoder's internal parity scratch.
    ///
    /// The data and noise streams are drawn in exactly the same interleaving
    /// as a `next_frame` / `transmit` loop, so block generation reproduces
    /// the sequential workload bit for bit.
    pub fn fill_block(&mut self, channel: &AwgnChannel, frames: usize, block: &mut FrameBlock) {
        let n = self.code().n();
        let info_len = self.code().info_bits();
        block.reshape(frames, n, info_len);
        for i in 0..frames {
            self.frames_generated += 1;
            if !self.all_zero {
                let info = &mut block.infos[i * info_len..(i + 1) * info_len];
                for bit in info.iter_mut() {
                    *bit = self.data_rng.gen_range(0..=1);
                }
                self.encoder
                    .encode_into(
                        &block.infos[i * info_len..(i + 1) * info_len],
                        &mut block.codewords[i * n..(i + 1) * n],
                    )
                    .expect("info length matches the code by construction");
            }
            // (all-zero sources transmit the zeroed buffers as-is.)
            channel.transmit_into(
                &block.codewords[i * n..(i + 1) * n],
                &mut self.noise_rng,
                &mut block.llrs[i * n..(i + 1) * n],
            );
        }
    }

    /// Allocates and fills a fresh [`FrameBlock`] of `frames` frames.
    #[must_use]
    pub fn next_block(&mut self, channel: &AwgnChannel, frames: usize) -> FrameBlock {
        let mut block = FrameBlock::new();
        self.fill_block(channel, frames, &mut block);
        block
    }
}

/// A block of generated frames in flat (structure-of-arrays) layout:
/// `frames` consecutive information words, codewords and LLR frames.
///
/// The `llrs` buffer is exactly the shape the decode engine's batch API
/// expects (`frames · n` values, frame-major).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameBlock {
    frames: usize,
    n: usize,
    info_len: usize,
    /// Information bits, `frames · info_len` values.
    pub infos: Vec<u8>,
    /// Codewords, `frames · n` values.
    pub codewords: Vec<u8>,
    /// Channel LLRs, `frames · n` values.
    pub llrs: Vec<f64>,
}

impl FrameBlock {
    /// An empty block; buffers grow on first fill.
    #[must_use]
    pub fn new() -> Self {
        FrameBlock::default()
    }

    fn reshape(&mut self, frames: usize, n: usize, info_len: usize) {
        self.frames = frames;
        self.n = n;
        self.info_len = info_len;
        self.infos.clear();
        self.infos.resize(frames * info_len, 0);
        self.codewords.clear();
        self.codewords.resize(frames * n, 0);
        self.llrs.clear();
        self.llrs.resize(frames * n, 0.0);
    }

    /// Number of frames in the block.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Codeword length `n` of each frame.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Information bits per frame.
    #[must_use]
    pub fn info_len(&self) -> usize {
        self.info_len
    }

    /// The information bits of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn info(&self, i: usize) -> &[u8] {
        &self.infos[i * self.info_len..(i + 1) * self.info_len]
    }

    /// The codeword of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn codeword(&self, i: usize) -> &[u8] {
        &self.codewords[i * self.n..(i + 1) * self.n]
    }

    /// The channel LLRs of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn frame_llrs(&self, i: usize) -> &[f64] {
        &self.llrs[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::AwgnChannel;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn random_frames_are_valid_codewords() {
        let code = code();
        let mut src = FrameSource::random(&code, 1).unwrap();
        for _ in 0..5 {
            let frame = src.next_frame();
            assert_eq!(frame.info_len(), code.info_bits());
            assert_eq!(frame.codeword_len(), code.n());
            assert!(code.is_codeword(&frame.codeword).unwrap());
            assert_eq!(&frame.codeword[..code.info_bits()], frame.info.as_slice());
        }
        assert_eq!(src.frames_generated(), 5);
    }

    #[test]
    fn all_zero_source_transmits_zero() {
        let code = code();
        let mut src = FrameSource::all_zero(&code, 1).unwrap();
        let frame = src.next_frame();
        assert!(frame.codeword.iter().all(|&b| b == 0));
        assert!(frame.info.iter().all(|&b| b == 0));
    }

    #[test]
    fn same_seed_reproduces_frames() {
        let code = code();
        let mut a = FrameSource::random(&code, 99).unwrap();
        let mut b = FrameSource::random(&code, 99).unwrap();
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let code = code();
        let mut a = FrameSource::random(&code, 1).unwrap();
        let mut b = FrameSource::random(&code, 2).unwrap();
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn block_generation_matches_sequential_generation() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(2.5, code.rate());
        let frames = 4;

        // Sequential reference.
        let mut seq = FrameSource::random(&code, 33).unwrap();
        let mut seq_codewords = Vec::new();
        let mut seq_llrs = Vec::new();
        for _ in 0..frames {
            let frame = seq.next_frame();
            let llrs = channel.transmit(&frame.codeword, seq.noise_rng());
            seq_codewords.extend_from_slice(&frame.codeword);
            seq_llrs.extend_from_slice(&llrs);
        }

        // Batched generation from the same seed.
        let mut batched = FrameSource::random(&code, 33).unwrap();
        let block = batched.next_block(&channel, frames);
        assert_eq!(block.frames(), frames);
        assert_eq!(block.n(), code.n());
        assert_eq!(block.info_len(), code.info_bits());
        assert_eq!(block.codewords, seq_codewords);
        assert_eq!(block.llrs, seq_llrs);
        assert_eq!(batched.frames_generated(), frames as u64);
        for i in 0..frames {
            assert!(code.is_codeword(block.codeword(i)).unwrap());
            assert_eq!(&block.codeword(i)[..code.info_bits()], block.info(i));
            assert_eq!(
                block.frame_llrs(i),
                &seq_llrs[i * code.n()..(i + 1) * code.n()]
            );
        }
    }

    #[test]
    fn fill_block_reuses_buffers() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let mut source = FrameSource::all_zero(&code, 7).unwrap();
        let mut block = FrameBlock::new();
        source.fill_block(&channel, 6, &mut block);
        let ptrs = (
            block.infos.as_ptr(),
            block.codewords.as_ptr(),
            block.llrs.as_ptr(),
        );
        source.fill_block(&channel, 6, &mut block);
        assert_eq!(
            ptrs,
            (
                block.infos.as_ptr(),
                block.codewords.as_ptr(),
                block.llrs.as_ptr()
            ),
            "same-shape refill must not reallocate"
        );
        assert!(block.codewords.iter().all(|&b| b == 0));
    }

    #[test]
    fn noise_rng_is_independent_of_data_rng() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(2.0, code.rate());
        // Generating noise must not change the data stream.
        let mut a = FrameSource::random(&code, 5).unwrap();
        let mut b = FrameSource::random(&code, 5).unwrap();
        let _ = channel.transmit(&vec![0u8; code.n()], a.noise_rng());
        assert_eq!(a.next_frame(), b.next_frame());
    }
}
