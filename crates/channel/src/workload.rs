//! Frame generation for decoder evaluation.
//!
//! A [`FrameSource`] produces the transmit-side workload of one Monte-Carlo
//! trial: an information word, the systematically encoded codeword and (via
//! [`crate::awgn::AwgnChannel`]) the channel LLRs the decoder sees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ldpc_codes::{CodeError, Encoder, QcCode};

/// One generated frame: the information bits and the encoded codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Information bits (length `n − m`).
    pub info: Vec<u8>,
    /// Systematic codeword (length `n`).
    pub codeword: Vec<u8>,
}

impl Frame {
    /// Number of information bits in the frame.
    #[must_use]
    pub fn info_len(&self) -> usize {
        self.info.len()
    }

    /// Codeword length in bits.
    #[must_use]
    pub fn codeword_len(&self) -> usize {
        self.codeword.len()
    }
}

/// Deterministic, seedable source of frames for a given code.
///
/// The source owns two independent RNG streams: one for the information bits
/// and one for channel noise, so that the same frames can be replayed under
/// different noise realisations (or vice versa).
#[derive(Debug, Clone)]
pub struct FrameSource {
    encoder: Encoder,
    all_zero: bool,
    data_rng: StdRng,
    noise_rng: StdRng,
    frames_generated: u64,
}

impl FrameSource {
    /// A source of frames carrying uniformly random information bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable (see
    /// [`ldpc_codes::Encoder::new`]).
    pub fn random(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        Ok(FrameSource {
            encoder: Encoder::new(code)?,
            all_zero: false,
            data_rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A),
            noise_rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            frames_generated: 0,
        })
    }

    /// A source that always transmits the all-zero codeword (standard practice
    /// for BER simulation of linear codes: performance is codeword
    /// independent, and the all-zero word avoids the encoder in the inner
    /// loop).
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable.
    pub fn all_zero(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        let mut source = Self::random(code, seed)?;
        source.all_zero = true;
        Ok(source)
    }

    /// The code frames are generated for.
    #[must_use]
    pub fn code(&self) -> &QcCode {
        self.encoder.code()
    }

    /// Number of frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Generates the next frame.
    pub fn next_frame(&mut self) -> Frame {
        self.frames_generated += 1;
        let info_len = self.code().info_bits();
        if self.all_zero {
            return Frame {
                info: vec![0; info_len],
                codeword: self.encoder.all_zero_codeword(),
            };
        }
        let info: Vec<u8> = (0..info_len).map(|_| self.data_rng.gen_range(0..=1)).collect();
        let codeword = self
            .encoder
            .encode(&info)
            .expect("info length matches the code by construction");
        Frame { info, codeword }
    }

    /// The RNG stream reserved for channel noise, to be passed to
    /// [`crate::awgn::AwgnChannel::transmit`].
    pub fn noise_rng(&mut self) -> &mut StdRng {
        &mut self.noise_rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::AwgnChannel;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn random_frames_are_valid_codewords() {
        let code = code();
        let mut src = FrameSource::random(&code, 1).unwrap();
        for _ in 0..5 {
            let frame = src.next_frame();
            assert_eq!(frame.info_len(), code.info_bits());
            assert_eq!(frame.codeword_len(), code.n());
            assert!(code.is_codeword(&frame.codeword).unwrap());
            assert_eq!(&frame.codeword[..code.info_bits()], frame.info.as_slice());
        }
        assert_eq!(src.frames_generated(), 5);
    }

    #[test]
    fn all_zero_source_transmits_zero() {
        let code = code();
        let mut src = FrameSource::all_zero(&code, 1).unwrap();
        let frame = src.next_frame();
        assert!(frame.codeword.iter().all(|&b| b == 0));
        assert!(frame.info.iter().all(|&b| b == 0));
    }

    #[test]
    fn same_seed_reproduces_frames() {
        let code = code();
        let mut a = FrameSource::random(&code, 99).unwrap();
        let mut b = FrameSource::random(&code, 99).unwrap();
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let code = code();
        let mut a = FrameSource::random(&code, 1).unwrap();
        let mut b = FrameSource::random(&code, 2).unwrap();
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn noise_rng_is_independent_of_data_rng() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(2.0, code.rate());
        // Generating noise must not change the data stream.
        let mut a = FrameSource::random(&code, 5).unwrap();
        let mut b = FrameSource::random(&code, 5).unwrap();
        let _ = channel.transmit(&vec![0u8; code.n()], a.noise_rng());
        assert_eq!(a.next_frame(), b.next_frame());
    }
}
