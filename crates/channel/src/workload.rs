//! Frame generation for decoder evaluation.
//!
//! A [`FrameSource`] produces the transmit-side workload of one Monte-Carlo
//! trial: an information word, the systematically encoded codeword and (via
//! [`crate::awgn::AwgnChannel`]) the channel LLRs the decoder sees. For
//! batched decoding, [`FrameSource::fill_block`] generates whole blocks of
//! frames and LLRs into flat reusable buffers ([`FrameBlock`]): bits are
//! drawn, encoded and transmitted directly into the block, so refilling a
//! same-shape block allocates nothing beyond the encoder's internal parity
//! scratch, and the LLR buffer is handed to the decode engine's batch API
//! as-is.
//!
//! For serving-layer harnesses, [`MixedTraffic`] interleaves several
//! single-mode sources into one deterministic multi-code frame stream — the
//! workload a sharded decode service sees in production, where frames of
//! different standards and block lengths arrive mingled on one ingest path.
//!
//! [`HarqTraffic`] generates the retransmission-side analogue: a churning
//! population of HARQ sessions, each a codeword transmitted several times
//! under independent noise, interleaved across many user/process keys — the
//! adversarial workload a bounded soft-buffer store has to survive.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::awgn::AwgnChannel;
use ldpc_codes::{CodeError, CodeId, Encoder, QcCode};

/// One generated frame: the information bits and the encoded codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Information bits (length `n − m`).
    pub info: Vec<u8>,
    /// Systematic codeword (length `n`).
    pub codeword: Vec<u8>,
}

impl Frame {
    /// Number of information bits in the frame.
    #[must_use]
    pub fn info_len(&self) -> usize {
        self.info.len()
    }

    /// Codeword length in bits.
    #[must_use]
    pub fn codeword_len(&self) -> usize {
        self.codeword.len()
    }
}

/// Deterministic, seedable source of frames for a given code.
///
/// The source owns two independent RNG streams: one for the information bits
/// and one for channel noise, so that the same frames can be replayed under
/// different noise realisations (or vice versa).
#[derive(Debug, Clone)]
pub struct FrameSource {
    encoder: Encoder,
    all_zero: bool,
    data_rng: StdRng,
    noise_rng: StdRng,
    frames_generated: u64,
}

impl FrameSource {
    /// A source of frames carrying uniformly random information bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable (see
    /// [`ldpc_codes::Encoder::new`]).
    pub fn random(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        Ok(FrameSource {
            encoder: Encoder::new(code)?,
            all_zero: false,
            data_rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A),
            noise_rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            frames_generated: 0,
        })
    }

    /// A source that always transmits the all-zero codeword (standard practice
    /// for BER simulation of linear codes: performance is codeword
    /// independent, and the all-zero word avoids the encoder in the inner
    /// loop).
    ///
    /// # Errors
    ///
    /// Returns an error if the code is not encodable.
    pub fn all_zero(code: &QcCode, seed: u64) -> Result<Self, CodeError> {
        let mut source = Self::random(code, seed)?;
        source.all_zero = true;
        Ok(source)
    }

    /// The code frames are generated for.
    #[must_use]
    pub fn code(&self) -> &QcCode {
        self.encoder.code()
    }

    /// Number of frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Generates the next frame.
    pub fn next_frame(&mut self) -> Frame {
        self.frames_generated += 1;
        let info_len = self.code().info_bits();
        if self.all_zero {
            return Frame {
                info: vec![0; info_len],
                codeword: self.encoder.all_zero_codeword(),
            };
        }
        let info: Vec<u8> = (0..info_len)
            .map(|_| self.data_rng.gen_range(0..=1))
            .collect();
        let codeword = self
            .encoder
            .encode(&info)
            .expect("info length matches the code by construction");
        Frame { info, codeword }
    }

    /// The RNG stream reserved for channel noise, to be passed to
    /// [`crate::awgn::AwgnChannel::transmit`].
    pub fn noise_rng(&mut self) -> &mut StdRng {
        &mut self.noise_rng
    }

    /// Generates `frames` frames and their channel LLRs into `block`,
    /// reusing its buffers. Bits are drawn, encoded and transmitted directly
    /// into the block's flat buffers, so a same-shape refill allocates
    /// nothing beyond the encoder's internal parity scratch.
    ///
    /// The data and noise streams are drawn in exactly the same interleaving
    /// as a `next_frame` / `transmit` loop, so block generation reproduces
    /// the sequential workload bit for bit.
    pub fn fill_block(&mut self, channel: &AwgnChannel, frames: usize, block: &mut FrameBlock) {
        let n = self.code().n();
        let info_len = self.code().info_bits();
        block.reshape(frames, n, info_len);
        for i in 0..frames {
            self.frames_generated += 1;
            if !self.all_zero {
                let info = &mut block.infos[i * info_len..(i + 1) * info_len];
                for bit in info.iter_mut() {
                    *bit = self.data_rng.gen_range(0..=1);
                }
                self.encoder
                    .encode_into(
                        &block.infos[i * info_len..(i + 1) * info_len],
                        &mut block.codewords[i * n..(i + 1) * n],
                    )
                    .expect("info length matches the code by construction");
            }
            // (all-zero sources transmit the zeroed buffers as-is.)
            channel.transmit_into(
                &block.codewords[i * n..(i + 1) * n],
                &mut self.noise_rng,
                &mut block.llrs[i * n..(i + 1) * n],
            );
        }
    }

    /// Allocates and fills a fresh [`FrameBlock`] of `frames` frames.
    #[must_use]
    pub fn next_block(&mut self, channel: &AwgnChannel, frames: usize) -> FrameBlock {
        let mut block = FrameBlock::new();
        self.fill_block(channel, frames, &mut block);
        block
    }
}

/// A block of generated frames in flat (structure-of-arrays) layout:
/// `frames` consecutive information words, codewords and LLR frames.
///
/// The `llrs` buffer is exactly the shape the decode engine's batch API
/// expects (`frames · n` values, frame-major).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameBlock {
    frames: usize,
    n: usize,
    info_len: usize,
    /// Information bits, `frames · info_len` values.
    pub infos: Vec<u8>,
    /// Codewords, `frames · n` values.
    pub codewords: Vec<u8>,
    /// Channel LLRs, `frames · n` values.
    pub llrs: Vec<f64>,
}

impl FrameBlock {
    /// An empty block; buffers grow on first fill.
    #[must_use]
    pub fn new() -> Self {
        FrameBlock::default()
    }

    fn reshape(&mut self, frames: usize, n: usize, info_len: usize) {
        self.frames = frames;
        self.n = n;
        self.info_len = info_len;
        self.infos.clear();
        self.infos.resize(frames * info_len, 0);
        self.codewords.clear();
        self.codewords.resize(frames * n, 0);
        self.llrs.clear();
        self.llrs.resize(frames * n, 0.0);
    }

    /// Number of frames in the block.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Codeword length `n` of each frame.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Information bits per frame.
    #[must_use]
    pub fn info_len(&self) -> usize {
        self.info_len
    }

    /// The information bits of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn info(&self, i: usize) -> &[u8] {
        &self.infos[i * self.info_len..(i + 1) * self.info_len]
    }

    /// The codeword of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn codeword(&self, i: usize) -> &[u8] {
        &self.codewords[i * self.n..(i + 1) * self.n]
    }

    /// The channel LLRs of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frames()`.
    #[must_use]
    pub fn frame_llrs(&self, i: usize) -> &[f64] {
        &self.llrs[i * self.n..(i + 1) * self.n]
    }
}

/// Arrival shaping for an offered-load harness: frames arrive in
/// back-to-back bursts of `burst` frames separated by idle `gap`s, instead
/// of an even trickle. This is the tail-latency workload an SLO-scheduled
/// serving tier has to survive — a burst fills a shard's queue faster than
/// one batch can drain it, so micro-batching, deadline slack and load
/// shedding all get exercised; a steady stream exercises none of them.
///
/// The profile is a pure pacing function: `gap_before(i)` tells the
/// producer how long to idle before submitting frame `i`. Frame content is
/// unaffected, so the same [`MixedTraffic`] stream stays bit-identical
/// whatever the shaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstProfile {
    /// Frames per burst; `0` or `1` degenerates to steady arrivals when the
    /// gap is zero, or a fixed inter-frame gap otherwise.
    pub burst: usize,
    /// Idle time between bursts.
    pub gap: Duration,
}

impl BurstProfile {
    /// Steady back-to-back arrivals: no bursts, no idle gaps.
    #[must_use]
    pub fn steady() -> Self {
        BurstProfile {
            burst: 0,
            gap: Duration::ZERO,
        }
    }

    /// Bursts of `burst` back-to-back frames separated by `gap` of idle.
    #[must_use]
    pub fn new(burst: usize, gap: Duration) -> Self {
        BurstProfile { burst, gap }
    }

    /// How long the producer should idle before submitting frame `index`
    /// (0-based), or `None` when the frame belongs to the current burst.
    /// The first frame never waits.
    #[must_use]
    pub fn gap_before(&self, index: u64) -> Option<Duration> {
        if index == 0 || self.gap.is_zero() {
            return None;
        }
        if self.burst <= 1 || index.is_multiple_of(self.burst as u64) {
            Some(self.gap)
        } else {
            None
        }
    }
}

/// Per-mode SNR behaviour of a [`MixedTraffic`] mode: every frame at one
/// fixed operating point, or a weighted mixture of points — the realistic
/// easy/hard frame mix a serving deployment sees, where users sit at
/// different distances from the cell.
#[derive(Debug, Clone, PartialEq)]
pub enum SnrProfile {
    /// Every frame of the mode transmits at this Eb/N0 (dB).
    Fixed(f64),
    /// Each frame independently draws its Eb/N0 from these `(ebn0_db,
    /// weight)` points, with probability proportional to weight. The draw
    /// comes from a dedicated per-mode RNG seeded from the stream seed, so
    /// the SNR sequence is deterministic and independent of the data and
    /// noise streams.
    Mixed(Vec<(f64, u32)>),
}

impl SnrProfile {
    /// The classic serving mix this repo benchmarks the decoder cascade
    /// against: cell-edge 2 dB, mid-cell 4 dB and near-cell 6 dB frames at
    /// 1 : 3 : 6 weights (mostly-easy traffic with a hard tail).
    #[must_use]
    pub fn serving_mix() -> Self {
        SnrProfile::Mixed(vec![(2.0, 1), (4.0, 3), (6.0, 6)])
    }

    fn validate(&self, id: CodeId) -> Result<(), CodeError> {
        let points: &[(f64, u32)] = match self {
            SnrProfile::Fixed(ebn0) => &[(*ebn0, 1)],
            SnrProfile::Mixed(points) => {
                if points.is_empty() {
                    return Err(CodeError::InvalidParameter {
                        reason: format!("mode {id} registered with an empty SNR mixture"),
                    });
                }
                points
            }
        };
        for &(ebn0, weight) in points {
            if !ebn0.is_finite() {
                return Err(CodeError::InvalidParameter {
                    reason: format!("mode {id} registered with non-finite Eb/N0 {ebn0}"),
                });
            }
            if weight == 0 {
                return Err(CodeError::InvalidParameter {
                    reason: format!("mode {id} SNR point {ebn0} dB has weight 0"),
                });
            }
        }
        Ok(())
    }
}

/// One registered mode of a [`MixedTraffic`] stream.
#[derive(Debug, Clone)]
struct TrafficMode {
    id: CodeId,
    source: FrameSource,
    /// One prebuilt channel per SNR point of the mode's profile.
    channels: Vec<(AwgnChannel, u32)>,
    snr_total_weight: u64,
    /// SNR-point picker stream; `None` for fixed-SNR modes, which never
    /// draw (keeping their frame streams bit-identical to the pre-profile
    /// behaviour).
    snr_rng: Option<StdRng>,
    weight: u32,
    /// Reusable one-frame staging block, so steady-state generation does not
    /// allocate.
    block: FrameBlock,
}

impl TrafficMode {
    fn pick_channel(&mut self) -> &AwgnChannel {
        let Some(rng) = &mut self.snr_rng else {
            return &self.channels[0].0;
        };
        let mut ticket = rng.gen_range(0..self.snr_total_weight);
        let idx = self
            .channels
            .iter()
            .position(|&(_, weight)| {
                if ticket < u64::from(weight) {
                    true
                } else {
                    ticket -= u64::from(weight);
                    false
                }
            })
            .expect("ticket is below the total SNR weight");
        &self.channels[idx].0
    }
}

/// A deterministic stream of frames drawn from several code modes at once —
/// the ingest-side workload of a multi-code decode service.
///
/// Each registered mode owns an independent [`FrameSource`] and
/// [`AwgnChannel`]; a separate seeded picker interleaves them by weight, so
/// the emitted `(CodeId, LLR frame)` sequence is reproducible from the seed
/// alone and every mode's frame content is independent of which other modes
/// are registered.
///
/// ```
/// use ldpc_channel::workload::MixedTraffic;
/// use ldpc_codes::{CodeId, CodeRate, Standard};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut traffic = MixedTraffic::new(42);
/// traffic.add_mode(CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576), 2.5, 1)?;
/// traffic.add_mode(CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648), 2.5, 1)?;
/// let mut llrs = Vec::new();
/// let id = traffic.next_frame_into(&mut llrs);
/// assert_eq!(llrs.len(), id.n);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MixedTraffic {
    modes: Vec<TrafficMode>,
    seed: u64,
    picker: StdRng,
    total_weight: u64,
    emitted: u64,
}

impl MixedTraffic {
    /// An empty stream; add modes with [`MixedTraffic::add_mode`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        MixedTraffic {
            modes: Vec::new(),
            seed,
            picker: StdRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95) ^ 0x5bf0),
            total_weight: 0,
            emitted: 0,
        }
    }

    /// Registers a mode: frames of `id`'s code, transmitted at `ebn0_db`,
    /// drawn `weight` times as often as a weight-1 mode. Per-mode frame
    /// content is seeded from the stream seed and the mode index, so it is
    /// reproducible and distinct across modes.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is unsupported, not encodable, or `weight`
    /// is zero.
    pub fn add_mode(&mut self, id: CodeId, ebn0_db: f64, weight: u32) -> Result<(), CodeError> {
        self.add_mode_with_snr(id, SnrProfile::Fixed(ebn0_db), weight)
    }

    /// Like [`MixedTraffic::add_mode`], with a full per-mode [`SnrProfile`]:
    /// a [`SnrProfile::Mixed`] mode draws each frame's Eb/N0 from its
    /// weighted points through a dedicated seeded RNG, producing a
    /// deterministic easy/hard frame mix. A [`SnrProfile::Fixed`] mode is
    /// exactly `add_mode` (bit-identical stream, no SNR draws).
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is unsupported or not encodable, `weight` is
    /// zero, or the profile is invalid (empty mixture, zero-weight point,
    /// non-finite Eb/N0).
    pub fn add_mode_with_snr(
        &mut self,
        id: CodeId,
        profile: SnrProfile,
        weight: u32,
    ) -> Result<(), CodeError> {
        if weight == 0 {
            return Err(CodeError::InvalidParameter {
                reason: format!("mode {id} registered with weight 0"),
            });
        }
        profile.validate(id)?;
        let code = id.build()?;
        let mode_seed = self
            .seed
            .wrapping_add(1 + self.modes.len() as u64)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
        let (channels, snr_rng) = match profile {
            SnrProfile::Fixed(ebn0) => {
                let channels = vec![(AwgnChannel::from_ebn0_db(ebn0, code.rate()), 1)];
                (channels, None)
            }
            SnrProfile::Mixed(points) => {
                let channels = points
                    .into_iter()
                    .map(|(ebn0, w)| (AwgnChannel::from_ebn0_db(ebn0, code.rate()), w))
                    .collect();
                // A distinct mixing constant keeps the SNR stream decoupled
                // from the mode's data and noise streams (both derived from
                // the same mode seed).
                let rng = StdRng::seed_from_u64(
                    mode_seed.wrapping_mul(0x94D0_49BB_1331_11EB) ^ 0x5DEECE66D,
                );
                (channels, Some(rng))
            }
        };
        let snr_total_weight = channels.iter().map(|&(_, w)| u64::from(w)).sum();
        self.modes.push(TrafficMode {
            id,
            source: FrameSource::random(&code, mode_seed)?,
            channels,
            snr_total_weight,
            snr_rng,
            weight,
            block: FrameBlock::new(),
        });
        self.total_weight += u64::from(weight);
        Ok(())
    }

    /// The registered modes, in registration order.
    #[must_use]
    pub fn modes(&self) -> Vec<CodeId> {
        self.modes.iter().map(|m| m.id).collect()
    }

    /// Number of frames emitted so far.
    #[must_use]
    pub fn frames_emitted(&self) -> u64 {
        self.emitted
    }

    /// Generates the next frame of the stream into `llrs` (cleared and
    /// refilled; a buffer reused across calls for the largest registered mode
    /// stops allocating) and returns the mode it belongs to.
    ///
    /// # Panics
    ///
    /// Panics if no modes are registered.
    pub fn next_frame_into(&mut self, llrs: &mut Vec<f64>) -> CodeId {
        assert!(
            !self.modes.is_empty(),
            "MixedTraffic has no registered modes"
        );
        // Weighted pick from the dedicated picker stream.
        let mut ticket = self.picker.gen_range(0..self.total_weight);
        let idx = self
            .modes
            .iter()
            .position(|m| {
                if ticket < u64::from(m.weight) {
                    true
                } else {
                    ticket -= u64::from(m.weight);
                    false
                }
            })
            .expect("ticket is below the total weight");
        let mode = &mut self.modes[idx];
        let channel = *mode.pick_channel();
        let TrafficMode { source, block, .. } = mode;
        source.fill_block(&channel, 1, block);
        llrs.clear();
        llrs.extend_from_slice(&block.llrs);
        self.emitted += 1;
        mode.id
    }

    /// Like [`MixedTraffic::next_frame_into`] with a freshly allocated buffer.
    pub fn next_frame(&mut self) -> (CodeId, Vec<f64>) {
        let mut llrs = Vec::new();
        let id = self.next_frame_into(&mut llrs);
        (id, llrs)
    }
}

/// One transmission emitted by a [`HarqTraffic`] stream: a noisy observation
/// of its session's codeword, tagged with the HARQ identity a serving tier
/// keys soft buffers on.
#[derive(Debug, Clone, PartialEq)]
pub struct HarqTx {
    /// Session owner — unique per session, so a churning stream visits
    /// thousands of distinct `(user, process)` keys.
    pub user: u64,
    /// HARQ process slot of the session (0..8, as in LTE/NR's parallel
    /// stop-and-wait processes).
    pub process: u8,
    /// Redundancy version of this transmission (cycles 0..4 within the
    /// session).
    pub rv: u8,
    /// Whether this is the session's final transmission: after it, the
    /// session retires and its key never transmits again.
    pub last: bool,
    /// Full-codeword channel LLRs (`n` values) of this transmission. Each
    /// transmission carries an independent noise realisation of the *same*
    /// codeword, so soft-combining them raises the effective SNR.
    pub llrs: Vec<f64>,
    /// The session's transmitted codeword — ground truth for checking a
    /// combined decode.
    pub codeword: Vec<u8>,
}

/// One live retransmission session of a [`HarqTraffic`] stream.
#[derive(Debug, Clone)]
struct HarqSession {
    user: u64,
    process: u8,
    codeword: Vec<u8>,
    sent: u8,
    total: u8,
}

/// A deterministic stream of HARQ transmissions: a fixed-size pool of live
/// sessions (each one codeword, retransmitted `1..=max_tx` times under
/// independent noise) interleaved by a seeded picker; a session that sends
/// its last transmission retires and a fresh session — with a fresh user key
/// — takes its slot. Run long enough, the stream churns through thousands of
/// distinct keys while keeping `concurrency` of them active at any moment:
/// exactly the arrival pattern that forces a bounded soft-buffer store to
/// evict.
///
/// Everything — codewords, noise, session lengths, interleaving — derives
/// from the seed, so two streams with equal parameters emit identical
/// transmission sequences.
#[derive(Debug, Clone)]
pub struct HarqTraffic {
    source: FrameSource,
    channel: AwgnChannel,
    sessions: Vec<HarqSession>,
    picker: StdRng,
    next_user: u64,
    max_tx: u8,
    started: u64,
    completed: u64,
    emitted: u64,
}

impl HarqTraffic {
    /// A stream of `concurrency` interleaved sessions of `id`'s code at
    /// `ebn0_db`, each retransmitting between 1 and `max_tx` times (drawn
    /// per session from the seed).
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is unsupported or not encodable, or
    /// `concurrency` or `max_tx` is zero.
    pub fn new(
        id: CodeId,
        ebn0_db: f64,
        concurrency: usize,
        max_tx: u8,
        seed: u64,
    ) -> Result<Self, CodeError> {
        if concurrency == 0 {
            return Err(CodeError::InvalidParameter {
                reason: "HarqTraffic needs at least one live session".into(),
            });
        }
        if max_tx == 0 {
            return Err(CodeError::InvalidParameter {
                reason: "HarqTraffic sessions need at least one transmission".into(),
            });
        }
        let code = id.build()?;
        let mut traffic = HarqTraffic {
            source: FrameSource::random(&code, seed)?,
            channel: AwgnChannel::from_ebn0_db(ebn0_db, code.rate()),
            sessions: Vec::with_capacity(concurrency),
            picker: StdRng::seed_from_u64(seed.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ 0x4a9c),
            next_user: 0,
            max_tx,
            started: 0,
            completed: 0,
            emitted: 0,
        };
        for _ in 0..concurrency {
            let session = traffic.spawn_session();
            traffic.sessions.push(session);
        }
        Ok(traffic)
    }

    fn spawn_session(&mut self) -> HarqSession {
        let user = self.next_user;
        self.next_user += 1;
        self.started += 1;
        HarqSession {
            user,
            // Spread sessions across the 8 HARQ process slots.
            process: (user % 8) as u8,
            codeword: self.source.next_frame().codeword,
            sent: 0,
            total: self.picker.gen_range(1..=self.max_tx),
        }
    }

    /// Sessions started so far (live ones included).
    #[must_use]
    pub fn sessions_started(&self) -> u64 {
        self.started
    }

    /// Sessions that have sent their final transmission and retired.
    #[must_use]
    pub fn sessions_completed(&self) -> u64 {
        self.completed
    }

    /// Transmissions emitted so far.
    #[must_use]
    pub fn transmissions_emitted(&self) -> u64 {
        self.emitted
    }

    /// Emits the next transmission: a seeded pick among the live sessions,
    /// transmitting its codeword under fresh noise. When the pick exhausts
    /// its session, the session retires ([`HarqTx::last`] is set) and a new
    /// session with a fresh user key immediately replaces it.
    pub fn next_tx(&mut self) -> HarqTx {
        let idx = self.picker.gen_range(0..self.sessions.len());
        let llrs = self
            .channel
            .transmit(&self.sessions[idx].codeword, self.source.noise_rng());
        let session = &mut self.sessions[idx];
        let rv = session.sent % 4;
        session.sent += 1;
        let last = session.sent >= session.total;
        let tx = HarqTx {
            user: session.user,
            process: session.process,
            rv,
            last,
            llrs,
            codeword: session.codeword.clone(),
        };
        if last {
            self.completed += 1;
            self.sessions[idx] = self.spawn_session();
        }
        self.emitted += 1;
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awgn::AwgnChannel;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn burst_profile_paces_bursts_and_never_delays_the_first_frame() {
        let profile = BurstProfile::new(4, Duration::from_millis(10));
        let gaps: Vec<Option<Duration>> = (0..9).map(|i| profile.gap_before(i)).collect();
        let g = Some(Duration::from_millis(10));
        assert_eq!(gaps, vec![None, None, None, None, g, None, None, None, g]);

        // Steady shaping never idles.
        let steady = BurstProfile::steady();
        assert!((0..32).all(|i| steady.gap_before(i).is_none()));

        // burst <= 1 with a gap degenerates to a fixed inter-frame gap.
        let paced = BurstProfile::new(1, Duration::from_millis(3));
        assert_eq!(paced.gap_before(0), None);
        assert_eq!(paced.gap_before(1), Some(Duration::from_millis(3)));
        assert_eq!(paced.gap_before(2), Some(Duration::from_millis(3)));
    }

    #[test]
    fn random_frames_are_valid_codewords() {
        let code = code();
        let mut src = FrameSource::random(&code, 1).unwrap();
        for _ in 0..5 {
            let frame = src.next_frame();
            assert_eq!(frame.info_len(), code.info_bits());
            assert_eq!(frame.codeword_len(), code.n());
            assert!(code.is_codeword(&frame.codeword).unwrap());
            assert_eq!(&frame.codeword[..code.info_bits()], frame.info.as_slice());
        }
        assert_eq!(src.frames_generated(), 5);
    }

    #[test]
    fn all_zero_source_transmits_zero() {
        let code = code();
        let mut src = FrameSource::all_zero(&code, 1).unwrap();
        let frame = src.next_frame();
        assert!(frame.codeword.iter().all(|&b| b == 0));
        assert!(frame.info.iter().all(|&b| b == 0));
    }

    #[test]
    fn same_seed_reproduces_frames() {
        let code = code();
        let mut a = FrameSource::random(&code, 99).unwrap();
        let mut b = FrameSource::random(&code, 99).unwrap();
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let code = code();
        let mut a = FrameSource::random(&code, 1).unwrap();
        let mut b = FrameSource::random(&code, 2).unwrap();
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn block_generation_matches_sequential_generation() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(2.5, code.rate());
        let frames = 4;

        // Sequential reference.
        let mut seq = FrameSource::random(&code, 33).unwrap();
        let mut seq_codewords = Vec::new();
        let mut seq_llrs = Vec::new();
        for _ in 0..frames {
            let frame = seq.next_frame();
            let llrs = channel.transmit(&frame.codeword, seq.noise_rng());
            seq_codewords.extend_from_slice(&frame.codeword);
            seq_llrs.extend_from_slice(&llrs);
        }

        // Batched generation from the same seed.
        let mut batched = FrameSource::random(&code, 33).unwrap();
        let block = batched.next_block(&channel, frames);
        assert_eq!(block.frames(), frames);
        assert_eq!(block.n(), code.n());
        assert_eq!(block.info_len(), code.info_bits());
        assert_eq!(block.codewords, seq_codewords);
        assert_eq!(block.llrs, seq_llrs);
        assert_eq!(batched.frames_generated(), frames as u64);
        for i in 0..frames {
            assert!(code.is_codeword(block.codeword(i)).unwrap());
            assert_eq!(&block.codeword(i)[..code.info_bits()], block.info(i));
            assert_eq!(
                block.frame_llrs(i),
                &seq_llrs[i * code.n()..(i + 1) * code.n()]
            );
        }
    }

    #[test]
    fn fill_block_reuses_buffers() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let mut source = FrameSource::all_zero(&code, 7).unwrap();
        let mut block = FrameBlock::new();
        source.fill_block(&channel, 6, &mut block);
        let ptrs = (
            block.infos.as_ptr(),
            block.codewords.as_ptr(),
            block.llrs.as_ptr(),
        );
        source.fill_block(&channel, 6, &mut block);
        assert_eq!(
            ptrs,
            (
                block.infos.as_ptr(),
                block.codewords.as_ptr(),
                block.llrs.as_ptr()
            ),
            "same-shape refill must not reallocate"
        );
        assert!(block.codewords.iter().all(|&b| b == 0));
    }

    fn mixed_traffic(seed: u64) -> MixedTraffic {
        let mut traffic = MixedTraffic::new(seed);
        traffic
            .add_mode(
                CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576),
                2.5,
                2,
            )
            .unwrap();
        traffic
            .add_mode(
                CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648),
                3.0,
                1,
            )
            .unwrap();
        traffic
    }

    #[test]
    fn mixed_traffic_is_deterministic_and_mode_tagged() {
        let mut a = mixed_traffic(7);
        let mut b = mixed_traffic(7);
        assert_eq!(a.modes().len(), 2);
        for _ in 0..20 {
            let (id_a, llrs_a) = a.next_frame();
            let (id_b, llrs_b) = b.next_frame();
            assert_eq!(id_a, id_b);
            assert_eq!(llrs_a, llrs_b);
            assert_eq!(llrs_a.len(), id_a.n, "frame length matches its mode");
        }
        assert_eq!(a.frames_emitted(), 20);
    }

    #[test]
    fn mixed_traffic_covers_every_mode() {
        let mut traffic = mixed_traffic(11);
        let modes = traffic.modes();
        let mut seen = vec![0usize; modes.len()];
        let mut llrs = Vec::new();
        for _ in 0..60 {
            let id = traffic.next_frame_into(&mut llrs);
            let idx = modes.iter().position(|m| *m == id).expect("known mode");
            seen[idx] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all modes emitted: {seen:?}");
        // The weight-2 mode should dominate the weight-1 mode clearly over 60
        // draws (binomial with p = 2/3; equality would be a picker bug).
        assert!(seen[0] > seen[1], "weights respected: {seen:?}");
    }

    #[test]
    fn mixed_traffic_frames_decode_consistently_with_single_mode_source() {
        // A mode's frame stream must not depend on which other modes are
        // registered: removing a mode must not change the other's frames.
        let mut solo = MixedTraffic::new(5);
        solo.add_mode(
            CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576),
            2.5,
            1,
        )
        .unwrap();
        let mut duo = MixedTraffic::new(5);
        duo.add_mode(
            CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576),
            2.5,
            1,
        )
        .unwrap();
        duo.add_mode(
            CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648),
            3.0,
            1,
        )
        .unwrap();
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let mut solo_frames = Vec::new();
        while solo_frames.len() < 5 {
            let (id, llrs) = solo.next_frame();
            assert_eq!(id, wimax);
            solo_frames.push(llrs);
        }
        let mut duo_frames = Vec::new();
        while duo_frames.len() < 5 {
            let (id, llrs) = duo.next_frame();
            if id == wimax {
                duo_frames.push(llrs);
            }
        }
        assert_eq!(solo_frames, duo_frames);
    }

    #[test]
    fn mixed_traffic_rejects_bad_modes() {
        let mut traffic = MixedTraffic::new(1);
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        assert!(traffic.add_mode(wimax, 2.5, 0).is_err(), "zero weight");
        let unsupported = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 100);
        assert!(traffic.add_mode(unsupported, 2.5, 1).is_err());
    }

    #[test]
    fn snr_profile_validation_rejects_degenerate_mixtures() {
        let mut traffic = MixedTraffic::new(1);
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        assert!(
            traffic
                .add_mode_with_snr(wimax, SnrProfile::Mixed(vec![]), 1)
                .is_err(),
            "empty mixture"
        );
        assert!(
            traffic
                .add_mode_with_snr(wimax, SnrProfile::Mixed(vec![(2.0, 1), (4.0, 0)]), 1)
                .is_err(),
            "zero-weight SNR point"
        );
        assert!(
            traffic
                .add_mode_with_snr(wimax, SnrProfile::Fixed(f64::NAN), 1)
                .is_err(),
            "non-finite Eb/N0"
        );
    }

    #[test]
    fn fixed_profile_matches_plain_add_mode_bit_for_bit() {
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let mut plain = MixedTraffic::new(13);
        plain.add_mode(wimax, 2.5, 1).unwrap();
        let mut profiled = MixedTraffic::new(13);
        profiled
            .add_mode_with_snr(wimax, SnrProfile::Fixed(2.5), 1)
            .unwrap();
        for _ in 0..8 {
            assert_eq!(plain.next_frame(), profiled.next_frame());
        }
    }

    #[test]
    fn snr_mixture_is_deterministic_and_varies_noise_levels() {
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let build = || {
            let mut traffic = MixedTraffic::new(21);
            traffic
                .add_mode_with_snr(wimax, SnrProfile::serving_mix(), 1)
                .unwrap();
            traffic
        };
        let mut a = build();
        let mut b = build();
        // Deterministic: two streams from one seed agree frame for frame.
        let frames: Vec<Vec<f64>> = (0..40).map(|_| a.next_frame().1).collect();
        for frame in &frames {
            assert_eq!(*frame, b.next_frame().1);
        }
        // Mixture actually varies the operating point: per-frame mean |LLR|
        // scales with Eb/N0, so a 2/4/6 dB mix must show a clear spread
        // (a fixed-SNR stream's per-frame means cluster tightly).
        let mean_abs: Vec<f64> = frames
            .iter()
            .map(|f| f.iter().map(|&l| l.abs()).sum::<f64>() / f.len() as f64)
            .collect();
        let lo = mean_abs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mean_abs.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi > lo * 1.5,
            "SNR mixture should spread per-frame LLR magnitudes: lo={lo:.2} hi={hi:.2}"
        );
    }

    #[test]
    fn snr_draws_leave_other_modes_untouched() {
        // Registering a mixed-SNR mode must not perturb another mode's
        // frames (per-mode RNG streams stay independent).
        let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let wifi = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        let mut plain = MixedTraffic::new(9);
        plain.add_mode(wimax, 2.5, 1).unwrap();
        plain.add_mode(wifi, 3.0, 1).unwrap();
        let mut mixed = MixedTraffic::new(9);
        mixed.add_mode(wimax, 2.5, 1).unwrap();
        mixed
            .add_mode_with_snr(wifi, SnrProfile::Mixed(vec![(3.0, 1)]), 1)
            .unwrap();
        for _ in 0..30 {
            let (id_a, llrs_a) = plain.next_frame();
            let (id_b, llrs_b) = mixed.next_frame();
            assert_eq!(id_a, id_b, "picker stream unchanged");
            if id_a == wimax {
                assert_eq!(llrs_a, llrs_b, "fixed mode bit-identical");
            }
        }
    }

    #[test]
    fn mixed_traffic_next_into_reuses_the_buffer() {
        let mut traffic = mixed_traffic(3);
        let mut llrs = Vec::with_capacity(648);
        let ptr = llrs.as_ptr();
        for _ in 0..10 {
            let _ = traffic.next_frame_into(&mut llrs);
        }
        assert_eq!(ptr, llrs.as_ptr(), "pre-sized buffer never reallocates");
    }

    #[test]
    fn harq_traffic_is_deterministic_and_rv_cycles_within_sessions() {
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let mut a = HarqTraffic::new(id, 1.0, 4, 6, 17).unwrap();
        let mut b = HarqTraffic::new(id, 1.0, 4, 6, 17).unwrap();
        let mut rv_by_user: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for _ in 0..100 {
            let tx = a.next_tx();
            assert_eq!(tx, b.next_tx(), "same seed, same stream");
            assert_eq!(tx.llrs.len(), id.n);
            assert_eq!(tx.codeword.len(), id.n);
            assert_eq!(tx.process, (tx.user % 8) as u8);
            // rv cycles 0, 1, 2, 3, 0, ... through each session's life.
            let expected = rv_by_user.entry(tx.user).or_insert(0);
            assert_eq!(tx.rv, *expected, "user {}", tx.user);
            *expected = (*expected + 1) % 4;
            if tx.last {
                rv_by_user.remove(&tx.user);
            }
        }
        assert_eq!(a.transmissions_emitted(), 100);
    }

    #[test]
    fn harq_traffic_churns_through_fresh_user_keys() {
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let mut traffic = HarqTraffic::new(id, 1.0, 8, 3, 99).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut retired = std::collections::HashSet::new();
        for _ in 0..200 {
            let tx = traffic.next_tx();
            assert!(
                !retired.contains(&(tx.user, tx.process)),
                "a retired session's key must never transmit again"
            );
            seen.insert(tx.user);
            if tx.last {
                retired.insert((tx.user, tx.process));
            }
        }
        // With sessions of at most 3 transmissions, 200 draws retire well
        // over the initial pool of 8 — the key population churns.
        assert!(seen.len() > 50, "fresh keys kept arriving: {}", seen.len());
        assert_eq!(
            traffic.sessions_started(),
            traffic.sessions_completed() + 8,
            "every retirement spawned a replacement into the 8-slot pool"
        );
    }

    #[test]
    fn harq_retransmissions_share_a_codeword_under_independent_noise() {
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let code = id.build().unwrap();
        let mut traffic = HarqTraffic::new(id, 2.0, 2, 4, 5).unwrap();
        let mut by_user: std::collections::HashMap<u64, HarqTx> = std::collections::HashMap::new();
        let mut checked = 0;
        for _ in 0..60 {
            let tx = traffic.next_tx();
            assert!(code.is_codeword(&tx.codeword).unwrap());
            if let Some(prev) = by_user.get(&tx.user) {
                assert_eq!(prev.codeword, tx.codeword, "one codeword per session");
                assert_ne!(prev.llrs, tx.llrs, "independent noise per transmission");
                checked += 1;
            }
            by_user.insert(tx.user, tx);
        }
        assert!(checked > 0, "some session retransmitted within 60 draws");
    }

    #[test]
    fn harq_traffic_rejects_degenerate_parameters() {
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        assert!(HarqTraffic::new(id, 1.0, 0, 4, 1).is_err(), "no sessions");
        assert!(
            HarqTraffic::new(id, 1.0, 4, 0, 1).is_err(),
            "no transmissions"
        );
        let unsupported = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 100);
        assert!(HarqTraffic::new(unsupported, 1.0, 4, 4, 1).is_err());
    }

    #[test]
    fn noise_rng_is_independent_of_data_rng() {
        let code = code();
        let channel = AwgnChannel::from_ebn0_db(2.0, code.rate());
        // Generating noise must not change the data stream.
        let mut a = FrameSource::random(&code, 5).unwrap();
        let mut b = FrameSource::random(&code, 5).unwrap();
        let _ = channel.transmit(&vec![0u8; code.n()], a.noise_rng());
        assert_eq!(a.next_frame(), b.next_frame());
    }
}
