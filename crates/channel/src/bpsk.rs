//! Binary phase-shift keying (BPSK) mapping.
//!
//! Bit `0` maps to `+1.0` and bit `1` maps to `−1.0`, so that the channel LLR
//! `log(P(x=0)/P(x=1))` of a received symbol is positive when the symbol looks
//! like a transmitted `0`. This matches the decision rule of the paper,
//! `x̂_n = sign(L_n)`.

/// Maps one bit (0/1) to its antipodal BPSK symbol (+1.0 / −1.0).
#[must_use]
pub fn modulate_bit(bit: u8) -> f64 {
    if bit & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Maps a bit slice to BPSK symbols.
#[must_use]
pub fn modulate(bits: &[u8]) -> Vec<f64> {
    bits.iter().map(|&b| modulate_bit(b)).collect()
}

/// Hard-demaps a received real value back to a bit (sign decision).
/// Values ≥ 0 decode to bit 0.
#[must_use]
pub fn hard_decision(symbol: f64) -> u8 {
    u8::from(symbol < 0.0)
}

/// Hard-demaps a slice of received symbols.
#[must_use]
pub fn hard_decisions(symbols: &[f64]) -> Vec<u8> {
    symbols.iter().map(|&s| hard_decision(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_maps_to_plus_one() {
        assert_eq!(modulate_bit(0), 1.0);
        assert_eq!(modulate_bit(1), -1.0);
        // Only the LSB matters.
        assert_eq!(modulate_bit(2), 1.0);
        assert_eq!(modulate_bit(3), -1.0);
    }

    #[test]
    fn modulate_round_trips_through_hard_decision() {
        let bits = vec![0, 1, 1, 0, 1, 0, 0, 1];
        let symbols = modulate(&bits);
        assert_eq!(hard_decisions(&symbols), bits);
    }

    #[test]
    fn hard_decision_sign_convention() {
        assert_eq!(hard_decision(0.7), 0);
        assert_eq!(hard_decision(-0.1), 1);
        // Ties (exactly zero) decode to 0, matching sign(L) with sign(0) = +.
        assert_eq!(hard_decision(0.0), 0);
    }

    #[test]
    fn symbols_have_unit_energy() {
        for bit in [0u8, 1u8] {
            assert!((modulate_bit(bit).abs() - 1.0).abs() < f64::EPSILON);
        }
    }
}
