//! Additive white Gaussian noise channel.
//!
//! The channel is parameterised by `Eb/N0` (energy per information bit over
//! noise spectral density) and the code rate `R`, from which the per-symbol
//! noise standard deviation follows as `σ² = 1 / (2·R·Eb/N0)` for unit-energy
//! BPSK symbols.

use rand::Rng;
use rand_distr_like::StandardNormal;

use crate::bpsk;
use crate::llr;

/// A memoryless AWGN channel for unit-energy BPSK symbols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwgnChannel {
    sigma: f64,
    ebn0_db: f64,
    rate: f64,
}

impl AwgnChannel {
    /// Creates a channel from `Eb/N0` in dB and the code rate `R ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    #[must_use]
    pub fn from_ebn0_db(ebn0_db: f64, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "code rate must be in (0, 1]");
        let ebn0 = 10f64.powf(ebn0_db / 10.0);
        let sigma = (1.0 / (2.0 * rate * ebn0)).sqrt();
        AwgnChannel {
            sigma,
            ebn0_db,
            rate,
        }
    }

    /// Creates a channel directly from the noise standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    #[must_use]
    pub fn from_sigma(sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        AwgnChannel {
            sigma,
            ebn0_db: f64::NAN,
            rate: f64::NAN,
        }
    }

    /// Noise standard deviation σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Noise variance σ².
    #[must_use]
    pub fn noise_variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// The `Eb/N0` (dB) this channel was configured with, `NaN` if it was
    /// constructed from a raw σ.
    #[must_use]
    pub fn ebn0_db(&self) -> f64 {
        self.ebn0_db
    }

    /// Adds Gaussian noise to BPSK symbols.
    #[must_use]
    pub fn add_noise<R: Rng + ?Sized>(&self, symbols: &[f64], rng: &mut R) -> Vec<f64> {
        symbols
            .iter()
            .map(|&s| s + self.sigma * StandardNormal.sample(rng))
            .collect()
    }

    /// Transmits a codeword (bits) over the channel and returns the channel
    /// LLRs `2·y/σ²` observed by the decoder.
    #[must_use]
    pub fn transmit<R: Rng + ?Sized>(&self, codeword: &[u8], rng: &mut R) -> Vec<f64> {
        let symbols = bpsk::modulate(codeword);
        let received = self.add_noise(&symbols, rng);
        llr::channel_llrs(&received, self.sigma)
    }

    /// Transmits a codeword and writes the channel LLRs into `out`, drawing
    /// the exact same noise stream as [`transmit`](Self::transmit) but without
    /// allocating. Feeds the batched Monte-Carlo workloads.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != codeword.len()`.
    pub fn transmit_into<R: Rng + ?Sized>(&self, codeword: &[u8], rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), codeword.len(), "LLR buffer length mismatch");
        for (slot, &bit) in out.iter_mut().zip(codeword) {
            let symbol = bpsk::modulate_bit(bit);
            let received = symbol + self.sigma * StandardNormal.sample(rng);
            *slot = llr::channel_llr(received, self.sigma);
        }
    }

    /// Transmits and returns both the noisy symbols and the channel LLRs.
    #[must_use]
    pub fn transmit_with_symbols<R: Rng + ?Sized>(
        &self,
        codeword: &[u8],
        rng: &mut R,
    ) -> (Vec<f64>, Vec<f64>) {
        let symbols = bpsk::modulate(codeword);
        let received = self.add_noise(&symbols, rng);
        let llrs = llr::channel_llrs(&received, self.sigma);
        (received, llrs)
    }
}

/// Minimal standard-normal sampler built on `Rng::gen` (Box–Muller), so we do
/// not need the `rand_distr` crate.
mod rand_distr_like {
    use rand::Rng;

    /// Zero-mean unit-variance Gaussian sampler.
    #[derive(Debug, Clone, Copy)]
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one sample using the Box–Muller transform.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Avoid log(0) by sampling u1 from (0, 1].
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_from_ebn0_matches_formula() {
        let ch = AwgnChannel::from_ebn0_db(0.0, 0.5);
        // Eb/N0 = 1, R = 0.5 => sigma^2 = 1/(2*0.5*1) = 1.
        assert!((ch.sigma() - 1.0).abs() < 1e-12);
        let ch = AwgnChannel::from_ebn0_db(3.0, 0.5);
        assert!(ch.sigma() < 1.0, "higher Eb/N0 means less noise");
        assert!((ch.ebn0_db() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "code rate")]
    fn rejects_invalid_rate() {
        let _ = AwgnChannel::from_ebn0_db(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_non_positive_sigma() {
        let _ = AwgnChannel::from_sigma(0.0);
    }

    #[test]
    fn noise_statistics_are_plausible() {
        let ch = AwgnChannel::from_sigma(0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let symbols = vec![1.0; n];
        let received = ch.add_noise(&symbols, &mut rng);
        let mean: f64 = received.iter().sum::<f64>() / n as f64;
        let var: f64 = received
            .iter()
            .map(|&y| (y - mean) * (y - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean} too far from 1.0");
        assert!(
            (var - 0.64).abs() < 0.03,
            "variance {var} too far from 0.64"
        );
    }

    #[test]
    fn transmit_produces_one_llr_per_bit() {
        let ch = AwgnChannel::from_ebn0_db(4.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let bits = vec![0u8, 1, 0, 1, 1, 0];
        let llrs = ch.transmit(&bits, &mut rng);
        assert_eq!(llrs.len(), bits.len());
        // At 4 dB most LLRs should already agree with the transmitted bits.
        let agree = llrs
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| u8::from(l < 0.0) == b)
            .count();
        assert!(agree >= 4);
    }

    #[test]
    fn noiseless_limit_recovers_bits() {
        // Extremely high Eb/N0: LLR sign equals transmitted bit with
        // overwhelming probability.
        let ch = AwgnChannel::from_ebn0_db(20.0, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let bits: Vec<u8> = (0..256).map(|i| (i % 2) as u8).collect();
        let llrs = ch.transmit(&bits, &mut rng);
        for (l, b) in llrs.iter().zip(&bits) {
            assert_eq!(u8::from(*l < 0.0), *b);
        }
    }

    #[test]
    fn transmit_into_matches_transmit_exactly() {
        let ch = AwgnChannel::from_ebn0_db(2.0, 0.5);
        let bits: Vec<u8> = (0..64).map(|i| ((i * 5) % 2) as u8).collect();
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        let allocated = ch.transmit(&bits, &mut rng_a);
        let mut into = vec![0.0; bits.len()];
        ch.transmit_into(&bits, &mut rng_b, &mut into);
        assert_eq!(allocated, into, "same seed must give identical LLR streams");
    }

    #[test]
    #[should_panic(expected = "LLR buffer length mismatch")]
    fn transmit_into_checks_length() {
        let ch = AwgnChannel::from_ebn0_db(2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = vec![0.0; 3];
        ch.transmit_into(&[0u8; 4], &mut rng, &mut out);
    }

    #[test]
    fn transmit_with_symbols_is_consistent() {
        let ch = AwgnChannel::from_ebn0_db(2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let bits = vec![0u8; 32];
        let (symbols, llrs) = ch.transmit_with_symbols(&bits, &mut rng);
        for (y, l) in symbols.iter().zip(&llrs) {
            assert!((l - 2.0 * y / ch.noise_variance()).abs() < 1e-12);
        }
    }
}
