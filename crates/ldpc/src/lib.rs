//! # ldpc — a reconfigurable multi-standard LDPC decoder, reproduced in Rust
//!
//! This facade crate re-exports the full reproduction of Sun & Cavallaro's
//! SOCC 2008 paper *"A low-power 1-Gbps reconfigurable LDPC decoder design
//! for multiple 4G wireless standards"*:
//!
//! * [`codes`] — quasi-cyclic block-structured LDPC code constructions for
//!   the IEEE 802.11n / 802.16e / DMB-T families (Table 1) and a systematic
//!   encoder;
//! * [`channel`] — BPSK/AWGN channel, LLR computation and Monte-Carlo
//!   workload generation;
//! * [`core`] — the layered belief-propagation decoder built from ⊞/⊟
//!   recursions with 3-bit LUTs, the Radix-2/Radix-4 SISO core models, the
//!   Min-Sum baseline, the early-termination rule and the SNR-adaptive
//!   Min-Sum→BP decoder cascade;
//! * [`arch`] — the ASIC architecture model: distributed SISO lanes and
//!   Λ-memory banks, central L-memory, circular shifter, reconfiguration
//!   controller, cycle-accurate pipeline, and the calibrated area / power /
//!   energy models behind Table 2, Table 3 and Fig. 9;
//! * [`serve`] — the serving layer: a multi-code sharded
//!   [`DecodeService`](ldpc_serve::DecodeService) with bounded per-mode frame
//!   queues, per-mode SLO/priority scheduling policies
//!   ([`ShardPolicy`](ldpc_serve::ShardPolicy)), micro-batching dispatch
//!   workers, deadline-aware load shedding, backpressure, per-mode latency
//!   percentiles and a draining shutdown.
//!
//! ## Quickstart — single frame
//!
//! ```
//! use ldpc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the WiMax-class rate-1/2, 576-bit code and a decoder.
//! let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
//! let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default())?;
//!
//! // Encode a random frame, push it through a 2.5 dB AWGN channel, decode.
//! let mut source = FrameSource::random(&code, 7)?;
//! let channel = AwgnChannel::from_ebn0_db(2.5, code.rate());
//! let frame = source.next_frame();
//! let llrs = channel.transmit(&frame.codeword, source.noise_rng());
//! let out = decoder.decode(&code, &llrs)?;
//! assert_eq!(out.hard_bits.len(), code.n());
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart — the batched decode engine
//!
//! Every decoder (layered and flooding schedule alike) implements the
//! [`Decoder`](ldpc_core::engine::Decoder) trait. For throughput, compile the
//! code once, generate frames in blocks and decode whole batches: the
//! compiled schedule replaces per-frame shift arithmetic with table lookups,
//! per-worker [`DecodeWorkspace`](ldpc_core::workspace::DecodeWorkspace)s make
//! steady-state decoding allocation-free, and frames spread across OS threads
//! (override the worker count with `LDPC_DECODE_THREADS`).
//!
//! ```
//! use ldpc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
//! let compiled = code.compile();
//! let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default())?;
//!
//! // A block of 8 frames and their channel LLRs in one flat buffer.
//! let channel = AwgnChannel::from_ebn0_db(2.5, code.rate());
//! let mut source = FrameSource::random(&code, 7)?;
//! let block = source.next_block(&channel, 8);
//!
//! let outputs = decoder.decode_batch(&compiled, LlrBatch::new(&block.llrs, code.n())?)?;
//! let errors: usize = outputs
//!     .iter()
//!     .enumerate()
//!     .map(|(i, o)| o.bit_errors_against(block.codeword(i)))
//!     .sum();
//! assert_eq!(outputs.len(), 8);
//! assert_eq!(errors, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ldpc_arch as arch;
pub use ldpc_channel as channel;
pub use ldpc_codes as codes;
pub use ldpc_core as core;
pub use ldpc_serve as serve;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use ldpc_arch::{
        AreaModel, AsicLdpcDecoder, CircularShifter, DatapathConfig, EnergyReport, ModeRom,
        PipelineModel, PipelineOptions, PowerModel, ThroughputModel,
    };
    pub use ldpc_channel::{
        awgn::AwgnChannel, quantize::LlrQuantizer, stats::ErrorCounter, stats::IterationHistogram,
        workload::BurstProfile, workload::FrameBlock, workload::FrameSource, workload::HarqTraffic,
        workload::HarqTx, workload::MixedTraffic,
    };
    pub use ldpc_codes::{
        CodeId, CodeRate, CompiledCode, Encoder, LayerSchedule, PuncturePattern, QcCode, Standard,
    };
    pub use ldpc_core::{
        decoder::{DecoderConfig, LayeredDecoder},
        kernel_tier, CascadeConfig, CascadeDecoder, CascadeStats, CheckNodeMode, DecodeOutput,
        DecodeWorkspace, Decoder, DecoderArithmetic, EarlyTermination, FixedBpArithmetic,
        FixedMinSumArithmetic, FloatBpArithmetic, FloatMinSumArithmetic, FloodingDecoder,
        HarqCombiner, LaneKernel, LaneScratch, LayerOrderPolicy, LlrBatch, R2Siso, R4Siso,
        SimdLevel, SisoRadix,
    };
    pub use ldpc_serve::{
        CascadePolicy, DecodeOutcome, DecodeService, DecoderPolicy, FrameHandle, HarqKey,
        LatencyStats, Priority, RetryPolicy, ServeError, ServiceConfig, ShardPolicy, ShardStats,
        SoftBufferStats, SubmitError, SubmitOptions,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        assert!(id.is_supported());
        let _ = FloatBpArithmetic::default();
        let _ = PowerModel::paper_90nm();
        let _ = AreaModel::paper_90nm();
        let _ = RetryPolicy::default();
        let _ = HarqKey::new(7, 0);
        let _ = HarqCombiner::new(127);
    }
}
