//! # ldpc-codes — block-structured (quasi-cyclic) LDPC code constructions
//!
//! This crate provides the *code substrate* for the reconfigurable
//! multi-standard LDPC decoder reproduction: quasi-cyclic (QC), block-structured
//! parity-check matrices of the kind used by IEEE 802.11n (WLAN), IEEE 802.16e
//! (WiMax) and DMB-T, together with a systematic encoder and the layered views
//! that the layered belief-propagation decoder consumes.
//!
//! A block-structured parity-check matrix `H` is a `j × k` array of `z × z`
//! sub-matrices, each of which is either the all-zero matrix or a cyclically
//! shifted identity matrix `I_x` with shift `0 ≤ x < z` (Fig. 1 of the paper).
//!
//! For decoding hot paths, [`compiled::CompiledCode`] flattens a [`QcCode`]
//! into a CSR-style layer schedule with precomputed circulant-shift index
//! tables — compile once per code, decode millions of frames.
//!
//! ## Standard families
//!
//! The exact base matrices of the IEEE / DMB-T standards are copyrighted
//! standard text, so this crate ships *standard-compatible synthetic
//! constructions* with identical structural parameters (Table 1 of the paper):
//!
//! | family | `j` (block rows) | `k` (block cols) | `z` (sub-matrix size) |
//! |--------|------------------|------------------|-----------------------|
//! | WLAN 802.11n  | 4–12  | 24 | 27–81  |
//! | WiMax 802.16e | 4–12  | 24 | 24–96  |
//! | DMB-T         | 24–48 | 60 | 127    |
//!
//! The parity part of every generated base matrix is dual-diagonal (WiMax
//! style, with a weight-3 first parity column) so that systematic encoding by
//! back-substitution is always possible; the information part uses
//! deterministic pseudo-random circulant shifts with 4-cycle avoidance.
//!
//! ## Quick example
//!
//! ```
//! use ldpc_codes::{CodeId, CodeRate, Standard};
//!
//! // The WiMax-class rate-1/2 code with 2304-bit codewords (z = 96).
//! let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 2304);
//! let code = id.build().expect("supported code");
//! assert_eq!(code.n(), 2304);
//! assert_eq!(code.z(), 96);
//! assert_eq!(code.block_rows(), 12);
//! assert_eq!(code.block_cols(), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base_matrix;
pub mod compiled;
pub mod construction;
pub mod dense;
pub mod encoder;
pub mod error;
pub mod girth;
pub mod layers;
pub mod puncture;
pub mod qc;
pub mod standard;

mod families;
pub use families::{design_parameters, dmbt, wifi, wimax, FamilyDesignParameters};

pub use base_matrix::{BaseMatrix, ShiftScaling};
pub use compiled::{CompiledCode, CompiledEntry, LaneLayer};
pub use construction::{ConstructionParams, ParityStructure};
pub use dense::DenseParityCheck;
pub use encoder::Encoder;
pub use error::CodeError;
pub use girth::CycleReport;
pub use layers::{Layer, LayerEntry, LayerSchedule};
pub use puncture::PuncturePattern;
pub use qc::QcCode;
pub use standard::{CodeId, CodeRate, CodeSpec, Standard};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodeError>;
