//! Layered views of a block-structured parity-check matrix.
//!
//! The layered belief-propagation decoder of the paper processes `H` one
//! *layer* (block row) at a time; within a layer the `z` parity checks are
//! independent and are decoded in parallel by `z` SISO decoders (block-serial
//! scheduling, Fig. 2). The types here describe a layer and the order in which
//! layers are visited.

use crate::qc::QcCode;

/// One non-zero block inside a layer: which block column it sits in and the
/// circulant shift of its `z × z` identity sub-matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerEntry {
    /// Block-column index in `0..k`.
    pub block_col: usize,
    /// Circulant shift in `0..z`.
    pub shift: usize,
}

/// One layer (block row) of the parity-check matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Index of this layer (block row) in `0..j`.
    pub index: usize,
    /// Non-zero blocks of this layer in ascending block-column order.
    pub entries: Vec<LayerEntry>,
}

impl Layer {
    /// Check-node degree of every expanded row in this layer (`d_m` in the
    /// paper: the number of non-zero blocks).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.entries.len()
    }

    /// The set of block columns this layer touches, ascending.
    #[must_use]
    pub fn block_cols(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.block_col).collect()
    }

    /// Number of block columns shared with another layer. Shared columns are
    /// the source of read-after-write dependencies that can stall the
    /// pipelined schedule of Fig. 4.
    #[must_use]
    pub fn overlap(&self, other: &Layer) -> usize {
        self.entries
            .iter()
            .filter(|e| other.entries.iter().any(|o| o.block_col == e.block_col))
            .count()
    }
}

/// The order in which layers are visited during one full iteration.
///
/// The natural order `0, 1, …, j−1` is always correct; a *shuffled* order that
/// minimizes the overlap between consecutive layers reduces pipeline stalls
/// (the paper cites Gunnam et al. \[10\] for this trick).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSchedule {
    order: Vec<usize>,
}

impl LayerSchedule {
    /// The natural order `0, 1, …, j−1`.
    #[must_use]
    pub fn natural(num_layers: usize) -> Self {
        LayerSchedule {
            order: (0..num_layers).collect(),
        }
    }

    /// Builds a schedule from an explicit order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    #[must_use]
    pub fn from_order(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &l in &order {
            assert!(l < order.len() && !seen[l], "order must be a permutation");
            seen[l] = true;
        }
        LayerSchedule { order }
    }

    /// Greedy stall-minimizing order: starting from layer 0, repeatedly pick
    /// the not-yet-scheduled layer with the smallest block-column overlap with
    /// the previously scheduled layer (ties broken by smallest index).
    ///
    /// This implements the layer shuffling of §III-C used to avoid pipeline
    /// stalls when the decoding of two consecutive layers is overlapped.
    #[must_use]
    pub fn stall_minimizing(code: &QcCode) -> Self {
        let layers = code.layers();
        let j = layers.len();
        if j == 0 {
            return LayerSchedule { order: Vec::new() };
        }
        let mut remaining: Vec<usize> = (1..j).collect();
        let mut order = vec![0];
        while !remaining.is_empty() {
            let prev = *order.last().expect("order is non-empty");
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &cand)| (layers[prev].overlap(&layers[cand]), cand))
                .expect("remaining is non-empty");
            order.push(remaining.remove(pos));
        }
        LayerSchedule { order }
    }

    /// The layer indices in visit order.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of layers in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total block-column overlap between consecutive layers in this schedule
    /// (including the wrap-around pair last → first, since iterations repeat).
    /// Lower is better for the pipelined schedule.
    #[must_use]
    pub fn total_adjacent_overlap(&self, code: &QcCode) -> usize {
        let layers = code.layers();
        if self.order.len() < 2 {
            return 0;
        }
        let mut total = 0;
        for w in self.order.windows(2) {
            total += layers[w[0]].overlap(&layers[w[1]]);
        }
        total += layers[*self.order.last().unwrap()].overlap(&layers[self.order[0]]);
        total
    }

    /// Iterates over the layer indices in visit order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().copied()
    }
}

impl<'a> IntoIterator for &'a LayerSchedule {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, Standard};

    fn test_code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn layer_weight_and_cols() {
        let code = test_code();
        let layers = code.layers();
        assert_eq!(layers.len(), 12);
        for (i, layer) in layers.iter().enumerate() {
            assert_eq!(layer.index, i);
            assert_eq!(layer.weight(), layer.entries.len());
            assert!(layer.weight() >= 2);
            let cols = layer.block_cols();
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
    }

    #[test]
    fn overlap_is_symmetric() {
        let code = test_code();
        let layers = code.layers();
        for a in layers {
            for b in layers {
                assert_eq!(a.overlap(b), b.overlap(a));
            }
            assert_eq!(a.overlap(a), a.weight());
        }
    }

    #[test]
    fn natural_schedule_is_identity() {
        let s = LayerSchedule::natural(5);
        assert_eq!(s.order(), &[0, 1, 2, 3, 4]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_order_accepts_permutation() {
        let s = LayerSchedule::from_order(vec![2, 0, 1]);
        assert_eq!(s.order(), &[2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn from_order_rejects_duplicates() {
        let _ = LayerSchedule::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn stall_minimizing_is_a_permutation() {
        let code = test_code();
        let s = LayerSchedule::stall_minimizing(&code);
        let mut sorted = s.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..code.block_rows()).collect::<Vec<_>>());
    }

    #[test]
    fn stall_minimizing_does_not_increase_overlap() {
        let code = test_code();
        let natural = LayerSchedule::natural(code.block_rows());
        let shuffled = LayerSchedule::stall_minimizing(&code);
        assert!(
            shuffled.total_adjacent_overlap(&code) <= natural.total_adjacent_overlap(&code),
            "greedy schedule should not be worse than the natural order"
        );
    }

    #[test]
    fn schedule_iteration() {
        let s = LayerSchedule::natural(3);
        let via_iter: Vec<_> = s.iter().collect();
        let via_into: Vec<_> = (&s).into_iter().collect();
        assert_eq!(via_iter, vec![0, 1, 2]);
        assert_eq!(via_into, via_iter);
    }

    #[test]
    fn empty_schedule() {
        let s = LayerSchedule::natural(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
