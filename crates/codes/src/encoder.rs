//! Systematic encoder for quasi-cyclic codes with a dual-diagonal parity part.
//!
//! The decoder evaluation needs valid codewords transmitted over the channel;
//! this encoder produces them in `O(E·z)` time using the classic
//! back-substitution procedure enabled by the dual-diagonal parity structure
//! (the same procedure used for the real IEEE 802.16e codes).

use crate::error::CodeError;
use crate::qc::QcCode;
use crate::Result;

/// The parity-part structure detected by the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DetectedParity {
    /// Weight-3 first parity column (shift `x0` top/bottom, shift 0 at
    /// `mid_row`) followed by a dual diagonal of identity blocks.
    DualDiagonalW3 {
        /// Shift of the top/bottom entries of the first parity column.
        x0: usize,
        /// Row holding the shift-0 entry of the first parity column.
        mid_row: usize,
    },
    /// Lower-bidiagonal parity part of identity blocks.
    LowerBidiagonal,
}

/// Systematic encoder for a [`QcCode`].
///
/// ```
/// use ldpc_codes::{CodeId, CodeRate, Encoder, Standard};
///
/// # fn main() -> Result<(), ldpc_codes::CodeError> {
/// let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
/// let encoder = Encoder::new(&code)?;
/// let info = vec![1u8; code.info_bits()];
/// let codeword = encoder.encode(&info)?;
/// assert!(code.is_codeword(&codeword)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    code: QcCode,
    structure: DetectedParity,
}

impl Encoder {
    /// Analyses the parity part of `code` and prepares an encoder.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEncodable`] if the parity part is neither the
    /// weight-3 dual-diagonal structure nor lower-bidiagonal.
    pub fn new(code: &QcCode) -> Result<Self> {
        let structure = detect_parity_structure(code)?;
        Ok(Encoder {
            code: code.clone(),
            structure,
        })
    }

    /// The code this encoder produces codewords for.
    #[must_use]
    pub fn code(&self) -> &QcCode {
        &self.code
    }

    /// Encodes `info` (one bit per byte, values 0/1) into a systematic
    /// codeword `[info | parity]` of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InfoLengthMismatch`] if `info.len()` is not the
    /// number of information bits of the code.
    pub fn encode(&self, info: &[u8]) -> Result<Vec<u8>> {
        let mut codeword = vec![0u8; self.code.n()];
        self.encode_into(info, &mut codeword)?;
        Ok(codeword)
    }

    /// Like [`encode`](Self::encode), but writes the codeword into a
    /// caller-owned buffer (batched workload generation reuses one flat
    /// buffer for a whole block of frames).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InfoLengthMismatch`] if `info.len()` is not the
    /// number of information bits of the code.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn encode_into(&self, info: &[u8], codeword: &mut [u8]) -> Result<()> {
        assert_eq!(
            codeword.len(),
            self.code.n(),
            "codeword buffer length mismatch"
        );
        let z = self.code.z();
        let j = self.code.block_rows();
        let k = self.code.block_cols();
        let k_info = k - j;
        if info.len() != k_info * z {
            return Err(CodeError::InfoLengthMismatch {
                expected: k_info * z,
                actual: info.len(),
            });
        }

        // Per-layer syndromes of the information part:
        // s_l[r] = XOR over info blocks (c, shift) of u[c·z + (r+shift) mod z].
        let mut s = vec![vec![0u8; z]; j];
        for layer in self.code.layers() {
            let sl = &mut s[layer.index];
            for e in layer.entries.iter().filter(|e| e.block_col < k_info) {
                let block = &info[e.block_col * z..(e.block_col + 1) * z];
                for (r, dst) in sl.iter_mut().enumerate() {
                    *dst ^= block[(r + e.shift) % z] & 1;
                }
            }
        }

        // Solve for the parity blocks.
        let mut p = vec![vec![0u8; z]; j];
        match self.structure {
            DetectedParity::DualDiagonalW3 { x0, mid_row } => {
                // p0 = XOR of all layer syndromes (the dual-diagonal columns and
                // the equal top/bottom shifts cancel in the sum).
                let mut p0 = vec![0u8; z];
                for sl in &s {
                    for (dst, &bit) in p0.iter_mut().zip(sl) {
                        *dst ^= bit;
                    }
                }
                p[0] = p0;
                // Row 0: s_0 + I_{x0}·p_0 + p_1 = 0.
                p[1] = xor(&s[0], &cyclic_shift(&p[0], x0, z));
                // Rows 1..j-2: s_l + h_l·p_0 + p_l + p_{l+1} = 0.
                for l in 1..j - 1 {
                    let mut next = xor(&s[l], &p[l]);
                    if l == mid_row {
                        next = xor(&next, &p[0]);
                    }
                    p[l + 1] = next;
                }
            }
            DetectedParity::LowerBidiagonal => {
                // Row l: s_l + p_{l-1} + p_l = 0.
                p[0] = s[0].clone();
                for l in 1..j {
                    p[l] = xor(&s[l], &p[l - 1]);
                }
            }
        }

        codeword[..info.len()].copy_from_slice(info);
        for (l, block) in p.iter().enumerate() {
            codeword[info.len() + l * z..info.len() + (l + 1) * z].copy_from_slice(block);
        }
        Ok(())
    }

    /// Encodes the all-zero information word (a valid codeword of any linear
    /// code, commonly used in Monte-Carlo BER simulation).
    #[must_use]
    pub fn all_zero_codeword(&self) -> Vec<u8> {
        vec![0u8; self.code.n()]
    }
}

/// `(I_s · v)[r] = v[(r + s) mod z]`.
fn cyclic_shift(v: &[u8], shift: usize, z: usize) -> Vec<u8> {
    (0..z).map(|r| v[(r + shift) % z]).collect()
}

fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
}

fn detect_parity_structure(code: &QcCode) -> Result<DetectedParity> {
    let base = code.base();
    let j = code.block_rows();
    let k = code.block_cols();
    let k_info = k - j;
    if j < 2 {
        return Err(CodeError::NotEncodable {
            reason: "need at least two block rows".to_string(),
        });
    }

    // Try the weight-3 dual-diagonal structure first (WiMax-style).
    let first_col_ok = base.col_weight(k_info) == 3
        && base.get(0, k_info).is_some()
        && base.get(j - 1, k_info).is_some()
        && base.get(0, k_info) == base.get(j - 1, k_info);
    if first_col_ok {
        let mid_row = (1..j - 1).find(|&r| base.get(r, k_info) == Some(0));
        let dual_ok = (1..j).all(|t| {
            base.get(t - 1, k_info + t) == Some(0)
                && base.get(t, k_info + t) == Some(0)
                && base.col_weight(k_info + t) == 2
        });
        if let (Some(mid_row), true) = (mid_row, dual_ok) {
            return Ok(DetectedParity::DualDiagonalW3 {
                x0: base.get(0, k_info).expect("checked above") as usize,
                mid_row,
            });
        }
    }

    // Fall back to the lower-bidiagonal structure.
    let bidiag_ok = (0..j).all(|t| {
        base.get(t, k_info + t) == Some(0)
            && (t + 1 >= j || base.get(t + 1, k_info + t) == Some(0))
            && base.col_weight(k_info + t) <= 2
    });
    if bidiag_ok {
        return Ok(DetectedParity::LowerBidiagonal);
    }

    Err(CodeError::NotEncodable {
        reason: "parity part is neither weight-3 dual-diagonal nor lower-bidiagonal".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::{ConstructionParams, ParityStructure};
    use crate::standard::{CodeId, CodeRate, Standard};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_info(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn encoded_words_satisfy_all_parity_checks() {
        for id in [
            CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576),
            CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 2304),
            CodeId::new(Standard::Wimax80216e, CodeRate::R3_4, 576),
            CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648),
            CodeId::new(Standard::Wifi80211n, CodeRate::R5_6, 1944),
        ] {
            let code = id.build().unwrap();
            let encoder = Encoder::new(&code).unwrap();
            for seed in 0..3 {
                let info = random_info(code.info_bits(), seed);
                let cw = encoder.encode(&info).unwrap();
                assert_eq!(cw.len(), code.n());
                assert!(code.is_codeword(&cw).unwrap(), "invalid codeword for {id}");
                // Systematic: information bits appear unchanged.
                assert_eq!(&cw[..code.info_bits()], info.as_slice());
            }
        }
    }

    #[test]
    fn lower_bidiagonal_codes_encode_correctly() {
        let mut params = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R2_3);
        params.parity = ParityStructure::LowerBidiagonal;
        let code = params.build_code(48).unwrap();
        let encoder = Encoder::new(&code).unwrap();
        let info = random_info(code.info_bits(), 7);
        let cw = encoder.encode(&info).unwrap();
        assert!(code.is_codeword(&cw).unwrap());
    }

    #[test]
    fn zero_info_encodes_to_zero_codeword() {
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap();
        let encoder = Encoder::new(&code).unwrap();
        let cw = encoder.encode(&vec![0u8; code.info_bits()]).unwrap();
        assert_eq!(cw, encoder.all_zero_codeword());
    }

    #[test]
    fn encode_rejects_wrong_info_length() {
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap();
        let encoder = Encoder::new(&code).unwrap();
        assert!(matches!(
            encoder.encode(&[0u8; 3]),
            Err(CodeError::InfoLengthMismatch { .. })
        ));
    }

    #[test]
    fn linearity_of_the_encoder() {
        // XOR of two codewords must be a codeword (linear code).
        let code = CodeId::new(Standard::Wifi80211n, CodeRate::R2_3, 1296)
            .build()
            .unwrap();
        let encoder = Encoder::new(&code).unwrap();
        let a = random_info(code.info_bits(), 11);
        let b = random_info(code.info_bits(), 13);
        let cw_a = encoder.encode(&a).unwrap();
        let cw_b = encoder.encode(&b).unwrap();
        let sum: Vec<u8> = cw_a.iter().zip(&cw_b).map(|(&x, &y)| x ^ y).collect();
        assert!(code.is_codeword(&sum).unwrap());
    }

    #[test]
    fn cyclic_shift_convention() {
        let v = vec![1, 0, 0, 0];
        assert_eq!(cyclic_shift(&v, 1, 4), vec![0, 0, 0, 1]);
        assert_eq!(cyclic_shift(&v, 0, 4), v);
        assert_eq!(cyclic_shift(&v, 4, 4), v);
    }

    #[test]
    fn dmbt_class_codes_encode() {
        let code = CodeId::new(Standard::DmbT, CodeRate::R3_5, 60 * 127)
            .build()
            .unwrap();
        let encoder = Encoder::new(&code).unwrap();
        let info = random_info(code.info_bits(), 3);
        let cw = encoder.encode(&info).unwrap();
        assert!(code.is_codeword(&cw).unwrap());
    }
}
