//! Short-cycle analysis of quasi-cyclic LDPC codes.
//!
//! Cycles of length 4 in the Tanner graph degrade belief-propagation
//! performance because messages become correlated after a single iteration.
//! For quasi-cyclic codes the 4-cycle condition can be checked directly on the
//! base matrix: two block rows `r₁, r₂` that share two block columns `c₁, c₂`
//! contribute `z` 4-cycles iff
//!
//! ```text
//! s(r₁,c₁) − s(r₂,c₁) + s(r₂,c₂) − s(r₁,c₂) ≡ 0  (mod z)
//! ```
//!
//! The synthetic code constructions in this crate use this check to avoid
//! 4-cycles where the degree distribution permits.

use crate::base_matrix::BaseMatrix;
use crate::qc::QcCode;

/// Result of a short-cycle scan over a quasi-cyclic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleReport {
    /// Number of block-level 4-cycle configurations found (each corresponds to
    /// `z` cycles in the expanded graph).
    pub four_cycle_blocks: usize,
    /// Number of row-pair/column-pair combinations examined.
    pub checked_combinations: usize,
}

impl CycleReport {
    /// Whether the code is free of length-4 cycles.
    #[must_use]
    pub fn is_four_cycle_free(&self) -> bool {
        self.four_cycle_blocks == 0
    }

    /// Number of 4-cycles in the expanded Tanner graph.
    #[must_use]
    pub fn expanded_four_cycles(&self, z: usize) -> usize {
        self.four_cycle_blocks * z
    }
}

/// Checks whether placing shift `shift` at `(row, col)` of `base` would create
/// a 4-cycle with the entries already present, for expansion size `z`.
///
/// Used incrementally by the code constructor.
#[must_use]
pub fn placement_creates_four_cycle(
    base: &BaseMatrix,
    row: usize,
    col: usize,
    shift: u32,
    z: usize,
) -> bool {
    let z = z as i64;
    for other_row in 0..base.rows() {
        if other_row == row {
            continue;
        }
        let Some(s_other_col) = base.get(other_row, col) else {
            continue;
        };
        // Both rows have an entry in `col`; look for a second shared column.
        for other_col in 0..base.cols() {
            if other_col == col {
                continue;
            }
            let (Some(s_row_oc), Some(s_other_oc)) =
                (base.get(row, other_col), base.get(other_row, other_col))
            else {
                continue;
            };
            let delta = (shift as i64 - s_other_col as i64) + (s_other_oc as i64 - s_row_oc as i64);
            if delta.rem_euclid(z) == 0 {
                return true;
            }
        }
    }
    false
}

/// Scans the whole code for block-level 4-cycles.
#[must_use]
pub fn count_four_cycles(code: &QcCode) -> CycleReport {
    let base = code.base();
    let z = code.z() as i64;
    let mut report = CycleReport::default();
    for r1 in 0..base.rows() {
        for r2 in (r1 + 1)..base.rows() {
            // Columns shared by both rows.
            let shared: Vec<(usize, u32, u32)> = (0..base.cols())
                .filter_map(|c| match (base.get(r1, c), base.get(r2, c)) {
                    (Some(a), Some(b)) => Some((c, a, b)),
                    _ => None,
                })
                .collect();
            for i in 0..shared.len() {
                for jdx in (i + 1)..shared.len() {
                    report.checked_combinations += 1;
                    let (_, a1, b1) = shared[i];
                    let (_, a2, b2) = shared[jdx];
                    let delta = (a1 as i64 - b1 as i64) + (b2 as i64 - a2 as i64);
                    if delta.rem_euclid(z) == 0 {
                        report.four_cycle_blocks += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, CodeSpec, Standard};

    fn code_with_shifts(entries: Vec<Option<u32>>, rows: usize, cols: usize, z: usize) -> QcCode {
        let base = BaseMatrix::new(rows, cols, z, entries).unwrap();
        let spec = CodeSpec {
            standard: Standard::Wimax80216e,
            rate: CodeRate::R1_2,
            z,
            block_rows: rows,
            block_cols: cols,
        };
        QcCode::from_parts(spec, base).unwrap()
    }

    #[test]
    fn detects_a_deliberate_four_cycle() {
        // Two rows sharing two columns with identical shifts => 4-cycle.
        let code = code_with_shifts(
            vec![Some(1), Some(2), Some(0), Some(1), Some(2), Some(0)],
            2,
            3,
            4,
        );
        let report = count_four_cycles(&code);
        assert!(!report.is_four_cycle_free());
        assert!(report.four_cycle_blocks >= 1);
        assert_eq!(report.expanded_four_cycles(4), report.four_cycle_blocks * 4);
    }

    #[test]
    fn shift_offset_breaks_the_cycle() {
        // Same support but shifts chosen so the cycle condition fails.
        let code = code_with_shifts(
            vec![Some(1), Some(2), Some(0), Some(0), Some(3), Some(2)],
            2,
            3,
            4,
        );
        let report = count_four_cycles(&code);
        assert_eq!(report.four_cycle_blocks, 0);
        assert!(report.checked_combinations > 0);
        assert!(report.is_four_cycle_free());
    }

    #[test]
    fn placement_check_agrees_with_full_scan() {
        let mut base = BaseMatrix::empty(2, 3, 4).unwrap();
        base.set(0, 0, Some(1)).unwrap();
        base.set(0, 1, Some(2)).unwrap();
        base.set(1, 0, Some(1)).unwrap();
        // Placing shift 2 at (1,1) completes a 4-cycle (delta = 0).
        assert!(placement_creates_four_cycle(&base, 1, 1, 2, 4));
        // Placing shift 3 does not.
        assert!(!placement_creates_four_cycle(&base, 1, 1, 3, 4));
    }

    #[test]
    fn generated_standard_codes_have_few_four_cycles() {
        for id in [
            CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576),
            CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648),
        ] {
            let code = id.build().unwrap();
            let report = count_four_cycles(&code);
            // The information part is constructed with 4-cycle avoidance; a
            // handful may remain from the dual-diagonal parity interaction or
            // after shift scaling, but the count must be small relative to E².
            let budget = code.nnz_blocks();
            assert!(
                report.four_cycle_blocks <= budget / 10,
                "{id}: {} four-cycle blocks exceeds budget {}",
                report.four_cycle_blocks,
                budget / 10
            );
        }
    }
}
