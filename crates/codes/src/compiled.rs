//! Precompiled decode schedule of a quasi-cyclic code.
//!
//! [`QcCode`] stores the base-matrix view of the code; turning that view into
//! the column indices a decoder walks costs one `(r + shift) mod z` per edge
//! per frame, plus re-deriving per-layer entry offsets and (for the shuffled
//! schedule) the stall-minimizing layer order. [`CompiledCode`] hoists all of
//! that out of the per-frame hot path, mirroring how the paper's architecture
//! keeps the schedule in the control ROM and streams only messages through the
//! SISO array:
//!
//! * a CSR-style flattened layer schedule (`layer_ptr` into `entries`),
//! * per-entry precomputed edge offsets (`edge_base = entry_index · z`),
//! * a full circulant-shift index table `col_index` mapping every edge
//!   `(entry, r)` to its expanded column, so the inner decode loop is pure
//!   table lookups with no modulo arithmetic, and
//! * a **lane-major SoA layout** ([`LaneLayer`]) exposing, per layer, the
//!   block-column bases and circulant shifts as parallel arrays — the form
//!   consumed by the lane-parallel SISO kernels (see the gather/scatter
//!   contract below).
//!
//! # The lane-major gather/scatter contract
//!
//! The `z` rows of one layer are processed by `z` parallel SISO units in the
//! paper's architecture; in software they are the `z` *lanes* of the kernel
//! layer. For a layer entry (one non-zero circulant block) with block-column
//! base `c = col_base` and shift `s`, lane `r` of that entry touches:
//!
//! * **Λ memory** at `edge_base + r` — already lane-contiguous, so reads and
//!   writes of a whole entry are one stride-1 slice `[edge_base, edge_base+z)`;
//! * **L memory** (the APP values) at `c + ((r + s) mod z)` — a *rotation* of
//!   the contiguous block column `[c, c+z)`. Because the rotation is a
//!   bijection, the lane-major gather of all `z` lanes decomposes into exactly
//!   two stride-1 slice copies: lanes `0..z−s` map to `[c+s, c+z)` and lanes
//!   `z−s..z` map to `[c, c+s)`.
//!
//! Consequently the whole layer update is pure stride-1 gather/compute/scatter
//! over `[edge_base, edge_base+z)` Λ-slices and rotated L-slices, with no
//! per-edge index arithmetic at all. Within one layer every block column
//! appears in at most one entry and the per-entry rotation is a bijection, so
//! the lanes of a layer touch pairwise disjoint L addresses — the
//! independence that lets hardware run `z` SISO units in lock-step and lets
//! software vectorise across lanes. The per-edge `col_index` table (the
//! expanded form of the same mapping) is retained for the row-serial
//! reference path and the syndrome check.
//!
//! Compile once per code, decode millions of frames.

use crate::layers::LayerSchedule;
use crate::qc::QcCode;
use crate::standard::CodeSpec;

/// One non-zero block of the flattened schedule, with precomputed offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledEntry {
    /// Block-column index in `0..k`.
    pub block_col: u32,
    /// Circulant shift in `0..z`.
    pub shift: u32,
    /// First expanded column of the block: `block_col · z`.
    pub col_base: u32,
    /// First edge index of the block: `entry_index · z`. Edge `(entry, r)`
    /// lives at `edge_base + r`, matching the Λ-memory bank layout.
    pub edge_base: u32,
}

/// Lane-major SoA view of one layer's schedule: parallel arrays over the
/// layer's entries (non-zero circulant blocks), in slot order.
///
/// For slot `i`, lane `r` reads/writes Λ at `edge_base[i] + r` and the APP
/// value at `col_base[i] + ((r + shift[i]) mod z)`; see the module-level
/// gather/scatter contract for how that rotation becomes two stride-1 slice
/// copies.
#[derive(Debug, Clone, Copy)]
pub struct LaneLayer<'a> {
    /// First expanded column of each entry's block (`block_col · z`).
    pub col_base: &'a [u32],
    /// Circulant shift of each entry, in `0..z`.
    pub shift: &'a [u32],
    /// First edge index of each entry (`entry_index · z`).
    pub edge_base: &'a [u32],
}

impl LaneLayer<'_> {
    /// Number of entries (= the check-node degree of the layer's rows).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.col_base.len()
    }
}

/// A [`QcCode`] flattened into the table form the decode engine consumes.
///
/// ```
/// use ldpc_codes::{CodeId, CodeRate, CompiledCode, Standard};
///
/// let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
///     .build()
///     .unwrap();
/// let compiled = CompiledCode::compile(&code);
/// assert_eq!(compiled.n(), code.n());
/// assert_eq!(compiled.num_edges(), code.num_edges());
/// // Every edge's column matches the QcCode view.
/// for l in 0..compiled.block_rows() {
///     for (slot, e) in compiled.layer_entries(l).iter().enumerate() {
///         for r in 0..compiled.z() {
///             let col = compiled.edge_col(e.edge_base as usize + r);
///             assert_eq!(col, code.row_neighbors(l * compiled.z() + r)[slot]);
///         }
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledCode {
    spec: CodeSpec,
    num_edges: usize,
    max_degree: usize,
    /// Non-zero blocks of every layer, flattened in layer order.
    entries: Vec<CompiledEntry>,
    /// CSR pointers into `entries`, length `block_rows + 1`.
    layer_ptr: Vec<u32>,
    /// Expanded column of every edge, indexed `entry_index · z + r`.
    col_index: Vec<u32>,
    /// SoA mirror of `entries.col_base`, for the lane-major kernels.
    lane_col_base: Vec<u32>,
    /// SoA mirror of `entries.shift`.
    lane_shift: Vec<u32>,
    /// SoA mirror of `entries.edge_base`.
    lane_edge_base: Vec<u32>,
    /// Greedy stall-minimizing layer order (§III-C); costs O(j²·d) at
    /// compile time, microseconds against the O(E·z) table build.
    stall_order: Vec<u32>,
}

impl CompiledCode {
    /// Flattens `code` into table form. O(E·z) time and memory, run once per
    /// code rather than once per frame.
    #[must_use]
    pub fn compile(code: &QcCode) -> Self {
        let z = code.z();
        let mut entries = Vec::with_capacity(code.nnz_blocks());
        let mut layer_ptr = Vec::with_capacity(code.block_rows() + 1);
        layer_ptr.push(0u32);
        for layer in code.layers() {
            for e in &layer.entries {
                let entry_index = entries.len();
                entries.push(CompiledEntry {
                    block_col: e.block_col as u32,
                    shift: e.shift as u32,
                    col_base: (e.block_col * z) as u32,
                    edge_base: (entry_index * z) as u32,
                });
            }
            layer_ptr.push(entries.len() as u32);
        }
        let mut col_index = Vec::with_capacity(entries.len() * z);
        for e in &entries {
            for r in 0..z {
                col_index.push(e.col_base + ((r as u32 + e.shift) % z as u32));
            }
        }
        let lane_col_base = entries.iter().map(|e| e.col_base).collect();
        let lane_shift = entries.iter().map(|e| e.shift).collect();
        let lane_edge_base = entries.iter().map(|e| e.edge_base).collect();
        let stall_order = LayerSchedule::stall_minimizing(code)
            .order()
            .iter()
            .map(|&l| l as u32)
            .collect();
        CompiledCode {
            spec: *code.spec(),
            num_edges: entries.len() * z,
            max_degree: code.max_layer_degree(),
            entries,
            layer_ptr,
            col_index,
            lane_col_base,
            lane_shift,
            lane_edge_base,
            stall_order,
        }
    }

    /// Structural parameters of the compiled mode.
    #[must_use]
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Codeword length `n = k·z` in bits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.spec.n()
    }

    /// Number of parity checks `m = j·z`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.spec.m()
    }

    /// Number of information bits `n − m`.
    #[must_use]
    pub fn info_bits(&self) -> usize {
        self.spec.info_bits()
    }

    /// Sub-matrix (circulant) size `z`.
    #[must_use]
    pub fn z(&self) -> usize {
        self.spec.z
    }

    /// Number of layers (block rows) `j`.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.spec.block_rows
    }

    /// Number of block columns `k`.
    #[must_use]
    pub fn block_cols(&self) -> usize {
        self.spec.block_cols
    }

    /// Design code rate `(n − m)/n`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.spec.design_rate()
    }

    /// Total number of edges `E·z` (also the Λ-memory size in messages).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Maximum check-node degree over all layers (row scratch sizing).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The flattened entries of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= block_rows()`.
    #[must_use]
    pub fn layer_entries(&self, layer: usize) -> &[CompiledEntry] {
        let start = self.layer_ptr[layer] as usize;
        let end = self.layer_ptr[layer + 1] as usize;
        &self.entries[start..end]
    }

    /// The lane-major SoA view of one layer, consumed by the lane-parallel
    /// SISO kernels. See the module-level gather/scatter contract.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= block_rows()`.
    #[must_use]
    pub fn layer_lanes(&self, layer: usize) -> LaneLayer<'_> {
        let start = self.layer_ptr[layer] as usize;
        let end = self.layer_ptr[layer + 1] as usize;
        LaneLayer {
            col_base: &self.lane_col_base[start..end],
            shift: &self.lane_shift[start..end],
            edge_base: &self.lane_edge_base[start..end],
        }
    }

    /// Check-node degree of every row in `layer`.
    #[must_use]
    pub fn layer_degree(&self, layer: usize) -> usize {
        (self.layer_ptr[layer + 1] - self.layer_ptr[layer]) as usize
    }

    /// Expanded column of an edge (`entry_index · z + r`).
    #[must_use]
    #[inline]
    pub fn edge_col(&self, edge: usize) -> usize {
        self.col_index[edge] as usize
    }

    /// The circulant-shift index table, indexed `entry_index · z + r`.
    #[must_use]
    pub fn col_index(&self) -> &[u32] {
        &self.col_index
    }

    /// Greedy stall-minimizing layer order (§III-C), precomputed via
    /// [`LayerSchedule::stall_minimizing`] so the per-frame decode path never
    /// re-derives it.
    #[must_use]
    pub fn stall_minimizing_order(&self) -> &[u32] {
        &self.stall_order
    }

    /// Whether `hard` (one 0/1 value per code bit) satisfies every parity
    /// check. Allocation-free syndrome test for the decode hot path.
    ///
    /// # Panics
    ///
    /// Panics if `hard.len() != n`.
    #[must_use]
    pub fn syndrome_ok(&self, hard: &[u8]) -> bool {
        assert_eq!(hard.len(), self.n(), "codeword length mismatch");
        let z = self.z();
        for layer in 0..self.block_rows() {
            let entries = self.layer_entries(layer);
            for r in 0..z {
                let mut parity = 0u8;
                for e in entries {
                    parity ^= hard[self.col_index[e.edge_base as usize + r] as usize] & 1;
                }
                if parity != 0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, Standard};

    fn code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_matches_qc_views() {
        let code = code();
        let compiled = CompiledCode::compile(&code);
        assert_eq!(compiled.n(), code.n());
        assert_eq!(compiled.m(), code.m());
        assert_eq!(compiled.z(), code.z());
        assert_eq!(compiled.info_bits(), code.info_bits());
        assert_eq!(compiled.num_edges(), code.num_edges());
        assert_eq!(compiled.max_degree(), code.max_layer_degree());
        assert_eq!(compiled.block_rows(), code.block_rows());
        for l in 0..code.block_rows() {
            assert_eq!(compiled.layer_degree(l), code.layer_degree(l));
            let entries = compiled.layer_entries(l);
            for r in 0..code.z() {
                let row = l * code.z() + r;
                let expected = code.row_neighbors(row);
                let got: Vec<usize> = entries
                    .iter()
                    .map(|e| compiled.edge_col(e.edge_base as usize + r))
                    .collect();
                assert_eq!(got, expected, "layer {l} row {r}");
            }
        }
    }

    #[test]
    fn edge_base_matches_lambda_memory_layout() {
        // The seed decoder indexed Λ as (global block entry)·z + r; the
        // compiled table must preserve that exact layout.
        let code = code();
        let compiled = CompiledCode::compile(&code);
        let z = code.z();
        let mut global_entry = 0usize;
        for l in 0..code.block_rows() {
            for e in compiled.layer_entries(l) {
                assert_eq!(e.edge_base as usize, global_entry * z);
                global_entry += 1;
            }
        }
        assert_eq!(global_entry * z, compiled.num_edges());
    }

    #[test]
    fn syndrome_agrees_with_qc_code() {
        let code = code();
        let compiled = CompiledCode::compile(&code);
        let zero = vec![0u8; code.n()];
        assert!(compiled.syndrome_ok(&zero));
        for flip in [0usize, 17, 333, code.n() - 1] {
            let mut x = zero.clone();
            x[flip] = 1;
            assert_eq!(
                compiled.syndrome_ok(&x),
                code.is_codeword(&x).unwrap(),
                "bit {flip}"
            );
            assert!(!compiled.syndrome_ok(&x));
        }
    }

    #[test]
    fn stall_order_matches_layer_schedule() {
        let code = code();
        let compiled = CompiledCode::compile(&code);
        let expected: Vec<u32> = LayerSchedule::stall_minimizing(&code)
            .order()
            .iter()
            .map(|&l| l as u32)
            .collect();
        assert_eq!(compiled.stall_minimizing_order(), expected.as_slice());
    }

    #[test]
    fn lane_layers_mirror_the_aos_entries() {
        let code = code();
        let compiled = CompiledCode::compile(&code);
        for l in 0..compiled.block_rows() {
            let entries = compiled.layer_entries(l);
            let lanes = compiled.layer_lanes(l);
            assert_eq!(lanes.degree(), entries.len());
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(lanes.col_base[i], e.col_base);
                assert_eq!(lanes.shift[i], e.shift);
                assert_eq!(lanes.edge_base[i], e.edge_base);
            }
        }
    }

    #[test]
    fn lane_cols_satisfy_the_rotation_contract() {
        // The gather/scatter contract: lane r of an entry addresses column
        // col_base + ((r + shift) mod z), so lanes 0..z−s are the contiguous
        // slice [c+s, c+z) and lanes z−s..z are [c, c+s).
        let code = code();
        let compiled = CompiledCode::compile(&code);
        let z = compiled.z() as u32;
        for l in 0..compiled.block_rows() {
            let lanes = compiled.layer_lanes(l);
            for i in 0..lanes.degree() {
                let (c, s) = (lanes.col_base[i], lanes.shift[i]);
                let eb = lanes.edge_base[i] as usize;
                let cols = &compiled.col_index()[eb..eb + z as usize];
                let split = (z - s) as usize;
                for (r, &col) in cols.iter().enumerate() {
                    assert_eq!(col, c + (r as u32 + s) % z);
                    if r < split {
                        assert_eq!(col, c + s + r as u32, "head slice is stride-1");
                    } else {
                        assert_eq!(col, c + (r - split) as u32, "tail slice is stride-1");
                    }
                }
            }
        }
    }

    #[test]
    fn layer_block_columns_are_distinct() {
        // The lane-major path gathers a whole layer before scattering it; that
        // is only equivalent to the row-serial order because every block
        // column appears at most once per layer.
        let code = code();
        let compiled = CompiledCode::compile(&code);
        for l in 0..compiled.block_rows() {
            let lanes = compiled.layer_lanes(l);
            let mut cols: Vec<u32> = lanes.col_base.to_vec();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), lanes.degree(), "layer {l} repeats a block");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn syndrome_rejects_wrong_length() {
        let compiled = CompiledCode::compile(&code());
        let _ = compiled.syndrome_ok(&[0u8; 3]);
    }
}
