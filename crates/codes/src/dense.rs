//! Dense GF(2) view of a parity-check matrix.
//!
//! The dense representation is only used for validation and small-code tests
//! (rank checks, exhaustive codeword enumeration); the decoder and the
//! architecture model always work on the sparse quasi-cyclic views.

use crate::error::CodeError;
use crate::qc::QcCode;
use crate::Result;

/// A dense `m × n` binary parity-check matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseParityCheck {
    m: usize,
    n: usize,
    /// Row-major bits, one byte per bit (0/1).
    rows: Vec<Vec<u8>>,
}

impl DenseParityCheck {
    /// Builds the dense matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DimensionMismatch`] if the rows have inconsistent
    /// lengths.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Result<Self> {
        let m = rows.len();
        let n = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != n) {
            return Err(CodeError::DimensionMismatch {
                expected: n,
                actual: rows.iter().map(Vec::len).find(|&l| l != n).unwrap_or(0),
            });
        }
        let rows = rows
            .into_iter()
            .map(|r| r.into_iter().map(|b| b & 1).collect())
            .collect();
        Ok(DenseParityCheck { m, n, rows })
    }

    /// Expands a quasi-cyclic code into its dense parity-check matrix.
    #[must_use]
    pub fn from_qc(code: &QcCode) -> Self {
        let m = code.m();
        let n = code.n();
        let mut rows = vec![vec![0u8; n]; m];
        for (row, row_bits) in rows.iter_mut().enumerate() {
            for col in code.row_neighbors(row) {
                row_bits[col] = 1;
            }
        }
        DenseParityCheck { m, n, rows }
    }

    /// Number of rows `m`.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of columns `n`.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.n
    }

    /// The bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        self.rows[row][col]
    }

    /// Computes the syndrome `H·xᵀ` over GF(2).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CodewordLengthMismatch`] if `x.len() != n`.
    pub fn syndrome(&self, x: &[u8]) -> Result<Vec<u8>> {
        if x.len() != self.n {
            return Err(CodeError::CodewordLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(x)
                    .fold(0u8, |acc, (&h, &b)| acc ^ (h & b & 1))
            })
            .collect())
    }

    /// Whether `x` satisfies every parity check.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CodewordLengthMismatch`] if `x.len() != n`.
    pub fn is_codeword(&self, x: &[u8]) -> Result<bool> {
        Ok(self.syndrome(x)?.iter().all(|&s| s == 0))
    }

    /// GF(2) rank of the matrix, computed by Gaussian elimination on a copy.
    ///
    /// A code with `rank(H) = m` has exactly `n − m` information bits; linearly
    /// dependent rows reduce the effective number of parity constraints.
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..self.n {
            if pivot_row >= rows.len() {
                break;
            }
            let Some(found) = (pivot_row..rows.len()).find(|&r| rows[r][col] == 1) else {
                continue;
            };
            rows.swap(pivot_row, found);
            let pivot = rows[pivot_row].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != pivot_row && row[col] == 1 {
                    for (dst, src) in row.iter_mut().zip(&pivot) {
                        *dst ^= src;
                    }
                }
            }
            pivot_row += 1;
            rank += 1;
        }
        rank
    }

    /// Number of non-zero entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|&&b| b == 1).count())
            .sum()
    }

    /// Density of the matrix (fraction of entries that are 1). LDPC matrices
    /// are, by definition, very sparse.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.m == 0 || self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.m as f64 * self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, Standard};

    #[test]
    fn from_rows_validates_shape() {
        assert!(DenseParityCheck::from_rows(vec![vec![1, 0], vec![1]]).is_err());
        let h = DenseParityCheck::from_rows(vec![vec![1, 0, 1], vec![0, 1, 1]]).unwrap();
        assert_eq!(h.num_rows(), 2);
        assert_eq!(h.num_cols(), 3);
        assert_eq!(h.nnz(), 4);
    }

    #[test]
    fn rank_of_simple_matrices() {
        let h =
            DenseParityCheck::from_rows(vec![vec![1, 0, 1], vec![0, 1, 1], vec![1, 1, 0]]).unwrap();
        // Third row is the sum of the first two.
        assert_eq!(h.rank(), 2);
        let id = DenseParityCheck::from_rows(vec![vec![1, 0], vec![0, 1]]).unwrap();
        assert_eq!(id.rank(), 2);
        let zero = DenseParityCheck::from_rows(vec![vec![0, 0], vec![0, 0]]).unwrap();
        assert_eq!(zero.rank(), 0);
    }

    #[test]
    fn syndrome_matches_hand_computation() {
        let h = DenseParityCheck::from_rows(vec![vec![1, 1, 0], vec![0, 1, 1]]).unwrap();
        assert_eq!(h.syndrome(&[1, 1, 0]).unwrap(), vec![0, 1]);
        assert_eq!(h.syndrome(&[1, 1, 1]).unwrap(), vec![0, 0]);
        assert!(h.is_codeword(&[1, 1, 1]).unwrap());
        assert!(h.syndrome(&[1, 1]).is_err());
    }

    #[test]
    fn dense_expansion_agrees_with_sparse_views() {
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R5_6, 576)
            .build()
            .unwrap();
        let dense = DenseParityCheck::from_qc(&code);
        assert_eq!(dense.num_rows(), code.m());
        assert_eq!(dense.num_cols(), code.n());
        assert_eq!(dense.nnz(), code.num_edges());
        for row in (0..code.m()).step_by(17) {
            let neighbors = code.row_neighbors(row);
            for col in 0..code.n() {
                let expected = u8::from(neighbors.contains(&col));
                assert_eq!(dense.get(row, col), expected);
            }
        }
        assert!(dense.density() < 0.2, "LDPC matrix should be sparse");
    }

    #[test]
    fn qc_code_parity_checks_have_full_or_near_full_rank() {
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap();
        let dense = DenseParityCheck::from_qc(&code);
        // The dual-diagonal construction guarantees full row rank.
        assert_eq!(dense.rank(), code.m());
    }
}
