//! Error type shared by the code-construction crate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing, expanding, encoding or validating a
/// quasi-cyclic LDPC code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The requested (standard, rate, length) combination is not part of the
    /// supported mode set.
    UnsupportedCode {
        /// Human-readable description of the requested mode.
        requested: String,
    },
    /// A shift value was out of range for the sub-matrix size.
    ShiftOutOfRange {
        /// Offending shift value.
        shift: u32,
        /// Sub-matrix size `z`.
        z: usize,
    },
    /// Base-matrix dimensions are inconsistent with the supplied entries.
    DimensionMismatch {
        /// Expected number of entries (`rows * cols`).
        expected: usize,
        /// Number of entries actually supplied.
        actual: usize,
    },
    /// The sub-matrix size must be strictly positive.
    InvalidSubMatrixSize {
        /// The offending value.
        z: usize,
    },
    /// The information word handed to the encoder has the wrong length.
    InfoLengthMismatch {
        /// Expected number of information bits.
        expected: usize,
        /// Number supplied.
        actual: usize,
    },
    /// The codeword handed to a checker has the wrong length.
    CodewordLengthMismatch {
        /// Expected codeword length `n`.
        expected: usize,
        /// Number supplied.
        actual: usize,
    },
    /// The parity part of the base matrix does not have the dual-diagonal
    /// structure required by the systematic back-substitution encoder.
    NotEncodable {
        /// Explanation of the structural violation.
        reason: String,
    },
    /// A base matrix failed structural validation.
    InvalidBaseMatrix {
        /// Explanation of the violation.
        reason: String,
    },
    /// A textual code identifier could not be parsed (see
    /// [`crate::CodeId`]'s `FromStr` implementation for the format).
    ParseCode {
        /// Explanation of the violation.
        reason: String,
    },
    /// A caller-supplied parameter is out of its valid domain (e.g. a
    /// zero traffic weight).
    InvalidParameter {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::UnsupportedCode { requested } => {
                write!(f, "unsupported code mode: {requested}")
            }
            CodeError::ShiftOutOfRange { shift, z } => {
                write!(
                    f,
                    "circulant shift {shift} out of range for sub-matrix size {z}"
                )
            }
            CodeError::DimensionMismatch { expected, actual } => {
                write!(f, "base matrix expected {expected} entries, got {actual}")
            }
            CodeError::InvalidSubMatrixSize { z } => {
                write!(f, "invalid sub-matrix size {z}")
            }
            CodeError::InfoLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "information word length mismatch: expected {expected}, got {actual}"
                )
            }
            CodeError::CodewordLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "codeword length mismatch: expected {expected}, got {actual}"
                )
            }
            CodeError::NotEncodable { reason } => {
                write!(f, "parity structure is not encodable: {reason}")
            }
            CodeError::InvalidBaseMatrix { reason } => {
                write!(f, "invalid base matrix: {reason}")
            }
            CodeError::ParseCode { reason } => {
                write!(f, "cannot parse code id: {reason}")
            }
            CodeError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CodeError::InvalidSubMatrixSize { z: 0 };
        let s = e.to_string();
        assert!(s.starts_with("invalid"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }

    #[test]
    fn unsupported_code_mentions_request() {
        let e = CodeError::UnsupportedCode {
            requested: "802.16e rate 7/8 n=1000".to_string(),
        };
        assert!(e.to_string().contains("rate 7/8"));
    }
}
