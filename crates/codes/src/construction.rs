//! Synthetic construction of standard-compatible base matrices.
//!
//! The IEEE 802.11n / 802.16e / DMB-T base matrices themselves are copyrighted
//! standard text, so this reproduction generates *standard-compatible*
//! matrices: identical dimensions (`j × k`), identical sub-matrix sizes,
//! a dual-diagonal (encodable) parity part and a pseudo-random information
//! part with 4-cycle avoidance. The construction is fully deterministic for a
//! given `(standard, rate)` so every run of the simulator, the tests and the
//! benchmarks uses exactly the same codes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base_matrix::{BaseMatrix, ShiftScaling};
use crate::error::CodeError;
use crate::girth;
use crate::qc::QcCode;
use crate::standard::{CodeRate, CodeSpec, Standard};
use crate::Result;

/// Structure of the parity (right-hand) part of the base matrix, which
/// determines how systematic encoding proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParityStructure {
    /// WiMax-style dual-diagonal structure: the first parity column has weight
    /// 3 (equal non-zero shifts at the top and bottom rows, shift 0 in a
    /// middle row) and the remaining parity columns form a dual diagonal of
    /// identity blocks. Encoding needs the "sum of all layers" trick.
    #[default]
    DualDiagonalW3,
    /// Strictly lower-bidiagonal parity part: parity column `t` has identity
    /// blocks in rows `t` and `t+1`. Encoding is plain back-substitution.
    LowerBidiagonal,
}

/// Parameters controlling a synthetic base-matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionParams {
    /// Standard family (fixes `k` and the admissible `z` set).
    pub standard: Standard,
    /// Code rate (fixes `j`).
    pub rate: CodeRate,
    /// Design sub-matrix size the shifts are generated for (the family's
    /// largest `z`).
    pub design_z: usize,
    /// Additional expansion sizes (with their scaling rule) for which 4-cycle
    /// avoidance is also enforced during shift selection.
    pub also_avoid_cycles_at: Vec<(usize, ShiftScaling)>,
    /// RNG seed; the default is derived deterministically from
    /// `(standard, rate)`.
    pub seed: u64,
    /// Parity-part structure.
    pub parity: ParityStructure,
    /// Column weight used for most information columns.
    pub base_column_weight: usize,
    /// Column weight used for the first `high_weight_columns` information
    /// columns (standards use a few higher-degree columns to speed up
    /// convergence).
    pub high_column_weight: usize,
    /// Number of high-weight information columns.
    pub high_weight_columns: usize,
}

impl ConstructionParams {
    /// Canonical parameters for a `(standard, rate)` mode: design `z` is the
    /// family's largest expansion, the seed is a fixed function of the mode,
    /// and 4-cycle avoidance is additionally enforced at the family's smallest
    /// expansion.
    #[must_use]
    pub fn for_mode(standard: Standard, rate: CodeRate) -> Self {
        let sizes = standard.sub_matrix_sizes();
        let design_z = *sizes.last().expect("every family has at least one z");
        let smallest = *sizes.first().expect("every family has at least one z");
        let scaling = default_scaling(standard);
        let also = if smallest != design_z {
            vec![(smallest, scaling)]
        } else {
            Vec::new()
        };
        let k = standard.block_cols();
        let j = rate
            .block_rows_for(k)
            .expect("supported rates divide the block-column count");
        ConstructionParams {
            standard,
            rate,
            design_z,
            also_avoid_cycles_at: also,
            seed: mode_seed(standard, rate),
            parity: ParityStructure::DualDiagonalW3,
            base_column_weight: 3.min(j),
            high_column_weight: 6.min(j),
            high_weight_columns: (k - j) / 4,
        }
    }

    /// Number of block rows `j` implied by the rate.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.rate
            .block_rows_for(self.standard.block_cols())
            .expect("validated at construction")
    }

    /// Number of block columns `k`.
    #[must_use]
    pub fn block_cols(&self) -> usize {
        self.standard.block_cols()
    }

    /// Generates the base matrix at the design expansion size.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidBaseMatrix`] if the requested degree
    /// profile cannot be realized (e.g. a column weight exceeding `j`).
    pub fn build_base(&self) -> Result<BaseMatrix> {
        let j = self.block_rows();
        let k = self.block_cols();
        let k_info = k - j;
        if self.base_column_weight > j || self.high_column_weight > j {
            return Err(CodeError::InvalidBaseMatrix {
                reason: format!(
                    "column weight ({}, {}) exceeds number of block rows {j}",
                    self.base_column_weight, self.high_column_weight
                ),
            });
        }
        if self.base_column_weight < 2 {
            return Err(CodeError::InvalidBaseMatrix {
                reason: "information columns need weight >= 2".to_string(),
            });
        }
        let mut base = BaseMatrix::empty(j, k, self.design_z)?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        self.place_parity_part(&mut base, &mut rng)?;
        self.place_info_part(&mut base, &mut rng, k_info)?;
        base.validate()?;
        Ok(base)
    }

    /// Generates the full quasi-cyclic code for expansion size `z`, scaling
    /// the design base matrix with the family's rule.
    ///
    /// # Errors
    ///
    /// Propagates construction errors, and
    /// [`CodeError::InvalidSubMatrixSize`] if `z == 0`.
    pub fn build_code(&self, z: usize) -> Result<QcCode> {
        let base = self.build_base()?;
        let scaled = base.scale_to(z, default_scaling(self.standard))?;
        let spec = CodeSpec {
            standard: self.standard,
            rate: self.rate,
            z,
            block_rows: self.block_rows(),
            block_cols: self.block_cols(),
        };
        QcCode::from_parts(spec, scaled)
    }

    fn place_parity_part(&self, base: &mut BaseMatrix, rng: &mut StdRng) -> Result<()> {
        let j = self.block_rows();
        let k = self.block_cols();
        let k_info = k - j;
        match self.parity {
            ParityStructure::DualDiagonalW3 => {
                // Weight-3 first parity column: equal shifts top/bottom, shift 0
                // in a middle row. Equal shifts stay equal under either scaling
                // rule, preserving encodability for every expansion size.
                let x0 = 1 + rng.gen_range(0..(self.design_z as u32 - 1));
                let mid = j / 2;
                base.set(0, k_info, Some(x0))?;
                base.set(mid, k_info, Some(0))?;
                base.set(j - 1, k_info, Some(x0))?;
                // Dual diagonal of identity blocks on the remaining columns.
                for t in 1..j {
                    base.set(t - 1, k_info + t, Some(0))?;
                    base.set(t, k_info + t, Some(0))?;
                }
            }
            ParityStructure::LowerBidiagonal => {
                for t in 0..j {
                    base.set(t, k_info + t, Some(0))?;
                    if t + 1 < j {
                        base.set(t + 1, k_info + t, Some(0))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn place_info_part(
        &self,
        base: &mut BaseMatrix,
        rng: &mut StdRng,
        k_info: usize,
    ) -> Result<()> {
        let j = self.block_rows();
        for col in 0..k_info {
            let weight = if col < self.high_weight_columns {
                self.high_column_weight
            } else {
                self.base_column_weight
            };
            let rows = self.pick_rows(base, rng, weight, j);
            for row in rows {
                let shift = self.pick_shift(base, rng, row, col);
                base.set(row, col, Some(shift))?;
            }
        }
        Ok(())
    }

    /// Picks `weight` distinct rows, preferring the currently lightest rows so
    /// the check-node degrees stay balanced (structured codes have near-uniform
    /// row weights).
    fn pick_rows(
        &self,
        base: &BaseMatrix,
        rng: &mut StdRng,
        weight: usize,
        j: usize,
    ) -> Vec<usize> {
        let mut candidates: Vec<(usize, usize, u32)> = (0..j)
            .map(|r| (base.row_weight(r), rng.gen::<u32>(), r as u32))
            .map(|(w, tie, r)| (w, r as usize, tie))
            .collect();
        candidates.sort_by_key(|&(w, _, tie)| (w, tie));
        candidates
            .into_iter()
            .take(weight)
            .map(|(_, r, _)| r)
            .collect()
    }

    /// Picks a shift for `(row, col)` that avoids 4-cycles at the design `z`
    /// and at every additional expansion listed in `also_avoid_cycles_at`,
    /// falling back to the last candidate if no conflict-free shift exists.
    fn pick_shift(&self, base: &BaseMatrix, rng: &mut StdRng, row: usize, col: usize) -> u32 {
        const ATTEMPTS: usize = 200;
        let mut last = 0;
        for _ in 0..ATTEMPTS {
            let shift = rng.gen_range(0..self.design_z as u32);
            last = shift;
            if self.shift_is_cycle_free(base, row, col, shift) {
                return shift;
            }
        }
        last
    }

    fn shift_is_cycle_free(&self, base: &BaseMatrix, row: usize, col: usize, shift: u32) -> bool {
        if girth::placement_creates_four_cycle(base, row, col, shift, self.design_z) {
            return false;
        }
        for &(z, scaling) in &self.also_avoid_cycles_at {
            if placement_creates_scaled_four_cycle(base, row, col, shift, self.design_z, z, scaling)
            {
                return false;
            }
        }
        true
    }
}

/// The shift-scaling rule each family uses when expanding at sizes below the
/// design size (mirrors the real standards: 802.11n scales proportionally,
/// 802.16e reduces modulo `z`).
#[must_use]
pub fn default_scaling(standard: Standard) -> ShiftScaling {
    match standard {
        Standard::Wifi80211n => ShiftScaling::Floor,
        Standard::Wimax80216e | Standard::DmbT => ShiftScaling::Modulo,
    }
}

/// Deterministic seed for a `(standard, rate)` mode.
#[must_use]
pub fn mode_seed(standard: Standard, rate: CodeRate) -> u64 {
    let s = match standard {
        Standard::Wifi80211n => 1,
        Standard::Wimax80216e => 2,
        Standard::DmbT => 3,
    };
    let r = match rate {
        CodeRate::R1_5 => 1,
        CodeRate::R2_5 => 2,
        CodeRate::R3_5 => 3,
        CodeRate::R1_2 => 4,
        CodeRate::R2_3 => 5,
        CodeRate::R3_4 => 6,
        CodeRate::R5_6 => 7,
    };
    0x4C44_5043_5335_3038u64 ^ (s * 1_000_003 + r * 7919)
}

/// Like [`girth::placement_creates_four_cycle`], but evaluates the cycle
/// condition after scaling all involved shifts to a different expansion size.
fn placement_creates_scaled_four_cycle(
    base: &BaseMatrix,
    row: usize,
    col: usize,
    shift: u32,
    design_z: usize,
    target_z: usize,
    scaling: ShiftScaling,
) -> bool {
    let zt = target_z as i64;
    let scale = |x: u32| scaling.scale(x, design_z, target_z) as i64;
    let shift_scaled = scale(shift);
    for other_row in 0..base.rows() {
        if other_row == row {
            continue;
        }
        let Some(s_other_col) = base.get(other_row, col) else {
            continue;
        };
        for other_col in 0..base.cols() {
            if other_col == col {
                continue;
            }
            let (Some(s_row_oc), Some(s_other_oc)) =
                (base.get(row, other_col), base.get(other_row, other_col))
            else {
                continue;
            };
            let delta = (shift_scaled - scale(s_other_col)) + (scale(s_other_oc) - scale(s_row_oc));
            if delta.rem_euclid(zt) == 0 {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::girth::count_four_cycles;

    #[test]
    fn construction_is_deterministic() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        let a = p.build_base().unwrap();
        let b = p.build_base().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_rates_give_different_matrices() {
        let a = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2)
            .build_base()
            .unwrap();
        let b = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R2_3)
            .build_base()
            .unwrap();
        assert_ne!(a.rows(), b.rows());
    }

    #[test]
    fn dimensions_follow_rate() {
        for (rate, j) in [
            (CodeRate::R1_2, 12),
            (CodeRate::R2_3, 8),
            (CodeRate::R3_4, 6),
            (CodeRate::R5_6, 4),
        ] {
            let p = ConstructionParams::for_mode(Standard::Wimax80216e, rate);
            let base = p.build_base().unwrap();
            assert_eq!(base.rows(), j);
            assert_eq!(base.cols(), 24);
            assert_eq!(base.design_z(), 96);
        }
    }

    #[test]
    fn parity_part_is_dual_diagonal_w3() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        let base = p.build_base().unwrap();
        let j = base.rows();
        let k_info = base.cols() - j;
        // Weight-3 first parity column with matching top/bottom shifts.
        assert_eq!(base.col_weight(k_info), 3);
        let top = base.get(0, k_info).unwrap();
        let bottom = base.get(j - 1, k_info).unwrap();
        assert_eq!(top, bottom);
        assert_eq!(base.get(j / 2, k_info), Some(0));
        // Remaining parity columns are weight-2 identity pairs.
        for t in 1..j {
            assert_eq!(base.get(t - 1, k_info + t), Some(0));
            assert_eq!(base.get(t, k_info + t), Some(0));
            assert_eq!(base.col_weight(k_info + t), 2);
        }
    }

    #[test]
    fn lower_bidiagonal_structure() {
        let mut p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R3_4);
        p.parity = ParityStructure::LowerBidiagonal;
        let base = p.build_base().unwrap();
        let j = base.rows();
        let k_info = base.cols() - j;
        for t in 0..j {
            assert_eq!(base.get(t, k_info + t), Some(0));
            if t + 1 < j {
                assert_eq!(base.get(t + 1, k_info + t), Some(0));
            }
        }
    }

    #[test]
    fn info_columns_have_requested_weights() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        let base = p.build_base().unwrap();
        let j = base.rows();
        let k_info = base.cols() - j;
        for col in 0..k_info {
            let w = base.col_weight(col);
            if col < p.high_weight_columns {
                assert_eq!(w, p.high_column_weight);
            } else {
                assert_eq!(w, p.base_column_weight);
            }
        }
    }

    #[test]
    fn row_weights_are_balanced() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        let base = p.build_base().unwrap();
        let weights: Vec<usize> = (0..base.rows()).map(|r| base.row_weight(r)).collect();
        let min = *weights.iter().min().unwrap();
        let max = *weights.iter().max().unwrap();
        assert!(max - min <= 2, "row weights {weights:?} not balanced");
    }

    #[test]
    fn design_z_code_is_four_cycle_free() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        let code = p.build_code(96).unwrap();
        let report = count_four_cycles(&code);
        assert!(
            report.four_cycle_blocks <= 2,
            "expected (near-)4-cycle-free design-z code, found {}",
            report.four_cycle_blocks
        );
    }

    #[test]
    fn rejects_impossible_degree_profile() {
        let mut p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R5_6);
        p.base_column_weight = 10; // j = 4
        assert!(p.build_base().is_err());
        let mut p2 = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        p2.base_column_weight = 1;
        assert!(p2.build_base().is_err());
    }

    #[test]
    fn build_code_produces_requested_expansion() {
        let p = ConstructionParams::for_mode(Standard::Wimax80216e, CodeRate::R1_2);
        for z in [24, 48, 96] {
            let code = p.build_code(z).unwrap();
            assert_eq!(code.z(), z);
            assert_eq!(code.n(), 24 * z);
            assert_eq!(code.nnz_blocks(), p.build_base().unwrap().nnz_blocks());
        }
    }

    #[test]
    fn seeds_differ_per_mode() {
        let mut seeds = std::collections::HashSet::new();
        for s in Standard::ALL {
            for r in s.rates() {
                assert!(
                    seeds.insert(mode_seed(s, r)),
                    "seed collision for {s:?} {r:?}"
                );
            }
        }
    }
}
