//! Standard families, code rates and code identifiers.
//!
//! The decoder of the paper is *multi-standard*: it can be dynamically
//! reconfigured to decode block-structured LDPC codes from IEEE 802.11n,
//! IEEE 802.16e and (by extension of the same architecture) DMB-T. The types
//! in this module name the supported modes.

use std::fmt;

use crate::error::CodeError;
use crate::qc::QcCode;
use crate::Result;

/// Wireless standard families whose block-structured LDPC codes the decoder
/// supports (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Standard {
    /// IEEE 802.11n wireless LAN: `k = 24`, `z ∈ {27, 54, 81}`.
    Wifi80211n,
    /// IEEE 802.16e (WiMax): `k = 24`, `z ∈ {24, 28, …, 96}` (19 sizes).
    Wimax80216e,
    /// DMB-T (terrestrial digital multimedia broadcast): `k = 60`, `z = 127`.
    DmbT,
}

impl Standard {
    /// All supported standards, in the order they are listed in Table 1.
    pub const ALL: [Standard; 3] = [Standard::Wifi80211n, Standard::Wimax80216e, Standard::DmbT];

    /// Number of block columns `k` used by this family.
    #[must_use]
    pub fn block_cols(self) -> usize {
        match self {
            Standard::Wifi80211n | Standard::Wimax80216e => 24,
            Standard::DmbT => 60,
        }
    }

    /// The sub-matrix sizes `z` defined by this family, ascending.
    #[must_use]
    pub fn sub_matrix_sizes(self) -> Vec<usize> {
        match self {
            Standard::Wifi80211n => vec![27, 54, 81],
            // 19 sizes: 24, 28, 32, …, 96 (step 4).
            Standard::Wimax80216e => (0..19).map(|i| 24 + 4 * i).collect(),
            Standard::DmbT => vec![127],
        }
    }

    /// The range of block rows `j` this family uses, `(min, max)`.
    #[must_use]
    pub fn block_row_range(self) -> (usize, usize) {
        match self {
            Standard::Wifi80211n | Standard::Wimax80216e => (4, 12),
            Standard::DmbT => (24, 48),
        }
    }

    /// The code rates supported for this family by this reproduction.
    #[must_use]
    pub fn rates(self) -> Vec<CodeRate> {
        match self {
            Standard::Wifi80211n | Standard::Wimax80216e => {
                vec![
                    CodeRate::R1_2,
                    CodeRate::R2_3,
                    CodeRate::R3_4,
                    CodeRate::R5_6,
                ]
            }
            Standard::DmbT => vec![CodeRate::R1_5, CodeRate::R2_5, CodeRate::R3_5],
        }
    }

    /// Short display name used in reports (`"802.11n"`, `"802.16e"`, `"DMB-T"`).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Standard::Wifi80211n => "802.11n",
            Standard::Wimax80216e => "802.16e",
            Standard::DmbT => "DMB-T",
        }
    }
}

impl fmt::Display for Standard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Standard::Wifi80211n => write!(f, "IEEE 802.11n (WLAN)"),
            Standard::Wimax80216e => write!(f, "IEEE 802.16e (WiMax)"),
            Standard::DmbT => write!(f, "DMB-T"),
        }
    }
}

/// Code rate of a block-structured LDPC code.
///
/// The rate fixes the number of block rows: `j = k · (1 − R)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CodeRate {
    /// Rate 1/5 (DMB-T class, `j = 48` of `k = 60`).
    R1_5,
    /// Rate 2/5 (DMB-T class, `j = 36` of `k = 60`).
    R2_5,
    /// Rate 3/5 (DMB-T class, `j = 24` of `k = 60`).
    R3_5,
    /// Rate 1/2 (`j = 12` of `k = 24`).
    R1_2,
    /// Rate 2/3 (`j = 8` of `k = 24`).
    R2_3,
    /// Rate 3/4 (`j = 6` of `k = 24`).
    R3_4,
    /// Rate 5/6 (`j = 4` of `k = 24`).
    R5_6,
}

impl CodeRate {
    /// The rate as a reduced fraction `(numerator, denominator)`.
    #[must_use]
    pub fn as_fraction(self) -> (usize, usize) {
        match self {
            CodeRate::R1_5 => (1, 5),
            CodeRate::R2_5 => (2, 5),
            CodeRate::R3_5 => (3, 5),
            CodeRate::R1_2 => (1, 2),
            CodeRate::R2_3 => (2, 3),
            CodeRate::R3_4 => (3, 4),
            CodeRate::R5_6 => (5, 6),
        }
    }

    /// The rate as a floating-point value in `(0, 1)`.
    #[must_use]
    pub fn value(self) -> f64 {
        let (num, den) = self.as_fraction();
        num as f64 / den as f64
    }

    /// Number of block rows `j` for a family with `k` block columns.
    ///
    /// Returns `None` if `k · (1 − R)` is not an integer.
    #[must_use]
    pub fn block_rows_for(self, block_cols: usize) -> Option<usize> {
        let (num, den) = self.as_fraction();
        let parity_num = block_cols * (den - num);
        if parity_num.is_multiple_of(den) {
            Some(parity_num / den)
        } else {
            None
        }
    }
}

impl fmt::Display for CodeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (num, den) = self.as_fraction();
        write!(f, "{num}/{den}")
    }
}

/// Identifier of one decodable mode: a `(standard, rate, codeword length)`
/// triple, e.g. *WiMax, rate 1/2, 2304 bits*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeId {
    /// Standard family.
    pub standard: Standard,
    /// Code rate.
    pub rate: CodeRate,
    /// Codeword length in bits (`n = k · z`).
    pub n: usize,
}

impl CodeId {
    /// Creates a new code identifier. The triple is validated lazily by
    /// [`CodeId::build`].
    #[must_use]
    pub fn new(standard: Standard, rate: CodeRate, n: usize) -> Self {
        CodeId { standard, rate, n }
    }

    /// The sub-matrix size `z = n / k` implied by this identifier, if `n` is a
    /// multiple of the family's block-column count.
    #[must_use]
    pub fn sub_matrix_size(&self) -> Option<usize> {
        let k = self.standard.block_cols();
        if self.n.is_multiple_of(k) {
            Some(self.n / k)
        } else {
            None
        }
    }

    /// Whether this identifier names a mode supported by the decoder.
    #[must_use]
    pub fn is_supported(&self) -> bool {
        let Some(z) = self.sub_matrix_size() else {
            return false;
        };
        self.standard.sub_matrix_sizes().contains(&z)
            && self.standard.rates().contains(&self.rate)
            && self
                .rate
                .block_rows_for(self.standard.block_cols())
                .is_some()
    }

    /// Builds the quasi-cyclic code for this mode.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCode`] if the `(standard, rate, n)`
    /// triple is not in the supported mode set.
    pub fn build(&self) -> Result<QcCode> {
        if !self.is_supported() {
            return Err(CodeError::UnsupportedCode {
                requested: self.to_string(),
            });
        }
        let z = self.sub_matrix_size().expect("validated above");
        match self.standard {
            Standard::Wifi80211n => crate::wifi::build(self.rate, z),
            Standard::Wimax80216e => crate::wimax::build(self.rate, z),
            Standard::DmbT => crate::dmbt::build(self.rate, z),
        }
    }

    /// Enumerates every supported mode of a standard family.
    #[must_use]
    pub fn all_modes(standard: Standard) -> Vec<CodeId> {
        let k = standard.block_cols();
        let mut out = Vec::new();
        for rate in standard.rates() {
            for z in standard.sub_matrix_sizes() {
                let id = CodeId::new(standard, rate, k * z);
                if id.is_supported() {
                    out.push(id);
                }
            }
        }
        out
    }
}

impl fmt::Display for CodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rate {} n={}",
            self.standard.short_name(),
            self.rate,
            self.n
        )
    }
}

impl std::str::FromStr for CodeId {
    type Err = CodeError;

    /// Parses the compact `<standard>:<rate>:<n>` form used on command lines,
    /// e.g. `wimax:1/2:576`, `802.11n:3/4:1944` or `dmbt:1/5:7620`.
    ///
    /// Standards accept their family aliases (`wifi`/`wlan`/`802.11n`,
    /// `wimax`/`802.16e`, `dmbt`/`dmb-t`), case-insensitively. The triple is
    /// parsed structurally only — pass the result to [`CodeId::is_supported`]
    /// or [`CodeId::build`] to validate it against the supported mode set.
    fn from_str(s: &str) -> Result<Self> {
        let parse_err = |reason: String| CodeError::ParseCode { reason };
        let mut parts = s.trim().split(':');
        let (Some(std_part), Some(rate_part), Some(n_part), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(parse_err(format!(
                "{s:?} is not of the form <standard>:<rate>:<n>"
            )));
        };
        let standard = match std_part.trim().to_ascii_lowercase().as_str() {
            "wifi" | "wlan" | "802.11n" => Standard::Wifi80211n,
            "wimax" | "802.16e" => Standard::Wimax80216e,
            "dmbt" | "dmb-t" => Standard::DmbT,
            other => {
                return Err(parse_err(format!(
                    "unknown standard {other:?} (expected wifi/802.11n, wimax/802.16e or dmbt)"
                )))
            }
        };
        let rate = match rate_part.trim() {
            "1/5" => CodeRate::R1_5,
            "2/5" => CodeRate::R2_5,
            "3/5" => CodeRate::R3_5,
            "1/2" => CodeRate::R1_2,
            "2/3" => CodeRate::R2_3,
            "3/4" => CodeRate::R3_4,
            "5/6" => CodeRate::R5_6,
            other => {
                return Err(parse_err(format!(
                    "unknown rate {other:?} (expected 1/2, 2/3, 3/4, 5/6, 1/5, 2/5 or 3/5)"
                )))
            }
        };
        let n: usize = n_part
            .trim()
            .parse()
            .map_err(|e| parse_err(format!("codeword length {n_part:?}: {e}")))?;
        Ok(CodeId::new(standard, rate, n))
    }
}

/// Structural parameters of one concrete code, carried by [`QcCode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeSpec {
    /// Standard family this code belongs to.
    pub standard: Standard,
    /// Code rate.
    pub rate: CodeRate,
    /// Sub-matrix (circulant) size.
    pub z: usize,
    /// Number of block rows `j`.
    pub block_rows: usize,
    /// Number of block columns `k`.
    pub block_cols: usize,
}

impl CodeSpec {
    /// Codeword length in bits, `n = k · z`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.block_cols * self.z
    }

    /// Number of parity-check equations, `m = j · z`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.block_rows * self.z
    }

    /// Number of information bits, `n − m`.
    #[must_use]
    pub fn info_bits(&self) -> usize {
        self.n() - self.m()
    }

    /// The design rate `(n − m) / n`.
    #[must_use]
    pub fn design_rate(&self) -> f64 {
        self.info_bits() as f64 / self.n() as f64
    }

    /// The [`CodeId`] naming this mode.
    #[must_use]
    pub fn id(&self) -> CodeId {
        CodeId::new(self.standard, self.rate, self.n())
    }
}

impl fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rate {} (n={}, z={}, j={}, k={})",
            self.standard.short_name(),
            self.rate,
            self.n(),
            self.z,
            self.block_rows,
            self.block_cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wimax_has_19_sub_matrix_sizes() {
        let sizes = Standard::Wimax80216e.sub_matrix_sizes();
        assert_eq!(sizes.len(), 19);
        assert_eq!(sizes.first(), Some(&24));
        assert_eq!(sizes.last(), Some(&96));
    }

    #[test]
    fn wifi_sizes_match_table1() {
        assert_eq!(Standard::Wifi80211n.sub_matrix_sizes(), vec![27, 54, 81]);
        assert_eq!(Standard::Wifi80211n.block_cols(), 24);
    }

    #[test]
    fn dmbt_matches_table1() {
        assert_eq!(Standard::DmbT.sub_matrix_sizes(), vec![127]);
        assert_eq!(Standard::DmbT.block_cols(), 60);
        assert_eq!(Standard::DmbT.block_row_range(), (24, 48));
    }

    #[test]
    fn rate_fractions_and_block_rows() {
        assert_eq!(CodeRate::R1_2.block_rows_for(24), Some(12));
        assert_eq!(CodeRate::R2_3.block_rows_for(24), Some(8));
        assert_eq!(CodeRate::R3_4.block_rows_for(24), Some(6));
        assert_eq!(CodeRate::R5_6.block_rows_for(24), Some(4));
        assert_eq!(CodeRate::R3_5.block_rows_for(60), Some(24));
        assert_eq!(CodeRate::R2_5.block_rows_for(60), Some(36));
        assert_eq!(CodeRate::R1_5.block_rows_for(60), Some(48));
    }

    #[test]
    fn rate_value_is_consistent_with_fraction() {
        for rate in [
            CodeRate::R1_2,
            CodeRate::R2_3,
            CodeRate::R3_4,
            CodeRate::R5_6,
            CodeRate::R1_5,
            CodeRate::R2_5,
            CodeRate::R3_5,
        ] {
            let (num, den) = rate.as_fraction();
            assert!((rate.value() - num as f64 / den as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn code_id_sub_matrix_size() {
        let id = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 2304);
        assert_eq!(id.sub_matrix_size(), Some(96));
        assert!(id.is_supported());
        let bad = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 2300);
        assert_eq!(bad.sub_matrix_size(), None);
        assert!(!bad.is_supported());
    }

    #[test]
    fn unsupported_code_id_build_fails() {
        let bad = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 24 * 100);
        assert!(matches!(
            bad.build(),
            Err(CodeError::UnsupportedCode { .. })
        ));
    }

    #[test]
    fn all_modes_enumerates_wifi() {
        let modes = CodeId::all_modes(Standard::Wifi80211n);
        // 4 rates × 3 expansion sizes.
        assert_eq!(modes.len(), 12);
        assert!(modes.iter().all(|m| m.is_supported()));
    }

    #[test]
    fn all_modes_enumerates_wimax() {
        let modes = CodeId::all_modes(Standard::Wimax80216e);
        // 4 rates × 19 expansion sizes.
        assert_eq!(modes.len(), 76);
    }

    #[test]
    fn code_spec_arithmetic() {
        let spec = CodeSpec {
            standard: Standard::Wimax80216e,
            rate: CodeRate::R1_2,
            z: 96,
            block_rows: 12,
            block_cols: 24,
        };
        assert_eq!(spec.n(), 2304);
        assert_eq!(spec.m(), 1152);
        assert_eq!(spec.info_bits(), 1152);
        assert!((spec.design_rate() - 0.5).abs() < 1e-12);
        assert_eq!(spec.id().n, 2304);
    }

    #[test]
    fn code_id_parses_compact_form() {
        let id: CodeId = "wimax:1/2:576".parse().unwrap();
        assert_eq!(id, CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576));
        assert!(id.is_supported());
        // Aliases, case-insensitivity and surrounding whitespace.
        let id: CodeId = " 802.11n:3/4:1944 ".parse().unwrap();
        assert_eq!(id, CodeId::new(Standard::Wifi80211n, CodeRate::R3_4, 1944));
        let id: CodeId = "DMB-T:1/5:7620".parse().unwrap();
        assert_eq!(id.standard, Standard::DmbT);
        // Parsing is structural: an unsupported length still parses.
        let id: CodeId = "wimax:1/2:100".parse().unwrap();
        assert!(!id.is_supported());
    }

    #[test]
    fn code_id_parse_rejects_malformed_input() {
        for bad in [
            "",
            "wimax",
            "wimax:1/2",
            "wimax:1/2:576:extra",
            "lte:1/2:576",
            "wimax:7/8:576",
            "wimax:1/2:many",
        ] {
            let err = bad.parse::<CodeId>().unwrap_err();
            assert!(
                matches!(err, CodeError::ParseCode { .. }),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Standard::Wimax80216e.short_name(), "802.16e");
        assert_eq!(format!("{}", CodeRate::R5_6), "5/6");
        let id = CodeId::new(Standard::Wifi80211n, CodeRate::R3_4, 1944);
        assert!(format!("{id}").contains("802.11n"));
    }
}
