//! Per-standard code families (Table 1 of the paper).
//!
//! Each family module exposes a `build(rate, z)` constructor and the family's
//! design parameters. The constructions are standard-compatible synthetic
//! matrices (see [`crate::construction`]); the structural parameters match
//! Table 1 of the paper exactly.

use crate::construction::ConstructionParams;
use crate::error::CodeError;
use crate::qc::QcCode;
use crate::standard::{CodeRate, Standard};
use crate::Result;

/// Design parameters of one code family — the contents of one column of
/// Table 1 in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyDesignParameters {
    /// The standard family.
    pub standard: Standard,
    /// Minimum number of block rows `j`.
    pub j_min: usize,
    /// Maximum number of block rows `j`.
    pub j_max: usize,
    /// Number of block columns `k`.
    pub k: usize,
    /// Smallest sub-matrix size `z`.
    pub z_min: usize,
    /// Largest sub-matrix size `z`.
    pub z_max: usize,
    /// Number of distinct sub-matrix sizes defined by the family.
    pub num_sub_matrix_sizes: usize,
}

/// Collects the design parameters of a family (one column of Table 1).
#[must_use]
pub fn design_parameters(standard: Standard) -> FamilyDesignParameters {
    let (j_min, j_max) = standard.block_row_range();
    let sizes = standard.sub_matrix_sizes();
    FamilyDesignParameters {
        standard,
        j_min,
        j_max,
        k: standard.block_cols(),
        z_min: *sizes.first().expect("non-empty"),
        z_max: *sizes.last().expect("non-empty"),
        num_sub_matrix_sizes: sizes.len(),
    }
}

fn build_for(standard: Standard, rate: CodeRate, z: usize) -> Result<QcCode> {
    if !standard.sub_matrix_sizes().contains(&z) || !standard.rates().contains(&rate) {
        return Err(CodeError::UnsupportedCode {
            requested: format!("{} rate {rate} z={z}", standard.short_name()),
        });
    }
    ConstructionParams::for_mode(standard, rate).build_code(z)
}

/// IEEE 802.11n (WLAN) class codes: `k = 24`, `z ∈ {27, 54, 81}`.
pub mod wifi {
    use super::*;

    /// Builds the 802.11n-class code with the given rate and sub-matrix size.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCode`] for `(rate, z)` combinations not
    /// defined by the family.
    pub fn build(rate: CodeRate, z: usize) -> Result<QcCode> {
        build_for(Standard::Wifi80211n, rate, z)
    }

    /// The family design parameters (Table 1 column "WLAN-802.11n").
    #[must_use]
    pub fn design_parameters() -> FamilyDesignParameters {
        super::design_parameters(Standard::Wifi80211n)
    }

    /// The codeword lengths (in bits) defined by the family.
    #[must_use]
    pub fn codeword_lengths() -> Vec<usize> {
        Standard::Wifi80211n
            .sub_matrix_sizes()
            .into_iter()
            .map(|z| z * Standard::Wifi80211n.block_cols())
            .collect()
    }
}

/// IEEE 802.16e (WiMax) class codes: `k = 24`, 19 sub-matrix sizes
/// `z ∈ {24, 28, …, 96}`.
pub mod wimax {
    use super::*;

    /// Builds the 802.16e-class code with the given rate and sub-matrix size.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCode`] for `(rate, z)` combinations not
    /// defined by the family.
    pub fn build(rate: CodeRate, z: usize) -> Result<QcCode> {
        build_for(Standard::Wimax80216e, rate, z)
    }

    /// The family design parameters (Table 1 column "WiMax-802.16e").
    #[must_use]
    pub fn design_parameters() -> FamilyDesignParameters {
        super::design_parameters(Standard::Wimax80216e)
    }

    /// The codeword lengths (in bits) defined by the family: 576 … 2304.
    #[must_use]
    pub fn codeword_lengths() -> Vec<usize> {
        Standard::Wimax80216e
            .sub_matrix_sizes()
            .into_iter()
            .map(|z| z * Standard::Wimax80216e.block_cols())
            .collect()
    }
}

/// DMB-T class codes: `k = 60`, `z = 127`, `j ∈ {24, 36, 48}`.
pub mod dmbt {
    use super::*;

    /// Builds the DMB-T-class code with the given rate (the family has a
    /// single sub-matrix size, `z = 127`).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedCode`] for `(rate, z)` combinations not
    /// defined by the family.
    pub fn build(rate: CodeRate, z: usize) -> Result<QcCode> {
        build_for(Standard::DmbT, rate, z)
    }

    /// The family design parameters (Table 1 column "DMB-T").
    #[must_use]
    pub fn design_parameters() -> FamilyDesignParameters {
        super::design_parameters(Standard::DmbT)
    }

    /// The codeword length (in bits) of the family: `60 · 127 = 7620`.
    #[must_use]
    pub fn codeword_lengths() -> Vec<usize> {
        vec![60 * 127]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_wifi_column() {
        let p = wifi::design_parameters();
        assert_eq!((p.j_min, p.j_max), (4, 12));
        assert_eq!(p.k, 24);
        assert_eq!((p.z_min, p.z_max), (27, 81));
        assert_eq!(wifi::codeword_lengths(), vec![648, 1296, 1944]);
    }

    #[test]
    fn table1_wimax_column() {
        let p = wimax::design_parameters();
        assert_eq!((p.j_min, p.j_max), (4, 12));
        assert_eq!(p.k, 24);
        assert_eq!((p.z_min, p.z_max), (24, 96));
        assert_eq!(p.num_sub_matrix_sizes, 19);
        let lengths = wimax::codeword_lengths();
        assert_eq!(lengths.first(), Some(&576));
        assert_eq!(lengths.last(), Some(&2304));
    }

    #[test]
    fn table1_dmbt_column() {
        let p = dmbt::design_parameters();
        assert_eq!((p.j_min, p.j_max), (24, 48));
        assert_eq!(p.k, 60);
        assert_eq!((p.z_min, p.z_max), (127, 127));
        assert_eq!(dmbt::codeword_lengths(), vec![7620]);
    }

    #[test]
    fn family_builders_validate_inputs() {
        assert!(wifi::build(CodeRate::R1_2, 27).is_ok());
        assert!(wifi::build(CodeRate::R1_2, 24).is_err());
        assert!(wimax::build(CodeRate::R3_4, 96).is_ok());
        assert!(wimax::build(CodeRate::R3_5, 96).is_err());
        assert!(dmbt::build(CodeRate::R3_5, 127).is_ok());
        assert!(dmbt::build(CodeRate::R3_5, 96).is_err());
    }

    #[test]
    fn built_codes_have_family_structure() {
        let c = wimax::build(CodeRate::R1_2, 96).unwrap();
        assert_eq!(c.n(), 2304);
        assert_eq!(c.block_rows(), 12);
        let c = wifi::build(CodeRate::R5_6, 81).unwrap();
        assert_eq!(c.n(), 1944);
        assert_eq!(c.block_rows(), 4);
        let c = dmbt::build(CodeRate::R2_5, 127).unwrap();
        assert_eq!(c.n(), 7620);
        assert_eq!(c.block_rows(), 36);
    }
}
