//! Base (prototype) matrix of a block-structured LDPC code.
//!
//! A base matrix is the `j × k` array of circulant descriptors from which the
//! full parity-check matrix `H` is expanded: each entry is either *empty*
//! (expands to the `z × z` zero matrix) or a shift value `x` (expands to the
//! cyclically shifted identity `I_x`). This is exactly the structure shown in
//! Fig. 1 of the paper.

use std::fmt;

use crate::error::CodeError;
use crate::Result;

/// How base-matrix shift values defined for a *design* sub-matrix size `z₀`
/// are adapted when the code is expanded with a smaller `z`.
///
/// Both rules are used by the real standards: IEEE 802.11n specifies one base
/// matrix per rate at the largest expansion and scales shifts proportionally,
/// while IEEE 802.16e reduces shifts modulo `z` (for all but its rate-2/3A
/// code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShiftScaling {
    /// `x' = floor(x · z / z₀)` (IEEE 802.11n rule).
    #[default]
    Floor,
    /// `x' = x mod z` (IEEE 802.16e rule).
    Modulo,
}

impl ShiftScaling {
    /// Applies the scaling rule to a single shift value.
    ///
    /// Shift `0` always maps to `0` under either rule, which preserves the
    /// dual-diagonal (identity) parity structure across expansions.
    #[must_use]
    pub fn scale(self, shift: u32, design_z: usize, z: usize) -> u32 {
        debug_assert!(design_z > 0 && z > 0);
        match self {
            ShiftScaling::Floor => ((shift as u64 * z as u64) / design_z as u64) as u32,
            ShiftScaling::Modulo => shift % z as u32,
        }
    }
}

/// A `j × k` base matrix of optional circulant shifts, defined relative to a
/// design sub-matrix size `z₀`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BaseMatrix {
    rows: usize,
    cols: usize,
    design_z: usize,
    /// Row-major entries; `None` is a zero block.
    entries: Vec<Option<u32>>,
}

impl BaseMatrix {
    /// Creates a base matrix from row-major entries.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidSubMatrixSize`] if `design_z == 0`.
    /// * [`CodeError::DimensionMismatch`] if `entries.len() != rows * cols`.
    /// * [`CodeError::ShiftOutOfRange`] if any shift is `≥ design_z`.
    pub fn new(
        rows: usize,
        cols: usize,
        design_z: usize,
        entries: Vec<Option<u32>>,
    ) -> Result<Self> {
        if design_z == 0 {
            return Err(CodeError::InvalidSubMatrixSize { z: 0 });
        }
        if entries.len() != rows * cols {
            return Err(CodeError::DimensionMismatch {
                expected: rows * cols,
                actual: entries.len(),
            });
        }
        for entry in entries.iter().flatten() {
            if *entry as usize >= design_z {
                return Err(CodeError::ShiftOutOfRange {
                    shift: *entry,
                    z: design_z,
                });
            }
        }
        Ok(BaseMatrix {
            rows,
            cols,
            design_z,
            entries,
        })
    }

    /// Creates an all-zero (all-empty) base matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidSubMatrixSize`] if `design_z == 0`.
    pub fn empty(rows: usize, cols: usize, design_z: usize) -> Result<Self> {
        Self::new(rows, cols, design_z, vec![None; rows * cols])
    }

    /// Number of block rows `j`.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of block columns `k`.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The design sub-matrix size `z₀` the shifts are expressed for.
    #[must_use]
    pub fn design_z(&self) -> usize {
        self.design_z
    }

    /// The entry at block position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<u32> {
        assert!(
            row < self.rows && col < self.cols,
            "block index out of bounds"
        );
        self.entries[row * self.cols + col]
    }

    /// Sets the entry at block position `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShiftOutOfRange`] if the shift is `≥ design_z`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, entry: Option<u32>) -> Result<()> {
        assert!(
            row < self.rows && col < self.cols,
            "block index out of bounds"
        );
        if let Some(shift) = entry {
            if shift as usize >= self.design_z {
                return Err(CodeError::ShiftOutOfRange {
                    shift,
                    z: self.design_z,
                });
            }
        }
        self.entries[row * self.cols + col] = entry;
        Ok(())
    }

    /// Iterates over the non-empty entries as `(row, col, shift)` triples in
    /// row-major order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(idx, e)| e.map(|shift| (idx / self.cols, idx % self.cols, shift)))
    }

    /// Number of non-zero blocks `E` (each expands into `z` parity-check
    /// edges).
    #[must_use]
    pub fn nnz_blocks(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Number of non-zero blocks in block row `row` (the check-node degree of
    /// every expanded row in that layer).
    #[must_use]
    pub fn row_weight(&self, row: usize) -> usize {
        (0..self.cols)
            .filter(|&c| self.get(row, c).is_some())
            .count()
    }

    /// Number of non-zero blocks in block column `col` (the variable-node
    /// degree of every expanded column in that block column).
    #[must_use]
    pub fn col_weight(&self, col: usize) -> usize {
        (0..self.rows)
            .filter(|&r| self.get(r, col).is_some())
            .count()
    }

    /// Maximum check-node degree over all block rows.
    #[must_use]
    pub fn max_row_weight(&self) -> usize {
        (0..self.rows)
            .map(|r| self.row_weight(r))
            .max()
            .unwrap_or(0)
    }

    /// Mean check-node degree over all block rows.
    #[must_use]
    pub fn mean_row_weight(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.nnz_blocks() as f64 / self.rows as f64
    }

    /// Re-expresses the base matrix for a different sub-matrix size `z` using
    /// the given scaling rule.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidSubMatrixSize`] if `z == 0`.
    pub fn scale_to(&self, z: usize, scaling: ShiftScaling) -> Result<BaseMatrix> {
        if z == 0 {
            return Err(CodeError::InvalidSubMatrixSize { z });
        }
        let entries = self
            .entries
            .iter()
            .map(|e| e.map(|shift| scaling.scale(shift, self.design_z, z)))
            .collect();
        BaseMatrix::new(self.rows, self.cols, z, entries)
    }

    /// Structural validation: every block row and block column must be
    /// non-empty, otherwise the expanded graph contains unconnected check or
    /// variable nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidBaseMatrix`] describing the first violation
    /// found.
    pub fn validate(&self) -> Result<()> {
        for r in 0..self.rows {
            if self.row_weight(r) < 2 {
                return Err(CodeError::InvalidBaseMatrix {
                    reason: format!("block row {r} has weight {} (< 2)", self.row_weight(r)),
                });
            }
        }
        for c in 0..self.cols {
            if self.col_weight(c) == 0 {
                return Err(CodeError::InvalidBaseMatrix {
                    reason: format!("block column {c} is empty"),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for BaseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BaseMatrix {}x{} (design z = {}):",
            self.rows, self.cols, self.design_z
        )?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                match self.get(r, c) {
                    Some(shift) => write!(f, "{shift:>4}")?,
                    None => write!(f, "   -")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BaseMatrix {
        // 2 x 4 base matrix at design z = 8.
        BaseMatrix::new(
            2,
            4,
            8,
            vec![
                Some(1),
                None,
                Some(3),
                Some(0),
                Some(5),
                Some(2),
                None,
                Some(0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let b = small();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 4);
        assert_eq!(b.design_z(), 8);
        assert_eq!(b.get(0, 0), Some(1));
        assert_eq!(b.get(0, 1), None);
        assert_eq!(b.nnz_blocks(), 6);
        assert_eq!(b.row_weight(0), 3);
        assert_eq!(b.col_weight(3), 2);
        assert_eq!(b.max_row_weight(), 3);
        assert!((b.mean_row_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_dimensions() {
        let err = BaseMatrix::new(2, 2, 4, vec![None; 3]).unwrap_err();
        assert!(matches!(
            err,
            CodeError::DimensionMismatch {
                expected: 4,
                actual: 3
            }
        ));
    }

    #[test]
    fn rejects_out_of_range_shift() {
        let err = BaseMatrix::new(1, 1, 4, vec![Some(4)]).unwrap_err();
        assert!(matches!(err, CodeError::ShiftOutOfRange { shift: 4, z: 4 }));
    }

    #[test]
    fn rejects_zero_design_z() {
        assert!(matches!(
            BaseMatrix::empty(1, 1, 0),
            Err(CodeError::InvalidSubMatrixSize { z: 0 })
        ));
    }

    #[test]
    fn set_checks_range() {
        let mut b = BaseMatrix::empty(2, 2, 4).unwrap();
        b.set(0, 0, Some(3)).unwrap();
        assert_eq!(b.get(0, 0), Some(3));
        assert!(b.set(0, 1, Some(4)).is_err());
        b.set(0, 0, None).unwrap();
        assert_eq!(b.get(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let b = small();
        let _ = b.get(2, 0);
    }

    #[test]
    fn floor_scaling_matches_80211n_rule() {
        let s = ShiftScaling::Floor;
        assert_eq!(s.scale(0, 96, 24), 0);
        assert_eq!(s.scale(95, 96, 24), 23);
        assert_eq!(s.scale(48, 96, 24), 12);
        assert_eq!(s.scale(50, 81, 27), 16);
    }

    #[test]
    fn modulo_scaling_matches_80216e_rule() {
        let s = ShiftScaling::Modulo;
        assert_eq!(s.scale(0, 96, 24), 0);
        assert_eq!(s.scale(95, 96, 24), 95 % 24);
        assert_eq!(s.scale(25, 96, 24), 1);
    }

    #[test]
    fn scaling_preserves_zero_shifts() {
        for rule in [ShiftScaling::Floor, ShiftScaling::Modulo] {
            for z in [24, 27, 54, 81, 96] {
                assert_eq!(rule.scale(0, 96, z), 0);
            }
        }
    }

    #[test]
    fn scale_to_produces_valid_matrix() {
        let b = small();
        let scaled = b.scale_to(4, ShiftScaling::Modulo).unwrap();
        assert_eq!(scaled.design_z(), 4);
        assert_eq!(scaled.get(1, 0), Some(1)); // 5 mod 4
        assert_eq!(scaled.nnz_blocks(), b.nnz_blocks());
        assert!(b.scale_to(0, ShiftScaling::Floor).is_err());
    }

    #[test]
    fn iter_nonzero_yields_row_major_triples() {
        let b = small();
        let triples: Vec<_> = b.iter_nonzero().collect();
        assert_eq!(triples[0], (0, 0, 1));
        assert_eq!(triples.len(), 6);
        assert!(triples
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
    }

    #[test]
    fn validate_detects_empty_column_and_thin_row() {
        let mut b = BaseMatrix::empty(2, 2, 4).unwrap();
        assert!(b.validate().is_err());
        b.set(0, 0, Some(1)).unwrap();
        b.set(0, 1, Some(2)).unwrap();
        b.set(1, 0, Some(0)).unwrap();
        b.set(1, 1, Some(3)).unwrap();
        assert!(b.validate().is_ok());
        b.set(1, 1, None).unwrap();
        // row 1 now has weight 1.
        assert!(b.validate().is_err());
    }

    #[test]
    fn display_contains_dash_for_zero_blocks() {
        let b = small();
        let s = b.to_string();
        assert!(s.contains('-'));
        assert!(s.contains("2x4"));
    }
}
