//! Rate-compatible puncturing of QC-LDPC codewords for HARQ retransmission.
//!
//! A mother code of length `n` is served at higher rates by transmitting
//! only a window of its codeword bits. The window is **circular** over the
//! codeword (the classic rate-compatible construction, and the shape 5G-NR
//! rate matching standardised): transmission `rv` (the *redundancy version*)
//! sends `tx_bits` consecutive positions starting from a per-RV offset, and
//! the four RV offsets are spread a quarter of the codeword apart, so
//! successive retransmissions cover the positions earlier ones punctured.
//! Every offset is snapped to the code's sub-matrix size `z`, keeping each
//! transmission aligned with whole circulant lanes — the same property the
//! compiled layer schedules and the frame-major engine rely on.
//!
//! At the receiver, a punctured transmission is *expanded* back to mother
//! length before decoding: transmitted positions carry their channel LLRs
//! and punctured positions carry the erasure LLR `0.0` (no channel
//! information, exactly what belief propagation expects of an unobserved
//! bit). HARQ incremental-redundancy combining then simply adds expanded
//! transmissions position-wise — see `ldpc-core`'s `HarqCombiner` and the
//! serving layer's soft-buffer store.

use crate::compiled::CompiledCode;
use crate::error::CodeError;

/// Number of distinct redundancy-version start offsets; `rv` values wrap
/// modulo this (matching the 4-RV convention of LTE/NR HARQ).
pub const RV_COUNT: u8 = 4;

/// A rate-compatible circular puncturing pattern over one code's codewords.
///
/// Obtained from [`CompiledCode::puncture_pattern`]. The pattern is pure
/// data — cheap to copy, `Send`/`Sync`, and independent of any decoder
/// state — so shards and workload generators can share it freely.
///
/// ```
/// use ldpc_codes::{CodeId, CodeRate, Standard};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
/// let compiled = code.compile();
/// // Transmit 384 of the 576 mother bits per redundancy version.
/// let pattern = compiled.puncture_pattern(384)?;
/// let full: Vec<f64> = (0..576).map(|i| i as f64).collect();
/// let tx = pattern.puncture(0, &full);
/// assert_eq!(tx.len(), 384);
/// let expanded = pattern.expand(0, &tx);
/// assert_eq!(expanded.len(), 576);
/// // Transmitted positions round-trip; punctured ones are erasures (0.0).
/// assert_eq!(expanded[0], full[0]);
/// assert_eq!(pattern.erased_bits(), 192);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PuncturePattern {
    n: usize,
    z: usize,
    tx_bits: usize,
    rv_starts: [usize; RV_COUNT as usize],
}

impl PuncturePattern {
    /// Builds a pattern transmitting `tx_bits` of the `n` mother-code bits
    /// per redundancy version, with circulant-aligned RV offsets.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameter`] unless `z` divides both `n` and
    /// `tx_bits` and `z ≤ tx_bits ≤ n` — transmissions must cover whole
    /// `z`-lanes of the mother code.
    pub fn new(n: usize, z: usize, tx_bits: usize) -> Result<Self, CodeError> {
        let reject = |reason: String| Err(CodeError::InvalidParameter { reason });
        if z == 0 || n == 0 || !n.is_multiple_of(z) {
            return reject(format!("puncture pattern needs z | n, got n={n}, z={z}"));
        }
        if tx_bits < z || tx_bits > n || !tx_bits.is_multiple_of(z) {
            return reject(format!(
                "tx_bits {tx_bits} must be a multiple of z={z} in [{z}, {n}]"
            ));
        }
        let blocks = n / z;
        // RV offsets a quarter of the circular buffer apart, rounded down to
        // whole circulant blocks (NR's k0 has the same shape).
        let rv_starts = std::array::from_fn(|rv| z * ((rv * blocks) / RV_COUNT as usize % blocks));
        Ok(PuncturePattern {
            n,
            z,
            tx_bits,
            rv_starts,
        })
    }

    /// Mother-code length `n` the pattern expands to.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sub-matrix size the offsets are aligned to.
    #[must_use]
    pub fn z(&self) -> usize {
        self.z
    }

    /// Bits transmitted per redundancy version.
    #[must_use]
    pub fn tx_bits(&self) -> usize {
        self.tx_bits
    }

    /// Bits punctured (erased) per redundancy version.
    #[must_use]
    pub fn erased_bits(&self) -> usize {
        self.n - self.tx_bits
    }

    /// First transmitted mother-code position of redundancy version `rv`
    /// (values ≥ [`RV_COUNT`] wrap).
    #[must_use]
    pub fn start_bit(&self, rv: u8) -> usize {
        self.rv_starts[(rv % RV_COUNT) as usize]
    }

    /// The `i`-th transmitted mother-code position of redundancy version
    /// `rv` — circular from [`start_bit`](PuncturePattern::start_bit).
    #[must_use]
    pub fn position(&self, rv: u8, i: usize) -> usize {
        debug_assert!(i < self.tx_bits);
        (self.start_bit(rv) + i) % self.n
    }

    /// Extracts the transmitted window of `full` (mother length `n`) for
    /// redundancy version `rv` into `tx`, which is cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != n`.
    pub fn puncture_into(&self, rv: u8, full: &[f64], tx: &mut Vec<f64>) {
        assert_eq!(full.len(), self.n, "mother codeword length mismatch");
        tx.clear();
        tx.reserve(self.tx_bits);
        let start = self.start_bit(rv);
        tx.extend((0..self.tx_bits).map(|i| full[(start + i) % self.n]));
    }

    /// Allocating form of [`puncture_into`](PuncturePattern::puncture_into).
    #[must_use]
    pub fn puncture(&self, rv: u8, full: &[f64]) -> Vec<f64> {
        let mut tx = Vec::new();
        self.puncture_into(rv, full, &mut tx);
        tx
    }

    /// Expands a punctured transmission back to mother length: transmitted
    /// positions carry their LLRs, punctured positions the erasure LLR
    /// `0.0`. `full` is overwritten to length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `tx.len() != tx_bits`.
    pub fn expand_into(&self, rv: u8, tx: &[f64], full: &mut Vec<f64>) {
        assert_eq!(tx.len(), self.tx_bits, "transmission length mismatch");
        full.clear();
        full.resize(self.n, 0.0);
        let start = self.start_bit(rv);
        for (i, &llr) in tx.iter().enumerate() {
            full[(start + i) % self.n] = llr;
        }
    }

    /// Allocating form of [`expand_into`](PuncturePattern::expand_into).
    #[must_use]
    pub fn expand(&self, rv: u8, tx: &[f64]) -> Vec<f64> {
        let mut full = Vec::new();
        self.expand_into(rv, tx, &mut full);
        full
    }
}

impl CompiledCode {
    /// The rate-compatible puncturing pattern transmitting `tx_bits` of this
    /// code's `n` mother bits per redundancy version (see
    /// [`PuncturePattern`]).
    ///
    /// # Errors
    ///
    /// As [`PuncturePattern::new`]: `tx_bits` must be a `z`-multiple in
    /// `[z, n]`.
    pub fn puncture_pattern(&self, tx_bits: usize) -> Result<PuncturePattern, CodeError> {
        PuncturePattern::new(self.n(), self.z(), tx_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, Standard};

    fn wimax576() -> PuncturePattern {
        let compiled = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
            .compile();
        compiled.puncture_pattern(384).unwrap()
    }

    #[test]
    fn rv_starts_are_z_aligned_distinct_and_quarter_spread() {
        let p = wimax576();
        let starts: Vec<usize> = (0..RV_COUNT).map(|rv| p.start_bit(rv)).collect();
        for &s in &starts {
            assert_eq!(s % p.z(), 0, "start {s} not lane-aligned");
            assert!(s < p.n());
        }
        let mut unique = starts.clone();
        unique.dedup();
        assert_eq!(
            unique.len(),
            RV_COUNT as usize,
            "distinct offsets: {starts:?}"
        );
        // 24 blocks of z=24: quarters at blocks 0, 6, 12, 18.
        assert_eq!(starts, vec![0, 6 * 24, 12 * 24, 18 * 24]);
        // RV wraps modulo RV_COUNT.
        assert_eq!(p.start_bit(4), p.start_bit(0));
        assert_eq!(p.start_bit(7), p.start_bit(3));
    }

    #[test]
    fn puncture_expand_round_trips_with_erasures_elsewhere() {
        let p = wimax576();
        let full: Vec<f64> = (0..p.n()).map(|i| i as f64 + 1.0).collect();
        for rv in 0..RV_COUNT {
            let tx = p.puncture(rv, &full);
            assert_eq!(tx.len(), p.tx_bits());
            let expanded = p.expand(rv, &tx);
            assert_eq!(expanded.len(), p.n());
            let mut transmitted = 0;
            let mut erased = 0;
            for (i, &v) in expanded.iter().enumerate() {
                if v == 0.0 {
                    erased += 1;
                } else {
                    assert_eq!(v, full[i], "rv {rv} position {i}");
                    transmitted += 1;
                }
            }
            assert_eq!(transmitted, p.tx_bits());
            assert_eq!(erased, p.erased_bits());
        }
    }

    #[test]
    fn successive_rvs_cover_the_whole_mother_codeword() {
        let p = wimax576();
        let mut covered = vec![false; p.n()];
        for rv in 0..RV_COUNT {
            for i in 0..p.tx_bits() {
                covered[p.position(rv, i)] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "four RVs at rate 2/3 must cover"
        );
    }

    #[test]
    fn full_length_pattern_is_the_identity() {
        let compiled = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
            .compile();
        let p = compiled.puncture_pattern(576).unwrap();
        assert_eq!(p.erased_bits(), 0);
        let full: Vec<f64> = (0..576).map(|i| -(i as f64)).collect();
        // rv 0 starts at 0, so identity; other RVs rotate but still cover.
        assert_eq!(p.expand(0, &p.puncture(0, &full)), full);
        assert_eq!(p.expand(2, &p.puncture(2, &full)), full);
    }

    #[test]
    fn misaligned_or_out_of_range_tx_bits_are_rejected() {
        for bad in [0usize, 23, 100, 577, 600] {
            let err = PuncturePattern::new(576, 24, bad).unwrap_err();
            assert!(
                matches!(err, CodeError::InvalidParameter { .. }),
                "tx_bits {bad}: {err:?}"
            );
        }
        assert!(PuncturePattern::new(576, 0, 576).is_err());
        assert!(PuncturePattern::new(575, 24, 24).is_err());
    }
}
