//! Expanded quasi-cyclic LDPC code.
//!
//! [`QcCode`] couples a [`BaseMatrix`] (already expressed for the target
//! sub-matrix size `z`) with the structural parameters of the mode it
//! implements, and provides the expanded-graph views needed by encoders,
//! decoders and the architecture model: per-layer block entries, per-row
//! neighbour lists and syndrome checks.

use crate::base_matrix::BaseMatrix;
use crate::compiled::CompiledCode;
use crate::error::CodeError;
use crate::layers::{Layer, LayerEntry};
use crate::standard::CodeSpec;
use crate::Result;

/// A fully specified quasi-cyclic block-structured LDPC code.
///
/// The expanded parity-check matrix has `m = j·z` rows and `n = k·z` columns.
/// Row `l·z + r` (row `r` of layer `l`) has a 1 in column `c·z + ((r + s) mod z)`
/// for every non-zero block `(l, c)` with shift `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QcCode {
    spec: CodeSpec,
    base: BaseMatrix,
    layers: Vec<Layer>,
}

impl QcCode {
    /// Builds a code from its spec and a base matrix already scaled to
    /// `spec.z`.
    ///
    /// # Errors
    ///
    /// * [`CodeError::DimensionMismatch`] if the base matrix dimensions do not
    ///   match `spec.block_rows × spec.block_cols`.
    /// * [`CodeError::InvalidSubMatrixSize`] if the base matrix design `z`
    ///   differs from `spec.z`.
    /// * [`CodeError::InvalidBaseMatrix`] if structural validation fails.
    pub fn from_parts(spec: CodeSpec, base: BaseMatrix) -> Result<Self> {
        if base.rows() != spec.block_rows || base.cols() != spec.block_cols {
            return Err(CodeError::DimensionMismatch {
                expected: spec.block_rows * spec.block_cols,
                actual: base.rows() * base.cols(),
            });
        }
        if base.design_z() != spec.z {
            return Err(CodeError::InvalidSubMatrixSize { z: base.design_z() });
        }
        base.validate()?;
        let layers = (0..spec.block_rows)
            .map(|l| Layer {
                index: l,
                entries: (0..spec.block_cols)
                    .filter_map(|c| {
                        base.get(l, c).map(|shift| LayerEntry {
                            block_col: c,
                            shift: shift as usize,
                        })
                    })
                    .collect(),
            })
            .collect();
        Ok(QcCode { spec, base, layers })
    }

    /// Structural parameters of this code.
    #[must_use]
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// The underlying base matrix (scaled to `z`).
    #[must_use]
    pub fn base(&self) -> &BaseMatrix {
        &self.base
    }

    /// Codeword length `n = k·z` in bits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.spec.n()
    }

    /// Number of parity checks `m = j·z`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.spec.m()
    }

    /// Number of information bits `n − m`.
    #[must_use]
    pub fn info_bits(&self) -> usize {
        self.spec.info_bits()
    }

    /// Sub-matrix (circulant) size `z`. This is also the parallelism factor of
    /// the block-serial schedule.
    #[must_use]
    pub fn z(&self) -> usize {
        self.spec.z
    }

    /// Number of block rows (layers) `j`.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.spec.block_rows
    }

    /// Number of block columns `k`.
    #[must_use]
    pub fn block_cols(&self) -> usize {
        self.spec.block_cols
    }

    /// Number of non-zero `z × z` blocks `E` in `H`. The paper's throughput
    /// expression `2·k·z·R·f / (E·I)` uses this quantity.
    #[must_use]
    pub fn nnz_blocks(&self) -> usize {
        self.base.nnz_blocks()
    }

    /// Total number of edges (non-zero entries) in the expanded matrix,
    /// `E · z`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.nnz_blocks() * self.z()
    }

    /// Design code rate `(n − m)/n`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.spec.design_rate()
    }

    /// Flattens this code into the precompiled table form the decode engine
    /// consumes (CSR layer schedule + circulant-shift index tables). Compile
    /// once, decode many frames; see [`CompiledCode`].
    #[must_use]
    pub fn compile(&self) -> CompiledCode {
        CompiledCode::compile(self)
    }

    /// The layers (block rows) of this code, in natural order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// One layer by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= block_rows()`.
    #[must_use]
    pub fn layer(&self, index: usize) -> &Layer {
        &self.layers[index]
    }

    /// Check-node degree `d_m` of the expanded rows in layer `l` (all rows in
    /// a layer have the same degree).
    #[must_use]
    pub fn layer_degree(&self, l: usize) -> usize {
        self.layers[l].weight()
    }

    /// Maximum check-node degree over all layers.
    #[must_use]
    pub fn max_layer_degree(&self) -> usize {
        self.layers.iter().map(Layer::weight).max().unwrap_or(0)
    }

    /// Columns of the expanded matrix connected to expanded check row `row`
    /// (`0 ≤ row < m`), in the order of the layer's block entries.
    ///
    /// # Panics
    ///
    /// Panics if `row >= m()`.
    #[must_use]
    pub fn row_neighbors(&self, row: usize) -> Vec<usize> {
        assert!(row < self.m(), "check row {row} out of range");
        let z = self.z();
        let layer = &self.layers[row / z];
        let r = row % z;
        layer
            .entries
            .iter()
            .map(|e| e.block_col * z + (r + e.shift) % z)
            .collect()
    }

    /// Expanded check rows connected to expanded column `col` (`0 ≤ col < n`).
    ///
    /// # Panics
    ///
    /// Panics if `col >= n()`.
    #[must_use]
    pub fn col_neighbors(&self, col: usize) -> Vec<usize> {
        assert!(col < self.n(), "column {col} out of range");
        let z = self.z();
        let block_col = col / z;
        let within = col % z;
        let mut rows = Vec::new();
        for layer in &self.layers {
            for e in &layer.entries {
                if e.block_col == block_col {
                    // Row r connects to column offset (r + shift) mod z, so the
                    // row connected to `within` is (within - shift) mod z.
                    let r = (within + z - e.shift % z) % z;
                    rows.push(layer.index * z + r);
                }
            }
        }
        rows.sort_unstable();
        rows
    }

    /// Computes the syndrome `H·xᵀ` of a candidate codeword (one bit per
    /// element, values 0/1).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CodewordLengthMismatch`] if `x.len() != n`.
    pub fn syndrome(&self, x: &[u8]) -> Result<Vec<u8>> {
        if x.len() != self.n() {
            return Err(CodeError::CodewordLengthMismatch {
                expected: self.n(),
                actual: x.len(),
            });
        }
        let z = self.z();
        let mut syndrome = vec![0u8; self.m()];
        for layer in &self.layers {
            for r in 0..z {
                let row = layer.index * z + r;
                let mut parity = 0u8;
                for e in &layer.entries {
                    let col = e.block_col * z + (r + e.shift) % z;
                    parity ^= x[col] & 1;
                }
                syndrome[row] = parity;
            }
        }
        Ok(syndrome)
    }

    /// Whether `x` is a valid codeword (`H·xᵀ = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CodewordLengthMismatch`] if `x.len() != n`.
    pub fn is_codeword(&self, x: &[u8]) -> Result<bool> {
        Ok(self.syndrome(x)?.iter().all(|&s| s == 0))
    }

    /// Variable-node degree of every bit in block column `c` (equal for all
    /// bits in the column).
    #[must_use]
    pub fn block_col_degree(&self, c: usize) -> usize {
        self.base.col_weight(c)
    }

    /// Mean variable-node degree over the whole code.
    #[must_use]
    pub fn mean_variable_degree(&self) -> f64 {
        self.num_edges() as f64 / self.n() as f64
    }

    /// Mean check-node degree over the whole code.
    #[must_use]
    pub fn mean_check_degree(&self) -> f64 {
        self.num_edges() as f64 / self.m() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::{CodeId, CodeRate, CodeSpec, Standard};

    fn tiny_code() -> QcCode {
        // 2 layers x 4 block cols, z = 4, hand-built.
        let base = BaseMatrix::new(
            2,
            4,
            4,
            vec![
                Some(1),
                Some(0),
                Some(2),
                None,
                Some(3),
                Some(2),
                None,
                Some(0),
            ],
        )
        .unwrap();
        let spec = CodeSpec {
            standard: Standard::Wimax80216e,
            rate: CodeRate::R1_2,
            z: 4,
            block_rows: 2,
            block_cols: 4,
        };
        QcCode::from_parts(spec, base).unwrap()
    }

    #[test]
    fn dimensions() {
        let code = tiny_code();
        assert_eq!(code.n(), 16);
        assert_eq!(code.m(), 8);
        assert_eq!(code.info_bits(), 8);
        assert_eq!(code.z(), 4);
        assert_eq!(code.nnz_blocks(), 6);
        assert_eq!(code.num_edges(), 24);
        assert_eq!(code.block_rows(), 2);
        assert_eq!(code.block_cols(), 4);
        assert!((code.rate() - 0.5).abs() < 1e-12);
        assert_eq!(code.max_layer_degree(), 3);
        assert!((code.mean_check_degree() - 3.0).abs() < 1e-12);
        assert!((code.mean_variable_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn row_neighbors_follow_shift_convention() {
        let code = tiny_code();
        // Layer 0, row 0: entries (col 0, shift 1), (col 1, shift 0), (col 2, shift 2).
        assert_eq!(code.row_neighbors(0), vec![1, 4, 10]);
        // Layer 0, row 3: shifts wrap modulo z = 4.
        assert_eq!(code.row_neighbors(3), vec![0, 7, 9]);
        // Layer 1, row 0: entries (col 0, shift 3), (col 1, shift 2), (col 3, shift 0).
        assert_eq!(code.row_neighbors(4), vec![3, 6, 12]);
    }

    #[test]
    fn col_neighbors_are_transpose_of_row_neighbors() {
        let code = tiny_code();
        for row in 0..code.m() {
            for &col in &code.row_neighbors(row) {
                assert!(
                    code.col_neighbors(col).contains(&row),
                    "row {row} lists col {col} but not vice versa"
                );
            }
        }
        for col in 0..code.n() {
            for &row in &code.col_neighbors(col) {
                assert!(code.row_neighbors(row).contains(&col));
            }
        }
    }

    #[test]
    fn degrees_match_base_matrix() {
        let code = tiny_code();
        assert_eq!(code.block_col_degree(0), 2);
        assert_eq!(code.block_col_degree(2), 1);
        assert_eq!(code.layer_degree(0), 3);
        for row in 0..code.m() {
            let layer = row / code.z();
            assert_eq!(code.row_neighbors(row).len(), code.layer_degree(layer));
        }
    }

    #[test]
    fn syndrome_of_zero_word_is_zero() {
        let code = tiny_code();
        let zero = vec![0u8; code.n()];
        assert!(code.is_codeword(&zero).unwrap());
    }

    #[test]
    fn syndrome_flags_single_bit_flip() {
        let code = tiny_code();
        let mut x = vec![0u8; code.n()];
        x[5] = 1;
        let syn = code.syndrome(&x).unwrap();
        let weight: usize = syn.iter().map(|&s| s as usize).sum();
        assert_eq!(weight, code.col_neighbors(5).len());
        assert!(!code.is_codeword(&x).unwrap());
    }

    #[test]
    fn syndrome_rejects_wrong_length() {
        let code = tiny_code();
        assert!(matches!(
            code.syndrome(&[0u8; 3]),
            Err(CodeError::CodewordLengthMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_rejects_mismatched_dimensions() {
        let base = BaseMatrix::empty(2, 4, 4).unwrap();
        let spec = CodeSpec {
            standard: Standard::Wimax80216e,
            rate: CodeRate::R1_2,
            z: 4,
            block_rows: 3,
            block_cols: 4,
        };
        assert!(QcCode::from_parts(spec, base).is_err());
    }

    #[test]
    fn from_parts_rejects_mismatched_z() {
        let base = BaseMatrix::empty(2, 4, 8).unwrap();
        let spec = CodeSpec {
            standard: Standard::Wimax80216e,
            rate: CodeRate::R1_2,
            z: 4,
            block_rows: 2,
            block_cols: 4,
        };
        assert!(QcCode::from_parts(spec, base).is_err());
    }

    #[test]
    fn built_standard_code_has_consistent_views() {
        let code = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648)
            .build()
            .unwrap();
        assert_eq!(code.n(), 648);
        assert_eq!(code.z(), 27);
        assert_eq!(code.block_rows(), 12);
        // Every expanded row degree matches its layer weight.
        for row in (0..code.m()).step_by(53) {
            assert_eq!(
                code.row_neighbors(row).len(),
                code.layer_degree(row / code.z())
            );
        }
        // Edge count consistency.
        let total_from_cols: usize = (0..code.block_cols())
            .map(|c| code.block_col_degree(c) * code.z())
            .sum();
        assert_eq!(total_from_cols, code.num_edges());
    }
}
