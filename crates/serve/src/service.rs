//! The sharded decode service.
//!
//! A [`DecodeService`] owns one **shard** per registered mode — the software
//! analogue of the paper's mode-ROM fabric, where one hardware array serves
//! every WiMax/WiFi code by switching compiled control state. Each shard
//! holds the mode's shared [`CompiledCode`], a bounded ingest
//! [`FrameQueue`](crate::queue::FrameQueue) and one worker thread that
//! coalesces queued frames into `decode_batch` calls, drawing its
//! [`DecodeWorkspace`](ldpc_core::DecodeWorkspace)s from the decoder's
//! workspace pool so steady-state serving builds no new decoder state.
//!
//! Frames are routed by [`CodeId`] at submission, validated (known mode,
//! exact LLR count), and accepted into the shard queue; the returned
//! [`FrameHandle`] resolves to a [`DecodeOutcome`] — bit-identical to a
//! direct `decode_batch` call, `Expired` if the frame's deadline passed
//! before its shard worker reached it. [`DecodeService::shutdown`] closes
//! every queue, lets the workers drain, and joins them: every accepted frame
//! is completed, none silently dropped.
//!
//! # Threading
//!
//! Each shard owns exactly one coalescing worker thread; decode parallelism
//! *inside* a batch comes from [`ServiceConfig::decode_threads`], which each
//! shard routes onto the process-wide persistent decode pool
//! ([`ldpc_core::DecodePool`]) via `decode_batch_into_threads`. Because the
//! pool is shared rather than partitioned per shard, cross-shard stealing is
//! structural: when one mode's traffic runs hot while another mode sits
//! idle, the idle mode reserves no threads — the hot shard's frame-group
//! chunks are claimed by whichever pool workers are free, so the whole
//! machine drains the busiest queue. A saturated pool never delays a shard
//! either: the shard's own worker thread always decodes alongside the pool
//! and cancels any fan-out it outran, so `decode_threads > 1` is a
//! speed-only knob — outputs stay bit-identical to `decode_threads = 1`.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ldpc_channel::quantize::LlrQuantizer;
use ldpc_codes::{CodeId, CompiledCode};
use ldpc_core::{CascadeConfig, CascadeDecoder, DecodeOutput, Decoder, LlrBatch};

use crate::error::{ServeError, SubmitError};
use crate::handle::{DecodeOutcome, FrameHandle, Slot};
use crate::queue::{CompletionGuard, FrameQueue, PendingFrame, PushError};
use crate::stats::{ShardCounters, ShardStats};

/// Tuning knobs of a [`DecodeService`], set through the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Ingest-queue bound per shard; the backpressure limit. Minimum 1.
    pub queue_capacity: usize,
    /// Most frames coalesced into one `decode_batch` call. Minimum 1.
    pub max_batch: usize,
    /// Worker threads *inside* one shard's `decode_batch` call (frame-level
    /// parallelism), drawn from the process-wide persistent decode pool —
    /// not spawned per shard, so idle modes cost nothing and a hot mode's
    /// chunks are stolen by whatever pool capacity is free (see the
    /// module-level *Threading* notes). The default of 1 keeps each shard's
    /// decoding on its own worker thread and scales across shards instead.
    /// Outputs are bit-identical for every value. Minimum 1.
    pub decode_threads: usize,
    /// When set, every submitted frame is gain-normalised and quantised into
    /// this quantiser's range at submission
    /// ([`LlrQuantizer::normalize_in_place`]) — the AGC stage that makes
    /// high-SNR traffic decodable by the 8-bit fixed-point back-ends, whose
    /// formats raw channel LLRs would otherwise saturate flat. Leave `None`
    /// (the default) to pass raw LLRs through, e.g. for float decoders.
    pub ingest_quantizer: Option<LlrQuantizer>,
    /// The cascade policy the shards run under, when the service was built
    /// through [`DecodeService::cascade_builder`]. Purely descriptive for
    /// services built around any other decoder (the decoder instance — not
    /// this field — is what decodes), so those leave it `None`.
    pub cascade: Option<CascadePolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 32,
            decode_threads: 1,
            ingest_quantizer: None,
            cascade: None,
        }
    }
}

/// Per-stage iteration budgets of a serving-layer decoder cascade: the
/// `ServiceConfig`-level form of [`ldpc_core::CascadeConfig`], reduced to the
/// integer knobs a deployment tunes. Build a cascade service from one with
/// [`DecodeService::cascade_builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadePolicy {
    /// Stage-1 fixed Min-Sum iteration budget (run without a convergence
    /// scan; the syndrome check decides escalation). Minimum 1.
    pub min_sum_iterations: usize,
    /// Stage-2 fixed-BP iteration ceiling (early termination enabled).
    /// Minimum 1.
    pub fixed_bp_iterations: usize,
    /// Iteration ceiling of the optional float-BP last resort; `None` (the
    /// default) ends the ladder at stage 2.
    pub float_bp_iterations: Option<usize>,
}

impl Default for CascadePolicy {
    fn default() -> Self {
        CascadePolicy {
            min_sum_iterations: 4,
            fixed_bp_iterations: 10,
            float_bp_iterations: None,
        }
    }
}

impl CascadePolicy {
    /// The core-level ladder configuration this policy describes (budgets
    /// clamped to at least one iteration).
    #[must_use]
    pub fn cascade_config(&self) -> CascadeConfig {
        CascadeConfig::with_budgets(
            self.min_sum_iterations,
            self.fixed_bp_iterations,
            self.float_bp_iterations,
        )
    }

    /// A [`CascadeDecoder`] running this policy's ladder.
    #[must_use]
    pub fn decoder(&self) -> CascadeDecoder {
        CascadeDecoder::new(self.cascade_config())
            .expect("clamped cascade budgets are always valid")
    }
}

impl ServiceConfig {
    fn normalized(mut self) -> Self {
        self.queue_capacity = self.queue_capacity.max(1);
        self.max_batch = self.max_batch.max(1);
        self.decode_threads = self.decode_threads.max(1);
        self
    }
}

/// Start gate for shard workers: closed while the service is paused, opened
/// by `resume` (and unconditionally by shutdown, so draining never stalls).
#[derive(Debug, Default)]
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Gate {
            open: Mutex::new(open),
            opened: Condvar::new(),
        }
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().expect("gate poisoned");
        while !*open {
            open = self.opened.wait(open).expect("gate poisoned");
        }
    }

    fn open(&self) {
        *self.open.lock().expect("gate poisoned") = true;
        self.opened.notify_all();
    }
}

/// One mode's serving state: compiled schedule, ingest queue, counters and
/// worker thread.
#[derive(Debug)]
struct Shard {
    compiled: Arc<CompiledCode>,
    queue: Arc<FrameQueue>,
    counters: Arc<ShardCounters>,
    worker: Option<JoinHandle<()>>,
}

/// Builder for [`DecodeService`]; see [`DecodeService::builder`].
#[derive(Debug)]
pub struct DecodeServiceBuilder<D> {
    decoder: D,
    config: ServiceConfig,
    start_paused: bool,
    codes: Vec<Arc<CompiledCode>>,
}

impl<D> DecodeServiceBuilder<D>
where
    D: Decoder + Clone + Send + Sync + 'static,
{
    fn new(decoder: D) -> Self {
        DecodeServiceBuilder {
            decoder,
            config: ServiceConfig::default(),
            start_paused: false,
            codes: Vec::new(),
        }
    }

    /// Sets the per-shard ingest queue bound (backpressure limit).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the most frames coalesced into one `decode_batch` call.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the worker-thread count inside each shard's `decode_batch` call
    /// (routed onto the shared persistent decode pool; bit-identical outputs
    /// for every value — see [`ServiceConfig::decode_threads`]).
    #[must_use]
    pub fn decode_threads(mut self, threads: usize) -> Self {
        self.config.decode_threads = threads;
        self
    }

    /// Routes every submitted frame through `quantizer` at submission:
    /// frames whose peak |LLR| exceeds the representable range are
    /// gain-normalised into it (one common gain per frame, preserving the
    /// reliability ordering), then rounded to representable values. Required
    /// for serving fixed-point back-ends under high-SNR traffic, whose raw
    /// LLRs would otherwise clip flat at the 8-bit saturation code; see
    /// [`LlrQuantizer::normalize_in_place`].
    #[must_use]
    pub fn quantize_ingest(mut self, quantizer: LlrQuantizer) -> Self {
        self.config.ingest_quantizer = Some(quantizer);
        self
    }

    /// Builds the service with its workers parked: frames can be submitted
    /// (and queues can fill, exercising backpressure deterministically) but
    /// nothing decodes until [`DecodeService::resume`]. Shutdown still drains.
    #[must_use]
    pub fn start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Registers a mode: builds and compiles its code, creating one shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Code`] if the mode is unsupported and
    /// [`ServeError::DuplicateCode`] if it is already registered.
    pub fn register(self, id: CodeId) -> Result<Self, ServeError> {
        let compiled = id.build()?.compile();
        self.register_compiled(compiled)
    }

    /// Registers a mode from an already-compiled code (no rebuild), creating
    /// one shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateCode`] if the mode is already
    /// registered.
    pub fn register_compiled(mut self, compiled: CompiledCode) -> Result<Self, ServeError> {
        let id = compiled.spec().id();
        if self.codes.iter().any(|c| c.spec().id() == id) {
            return Err(ServeError::DuplicateCode { code: id });
        }
        self.codes.push(Arc::new(compiled));
        Ok(self)
    }

    /// Spawns the shard workers and returns the running service.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoCodes`] if no mode was registered.
    pub fn build(self) -> Result<DecodeService<D>, ServeError> {
        if self.codes.is_empty() {
            return Err(ServeError::NoCodes);
        }
        let config = self.config.normalized();
        let gate = Arc::new(Gate::new(!self.start_paused));
        let mut shards = HashMap::with_capacity(self.codes.len());
        let mut order = Vec::with_capacity(self.codes.len());
        for compiled in self.codes {
            let id = compiled.spec().id();
            let queue = Arc::new(FrameQueue::new(config.queue_capacity));
            let counters = Arc::new(ShardCounters::default());
            let worker = {
                // Detached: shards share the decoder's workspace pools but
                // keep private stage counters, so per-shard cascade stats
                // never aggregate across shards.
                let decoder = self.decoder.detached_clone();
                let compiled = Arc::clone(&compiled);
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let gate = Arc::clone(&gate);
                std::thread::Builder::new()
                    .name(format!("ldpc-shard-{}", id.n))
                    .spawn(move || {
                        run_worker(&decoder, &compiled, &queue, &gate, &counters, config);
                    })
                    .expect("cannot spawn shard worker")
            };
            order.push(id);
            shards.insert(
                id,
                Shard {
                    compiled,
                    queue,
                    counters,
                    worker: Some(worker),
                },
            );
        }
        Ok(DecodeService {
            shards,
            order,
            gate,
            config,
            decoder: self.decoder,
        })
    }
}

/// A multi-code decode service: one queue-fed, batch-coalescing worker shard
/// per registered mode, routed by [`CodeId`].
///
/// ```
/// use ldpc_codes::{CodeId, CodeRate, Standard};
/// use ldpc_core::{DecoderConfig, FloatBpArithmetic, LayeredDecoder};
/// use ldpc_serve::DecodeService;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
/// let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default())?;
/// let service = DecodeService::builder(decoder).register(wimax)?.build()?;
///
/// // A trivially clean frame: strong positive LLRs = all-zero codeword.
/// let handle = service.submit(wimax, vec![8.0; wimax.n])?;
/// let output = handle.wait().into_output().expect("decoded");
/// assert!(output.parity_satisfied);
///
/// let report = service.shutdown();
/// assert_eq!(report.iter().map(|s| s.decoded).sum::<u64>(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeService<D> {
    shards: HashMap<CodeId, Shard>,
    order: Vec<CodeId>,
    gate: Arc<Gate>,
    config: ServiceConfig,
    /// Kept for pool introspection: clones handed to the workers share this
    /// decoder's workspace pool.
    decoder: D,
}

impl DecodeService<CascadeDecoder> {
    /// Starts building a service whose shards run the SNR-adaptive decoder
    /// cascade under `policy` (see [`CascadePolicy`] and
    /// [`ldpc_core::cascade`]): each shard worker gets a detached clone of
    /// one [`CascadeDecoder`] — shared workspace pools, private stage
    /// counters — and the policy is recorded in [`ServiceConfig::cascade`].
    /// Per-shard escalation counters surface in
    /// [`ShardStats::cascade_escalations`] /
    /// [`ShardStats::cascade_stage_frames`].
    #[must_use]
    pub fn cascade_builder(policy: CascadePolicy) -> DecodeServiceBuilder<CascadeDecoder> {
        let mut builder = DecodeServiceBuilder::new(policy.decoder());
        builder.config.cascade = Some(policy);
        builder
    }
}

impl<D> DecodeService<D>
where
    D: Decoder + Clone + Send + Sync + 'static,
{
    /// Starts building a service around `decoder` (cloned into every shard
    /// worker; clones of the provided decoders share one workspace pool).
    #[must_use]
    pub fn builder(decoder: D) -> DecodeServiceBuilder<D> {
        DecodeServiceBuilder::new(decoder)
    }

    /// The registered modes, in registration order.
    #[must_use]
    pub fn codes(&self) -> &[CodeId] {
        &self.order
    }

    /// The normalized service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Opens the worker gate of a service built with `start_paused`. A no-op
    /// when already running.
    pub fn resume(&self) {
        self.gate.open();
    }

    /// Submits a frame without a deadline, parking the caller while the
    /// shard's queue is full (blocking backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownCode`] / [`SubmitError::FrameLength`] on
    /// validation failure, [`SubmitError::ShutDown`] once shutdown started.
    pub fn submit(&self, code: CodeId, llrs: Vec<f64>) -> Result<FrameHandle, SubmitError> {
        self.submit_inner(code, llrs, None, true)
    }

    /// Submits a frame with a completion deadline, parking while full. A
    /// frame still queued when `deadline` passes completes as
    /// [`DecodeOutcome::Expired`] instead of occupying the decoder.
    ///
    /// # Errors
    ///
    /// As [`DecodeService::submit`].
    pub fn submit_with_deadline(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        deadline: Instant,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit_inner(code, llrs, Some(deadline), true)
    }

    /// Non-blocking submission: refuses with [`SubmitError::QueueFull`]
    /// (handing the LLRs back) when the shard queue is at capacity.
    ///
    /// # Errors
    ///
    /// As [`DecodeService::submit`], plus [`SubmitError::QueueFull`].
    pub fn try_submit(&self, code: CodeId, llrs: Vec<f64>) -> Result<FrameHandle, SubmitError> {
        self.submit_inner(code, llrs, None, false)
    }

    /// Non-blocking submission with a completion deadline.
    ///
    /// # Errors
    ///
    /// As [`DecodeService::try_submit`].
    pub fn try_submit_with_deadline(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        deadline: Instant,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit_inner(code, llrs, Some(deadline), false)
    }

    fn submit_inner(
        &self,
        code: CodeId,
        mut llrs: Vec<f64>,
        deadline: Option<Instant>,
        blocking: bool,
    ) -> Result<FrameHandle, SubmitError> {
        let Some(shard) = self.shards.get(&code) else {
            return Err(SubmitError::UnknownCode { code });
        };
        let expected = shard.compiled.n();
        if llrs.len() != expected {
            return Err(SubmitError::FrameLength {
                code,
                expected,
                actual: llrs.len(),
            });
        }
        // Quantized ingest (when configured): gain-normalise the frame into
        // the fixed-point range at submission, so the shard workers — and the
        // caller, should the frame be handed back — see the exact LLRs the
        // decoder will consume.
        if let Some(quantizer) = &self.config.ingest_quantizer {
            quantizer.normalize_in_place(&mut llrs);
        }
        let slot = Arc::new(Slot::default());
        let frame = PendingFrame {
            llrs,
            deadline,
            slot: CompletionGuard::new(Arc::clone(&slot)),
        };
        // Count the acceptance *before* the push: once pushed, the frame is
        // visible to the worker, and a completion must never be observable
        // ahead of its acceptance. Refusals roll the count back.
        shard.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let refused = |counters: &crate::stats::ShardCounters| {
            counters.accepted.fetch_sub(1, Ordering::Relaxed);
        };
        if blocking {
            shard.queue.push_blocking(frame).map_err(|frame| {
                refused(&shard.counters);
                SubmitError::ShutDown { llrs: frame.llrs }
            })?;
        } else {
            shard.queue.try_push(frame).map_err(|e| {
                refused(&shard.counters);
                match e {
                    PushError::Full(frame) => {
                        shard.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                        SubmitError::QueueFull { llrs: frame.llrs }
                    }
                    PushError::Closed(frame) => SubmitError::ShutDown { llrs: frame.llrs },
                }
            })?;
        }
        Ok(FrameHandle::new(code, slot))
    }

    /// Snapshot of one shard's counters.
    #[must_use]
    pub fn shard_stats(&self, code: CodeId) -> Option<ShardStats> {
        let shard = self.shards.get(&code)?;
        Some(
            shard
                .counters
                .snapshot(code, shard.queue.len(), self.pool_workspaces_created()),
        )
    }

    /// Snapshots of every shard, in registration order.
    #[must_use]
    pub fn stats(&self) -> Vec<ShardStats> {
        self.order
            .iter()
            .filter_map(|&code| self.shard_stats(code))
            .collect()
    }

    /// Workspaces ever built by the (service-wide, per-mode-shelved)
    /// workspace pool; stable across snapshots once every shard is warm.
    #[must_use]
    pub fn pool_workspaces_created(&self) -> usize {
        self.decoder
            .workspace_pool()
            .map_or(0, |pool| pool.workspaces_created())
    }

    /// Closes every shard's intake without stopping the workers: frames
    /// already accepted still decode, new submissions fail with
    /// [`SubmitError::ShutDown`]. The first half of
    /// [`shutdown`](DecodeService::shutdown), usable on a shared reference to
    /// initiate a graceful drain while other threads still hold handles.
    pub fn close_intake(&self) {
        for shard in self.shards.values() {
            shard.queue.close();
        }
    }

    /// Drains and stops the service: closes every ingest queue (new
    /// submissions fail with [`SubmitError::ShutDown`]), opens the worker
    /// gate, lets every worker decode or expire what was accepted, joins
    /// them, and returns the final per-shard statistics. On return, every
    /// accepted frame's handle is resolved.
    pub fn shutdown(mut self) -> Vec<ShardStats> {
        self.finish();
        self.stats()
    }
}

impl<D> DecodeService<D> {
    // Bound-free so `Drop` (no `D` bounds) can share it with `shutdown`.
    fn finish(&mut self) {
        for shard in self.shards.values() {
            shard.queue.close();
        }
        // Open the gate *after* closing the queues so paused services drain
        // exactly the accepted set.
        self.gate.open();
        for (code, shard) in &mut self.shards {
            let Some(worker) = shard.worker.take() else {
                continue;
            };
            if worker.join().is_err() {
                // A panicked worker already resolved its in-hand frames as
                // `Abandoned` through the completion-on-drop guards while
                // unwinding; resolve whatever it left on the queue the same
                // way so no accepted frame dangles, and report instead of
                // panicking (this also runs from Drop).
                let mut abandoned = 0u64;
                while let Some(frame) = shard.queue.pop_blocking() {
                    drop(frame);
                    abandoned += 1;
                }
                shard
                    .counters
                    .failed
                    .fetch_add(abandoned, Ordering::Relaxed);
                eprintln!(
                    "ldpc-serve: shard worker for {code} panicked; \
                     {abandoned} queued frames abandoned"
                );
            }
        }
    }
}

impl<D> Drop for DecodeService<D> {
    fn drop(&mut self) {
        // After `shutdown` this is a no-op (workers already joined); a plain
        // drop performs the same drain so accepted frames never dangle.
        self.finish();
    }
}

/// One shard's serving loop: pop, coalesce, expire, decode, complete.
fn run_worker<D>(
    decoder: &D,
    compiled: &CompiledCode,
    queue: &FrameQueue,
    gate: &Gate,
    counters: &ShardCounters,
    config: ServiceConfig,
) where
    D: Decoder + Sync,
{
    let n = compiled.n();
    let mut pending: Vec<PendingFrame> = Vec::with_capacity(config.max_batch);
    let mut live: Vec<PendingFrame> = Vec::with_capacity(config.max_batch);
    let mut llr_buf: Vec<f64> = Vec::with_capacity(config.max_batch * n);
    let mut outputs: Vec<DecodeOutput> = Vec::new();
    loop {
        gate.wait_open();
        let Some(first) = queue.pop_blocking() else {
            // Closed and fully drained: every accepted frame was completed.
            break;
        };
        pending.push(first);
        queue.drain_into(&mut pending, config.max_batch - 1);

        // Expire overdue frames now instead of decoding them; the deadline
        // check is per coalesced batch, at the moment the worker takes it.
        let now = Instant::now();
        llr_buf.clear();
        live.clear();
        for frame in pending.drain(..) {
            if frame.deadline.is_some_and(|deadline| deadline <= now) {
                counters.expired.fetch_add(1, Ordering::Relaxed);
                frame.complete(DecodeOutcome::Expired);
            } else {
                llr_buf.extend_from_slice(&frame.llrs);
                live.push(frame);
            }
        }
        if live.is_empty() {
            continue;
        }

        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .max_coalesced
            .fetch_max(live.len() as u64, Ordering::Relaxed);
        outputs.resize_with(live.len(), DecodeOutput::empty);
        let batch = LlrBatch::new(&llr_buf, n).expect("coalesced buffer holds whole frames");
        match decoder.decode_batch_into_threads(
            compiled,
            batch,
            &mut outputs,
            config.decode_threads,
        ) {
            Ok(()) => {
                for (frame, out) in live.drain(..).zip(outputs.iter_mut()) {
                    let out = std::mem::replace(out, DecodeOutput::empty());
                    counters.decoded.fetch_add(1, Ordering::Relaxed);
                    frame.complete(DecodeOutcome::Decoded(out));
                }
            }
            Err(e) => {
                for frame in live.drain(..) {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    frame.complete(DecodeOutcome::Failed(e.clone()));
                }
            }
        }
        // Mirror stage-ladder counters (cascade decoders only) into the
        // shard counters so snapshots taken between batches see the decoder's
        // exact totals — the worker exclusively owns its detached clone.
        if let Some(stats) = decoder.cascade_stats() {
            counters.mirror_cascade(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};
    use ldpc_core::decoder::{DecoderConfig, LayeredDecoder};
    use ldpc_core::FloatBpArithmetic;

    fn wimax576() -> CodeId {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
    }

    fn decoder() -> LayeredDecoder<FloatBpArithmetic> {
        LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap()
    }

    #[test]
    fn builder_validates_registration() {
        let err = DecodeService::builder(decoder()).build().unwrap_err();
        assert_eq!(err, ServeError::NoCodes);

        let unsupported = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 100);
        let err = DecodeService::builder(decoder())
            .register(unsupported)
            .unwrap_err();
        assert!(matches!(err, ServeError::Code(_)));

        let err = DecodeService::builder(decoder())
            .register(wimax576())
            .unwrap()
            .register(wimax576())
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateCode { .. }));
    }

    #[test]
    fn config_is_normalized_to_sane_minimums() {
        let service = DecodeService::builder(decoder())
            .queue_capacity(0)
            .max_batch(0)
            .decode_threads(0)
            .register(wimax576())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            *service.config(),
            ServiceConfig {
                queue_capacity: 1,
                max_batch: 1,
                decode_threads: 1,
                ingest_quantizer: None,
                cascade: None,
            }
        );
        service.shutdown();
    }

    #[test]
    fn submission_is_validated_before_queueing() {
        let service = DecodeService::builder(decoder())
            .register(wimax576())
            .unwrap()
            .build()
            .unwrap();
        let unknown = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        assert!(matches!(
            service.submit(unknown, vec![1.0; 648]),
            Err(SubmitError::UnknownCode { .. })
        ));
        assert!(matches!(
            service.submit(wimax576(), vec![1.0; 100]),
            Err(SubmitError::FrameLength {
                expected: 576,
                actual: 100,
                ..
            })
        ));
        let stats = service.shutdown();
        assert_eq!(stats[0].accepted, 0, "invalid frames were never accepted");
    }

    #[test]
    fn clean_frames_decode_and_stats_add_up() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handles: Vec<_> = (0..6)
            .map(|_| service.submit(code, vec![7.5; code.n]).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.code(), code);
            let out = handle.wait().into_output().expect("decoded");
            assert!(out.parity_satisfied);
            assert!(out.hard_bits.iter().all(|&b| b == 0));
        }
        let stats = service.shutdown();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].decoded, 6);
        assert_eq!(stats[0].accepted, 6);
        assert_eq!(stats[0].in_flight(), 0);
        assert!(stats[0].batches >= 1);
        assert!(stats[0].pool_workspaces_created >= 1);
    }

    #[test]
    fn closed_intake_refuses_new_frames_but_drains_accepted_ones() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let accepted = service.submit(code, vec![6.0; code.n]).unwrap();
        service.close_intake();
        let err = service.submit(code, vec![6.0; code.n]).unwrap_err();
        let llrs = match err {
            SubmitError::ShutDown { llrs } => llrs,
            other => panic!("expected ShutDown, got {other:?}"),
        };
        assert_eq!(llrs.len(), code.n, "frame handed back intact");
        assert!(matches!(
            service.try_submit(code, llrs),
            Err(SubmitError::ShutDown { .. })
        ));
        service.resume();
        assert!(accepted.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].accepted, 1);
        assert_eq!(stats[0].decoded, 1);
    }

    #[test]
    fn paused_service_queues_without_decoding_until_resume() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handle = service.submit(code, vec![6.0; code.n]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!handle.is_complete(), "paused worker must not decode");
        assert_eq!(service.shard_stats(code).unwrap().queue_depth, 1);
        service.resume();
        assert!(handle.wait().is_decoded());
        service.shutdown();
    }

    #[test]
    fn paused_service_exposes_deterministic_backpressure() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(2)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let h1 = service.try_submit(code, vec![6.0; code.n]).unwrap();
        let h2 = service.try_submit(code, vec![6.0; code.n]).unwrap();
        let err = service.try_submit(code, vec![6.0; code.n]).unwrap_err();
        let llrs = match err {
            SubmitError::QueueFull { llrs } => llrs,
            other => panic!("expected QueueFull, got {other:?}"),
        };
        assert_eq!(llrs.len(), code.n, "frame handed back for retry");
        let stats = service.shard_stats(code).unwrap();
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(stats.accepted, 2);
        service.resume();
        assert!(h1.wait().is_decoded());
        assert!(h2.wait().is_decoded());
        service.shutdown();
    }

    #[test]
    fn shutdown_completes_every_accepted_frame_even_when_paused() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handles: Vec<_> = (0..5)
            .map(|_| service.submit(code, vec![6.5; code.n]).unwrap())
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 5, "drain decodes everything accepted");
        for handle in handles {
            assert!(handle.wait().is_decoded());
        }
    }

    #[test]
    fn dropping_the_service_also_drains() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handle = service.submit(code, vec![6.0; code.n]).unwrap();
        drop(service);
        assert!(handle.wait().is_decoded(), "drop drains like shutdown");
    }

    #[test]
    fn hot_shard_fanout_is_bit_identical_with_an_idle_shard_registered() {
        // Cross-shard stealing sanity: one hot mode, one idle mode, with the
        // hot shard fanning each coalesced batch across the shared decode
        // pool. Outputs must match a direct single-threaded decode_batch
        // frame for frame, and the idle shard must see no traffic.
        use ldpc_core::Decoder;
        let hot = wimax576();
        let idle = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 1152);
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(64)
            .max_batch(32)
            .decode_threads(4)
            .register(hot)
            .unwrap()
            .register(idle)
            .unwrap()
            .build()
            .unwrap();
        let frames = 24;
        let llrs: Vec<f64> = (0..frames * hot.n)
            .map(|i| if (i * 2654435761) % 89 < 6 { -1.2 } else { 3.5 })
            .collect();
        let handles: Vec<_> = llrs
            .chunks_exact(hot.n)
            .map(|frame| service.submit(hot, frame.to_vec()).unwrap())
            .collect();
        service.resume();

        let compiled = hot.build().unwrap().compile();
        let reference = decoder()
            .decode_batch(&compiled, ldpc_core::LlrBatch::new(&llrs, hot.n).unwrap())
            .unwrap();
        for (i, handle) in handles.into_iter().enumerate() {
            let out = handle.wait().into_output().expect("decoded");
            assert_eq!(out, reference[i], "frame {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, frames as u64);
        assert_eq!(stats[1].decoded, 0, "idle shard saw no frames");
    }

    #[test]
    fn cascade_service_reports_per_shard_escalations() {
        // One clean frame stays at stage 1; heavily corrupted frames under a
        // one-iteration stage-1 budget must escalate. The shard's mirrored
        // counters must show exactly the decoder's ladder traffic.
        let code = wimax576();
        let policy = CascadePolicy {
            min_sum_iterations: 1,
            ..CascadePolicy::default()
        };
        let service = DecodeService::cascade_builder(policy)
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(service.config().cascade, Some(policy));

        let clean = service.submit(code, vec![8.0; code.n]).unwrap();
        let noisy: Vec<f64> = (0..code.n)
            .map(|i| {
                let sign = if (i * 2654435761) % 21 < 5 { -1.0 } else { 1.0 };
                sign * (0.8 + (i % 11) as f64 * 0.5)
            })
            .collect();
        let hard = service.submit(code, noisy).unwrap();
        service.resume();
        assert!(clean.wait().is_decoded());
        assert!(hard.wait().is_decoded());

        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 2);
        assert_eq!(stats[0].cascade_stage_frames[0], 2);
        assert_eq!(
            stats[0].cascade_stage_frames[1], 1,
            "only the noisy frame escalates"
        );
        assert_eq!(stats[0].cascade_escalations, 1);
    }

    #[test]
    fn expired_frames_skip_the_decoder() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let expired = service
            .submit_with_deadline(code, vec![6.0; code.n], past)
            .unwrap();
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        let fresh = service
            .try_submit_with_deadline(code, vec![6.0; code.n], future)
            .unwrap();
        service.resume();
        assert_eq!(expired.wait(), DecodeOutcome::Expired);
        assert!(fresh.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].expired, 1);
        assert_eq!(stats[0].decoded, 1);
    }
}
