//! The policy-driven sharded decode service.
//!
//! A [`DecodeService`] owns one **shard** per registered mode — the software
//! analogue of the paper's mode-ROM fabric, where one hardware array serves
//! every WiMax/WiFi code by switching compiled control state. Each shard
//! holds the mode's shared [`CompiledCode`], a bounded priority ingest
//! [`FrameQueue`](crate::queue::FrameQueue), a [`ShardPolicy`] (SLO,
//! priority class, micro-batch hold, load shedding) and a detached decoder
//! clone. A pool of **dispatch workers** serves every shard: the scheduler
//! picks, among the shards whose batch is full or whose micro-batch hold has
//! released, the highest-priority one, and the claiming worker drains a
//! group-width-snapped batch into one `decode_batch` call.
//!
//! Frames are routed by [`CodeId`] at submission, validated (known mode,
//! exact LLR count), and accepted into the shard queue; the returned
//! [`FrameHandle`] resolves to a [`DecodeOutcome`] — bit-identical to a
//! direct `decode_batch` call, `Expired` if the frame's effective deadline
//! passed before a worker reached it, `Shed` if admission control proved the
//! deadline unmeetable first. [`DecodeService::shutdown`] closes every
//! queue, lets the workers drain, and joins them: every accepted frame is
//! completed, none silently dropped.
//!
//! # Threading
//!
//! The service spawns [`ServiceConfig::dispatch_workers`] dispatch threads
//! (one per shard by default). A shard is decoded by at most one worker at a
//! time (a claim flag serialises it), so outputs and per-shard counters
//! behave exactly as under the old one-worker-per-shard scheme — but a hot
//! mode no longer idles the workers of quiet modes. Decode parallelism
//! *inside* a batch comes from [`ServiceConfig::decode_threads`], routed
//! onto the process-wide persistent decode pool
//! ([`ldpc_core::DecodePool`]) via `decode_batch_into_threads`. Because the
//! pool is shared rather than partitioned per shard, cross-shard stealing is
//! structural: an idle mode reserves no threads, and a saturated pool never
//! delays a shard — the claiming worker always decodes alongside the pool
//! and cancels any fan-out it outran, so `decode_threads > 1` is a
//! speed-only knob with bit-identical outputs.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldpc_channel::quantize::LlrQuantizer;
use ldpc_codes::{CodeId, CompiledCode, PuncturePattern};
use ldpc_core::{
    CascadeConfig, CascadeDecoder, DecodeError, DecodeOutput, DecodePool, Decoder, HarqCombiner,
    LlrBatch,
};

use crate::error::{ServeError, SubmitError};
#[cfg(feature = "fault-injection")]
use crate::fault::FaultPlan;
use crate::handle::{DecodeOutcome, FrameHandle, Slot};
use crate::harq::{HarqCompletion, HarqKey, SoftBufferStats, SoftBufferStore};
use crate::policy::{DecoderPolicy, Priority, RetryPolicy, ShardPolicy, SubmitOptions};
use crate::queue::{CompletionGuard, FrameQueue, PendingFrame, PushError};
use crate::stats::{ServiceHealth, ShardCounters, ShardStats};

/// Tuning knobs of a [`DecodeService`], set through the builder and
/// validated at [`DecodeServiceBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Ingest-queue bound per shard; the backpressure limit. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Most frames coalesced into one `decode_batch` call. Must be ≥ 1.
    /// Per shard, this is snapped *down* to a multiple of the mode's
    /// preferred group width when possible (see
    /// [`ShardStats::effective_max_batch`]), so coalesced batches waste no
    /// frame-major packing.
    pub max_batch: usize,
    /// Worker threads *inside* one shard's `decode_batch` call (frame-level
    /// parallelism), drawn from the process-wide persistent decode pool —
    /// not spawned per shard, so idle modes cost nothing and a hot mode's
    /// chunks are stolen by whatever pool capacity is free (see the
    /// module-level *Threading* notes). The default of 1 keeps each batch on
    /// its dispatch worker and scales across shards instead. Outputs are
    /// bit-identical for every value. Must be ≥ 1.
    pub decode_threads: usize,
    /// Dispatch worker threads serving all shards; `None` (the default)
    /// spawns one per registered mode — the old one-worker-per-shard
    /// parallelism, minus the idle threads. Must be ≥ 1 when set.
    pub dispatch_workers: Option<usize>,
    /// When set, every submitted frame is gain-normalised and quantised into
    /// this quantiser's range at submission
    /// ([`LlrQuantizer::normalize_in_place`]) — the AGC stage that makes
    /// high-SNR traffic decodable by the 8-bit fixed-point back-ends, whose
    /// formats raw channel LLRs would otherwise saturate flat. Leave `None`
    /// (the default) to pass raw LLRs through, e.g. for float decoders.
    pub ingest_quantizer: Option<LlrQuantizer>,
    /// Hard global memory budget of the HARQ soft-buffer store, in bytes
    /// (see [`crate::harq`]). Occupancy never exceeds it — inserts evict
    /// least-recently-touched buffers first. Zero means *stateless HARQ*:
    /// [`DecodeService::submit_harq`] still works but every transmission
    /// decodes from its own LLRs alone. Default 64 MiB.
    pub harq_buffer_bytes: usize,
    /// Optional idle TTL of stored soft buffers: a buffer untouched for
    /// this long is reaped on the next store operation (counted as a TTL
    /// eviction). `None` (the default) keeps buffers until budget pressure
    /// or shutdown.
    pub harq_ttl: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 32,
            decode_threads: 1,
            dispatch_workers: None,
            ingest_quantizer: None,
            harq_buffer_bytes: 64 << 20,
            harq_ttl: None,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<(), ServeError> {
        let reject = |reason: &str| {
            Err(ServeError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.queue_capacity == 0 {
            return reject("queue_capacity must be at least 1");
        }
        if self.max_batch == 0 {
            return reject("max_batch must be at least 1 (a zero batch can never dispatch)");
        }
        if self.decode_threads == 0 {
            return reject("decode_threads must be at least 1");
        }
        if self.dispatch_workers == Some(0) {
            return reject("dispatch_workers must be at least 1");
        }
        Ok(())
    }
}

/// Per-stage iteration budgets of a serving-layer decoder cascade: the
/// deployment-level form of [`ldpc_core::CascadeConfig`], reduced to the
/// integer knobs a deployment tunes. Implements
/// [`DecoderPolicy`](crate::DecoderPolicy), so
/// `DecodeService::builder(policy)` builds a cascade service — no
/// special-cased constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadePolicy {
    /// Stage-1 fixed Min-Sum iteration budget (run without a convergence
    /// scan; the syndrome check decides escalation). Minimum 1.
    pub min_sum_iterations: usize,
    /// Stage-2 fixed-BP iteration ceiling (early termination enabled).
    /// Minimum 1.
    pub fixed_bp_iterations: usize,
    /// Iteration ceiling of the optional float-BP last resort; `None` (the
    /// default) ends the ladder at stage 2.
    pub float_bp_iterations: Option<usize>,
}

impl Default for CascadePolicy {
    fn default() -> Self {
        CascadePolicy {
            min_sum_iterations: 4,
            fixed_bp_iterations: 10,
            float_bp_iterations: None,
        }
    }
}

impl CascadePolicy {
    /// The core-level ladder configuration this policy describes (budgets
    /// clamped to at least one iteration).
    #[must_use]
    pub fn cascade_config(&self) -> CascadeConfig {
        CascadeConfig::with_budgets(
            self.min_sum_iterations,
            self.fixed_bp_iterations,
            self.float_bp_iterations,
        )
    }

    /// A [`CascadeDecoder`] running this policy's ladder.
    #[must_use]
    pub fn decoder(&self) -> CascadeDecoder {
        CascadeDecoder::new(self.cascade_config())
            .expect("clamped cascade budgets are always valid")
    }
}

/// Start gate for dispatch workers: closed while the service is paused,
/// opened by `resume` (and unconditionally by shutdown, so draining never
/// stalls).
#[derive(Debug, Default)]
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Gate {
            open: Mutex::new(open),
            opened: Condvar::new(),
        }
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().expect("gate poisoned");
        while !*open {
            open = self.opened.wait(open).expect("gate poisoned");
        }
    }

    fn open(&self) {
        *self.open.lock().expect("gate poisoned") = true;
        self.opened.notify_all();
    }
}

/// The dispatch workers' shared rendezvous: per-shard claim flags plus the
/// condvar producers kick after every push.
#[derive(Debug)]
struct Scheduler {
    busy: Mutex<Vec<bool>>,
    ready: Condvar,
}

/// One mode's serving state.
#[derive(Debug)]
struct ShardState<D> {
    code: CodeId,
    compiled: Arc<CompiledCode>,
    policy: ShardPolicy,
    /// The decoder's preferred frame-group width for this mode.
    group_width: usize,
    /// [`ServiceConfig::max_batch`] snapped down to a `group_width`
    /// multiple (when ≥ one group).
    effective_batch: usize,
    queue: FrameQueue,
    /// Shared with every frame's completion guard, so abandonments are
    /// accounted even when the accounting thread is mid-unwind.
    counters: Arc<ShardCounters>,
    /// Detached clone: shares the template's workspace pools, keeps private
    /// stage counters. The claim flag serialises access per shard.
    decoder: D,
    /// Rate-compatible puncturing pattern for HARQ transmissions, when
    /// registered via
    /// [`DecodeServiceBuilder::harq_puncture`]; `None` accepts only
    /// full-length transmissions.
    puncture: Option<PuncturePattern>,
}

/// Everything the dispatch workers share with the service front end.
#[derive(Debug)]
struct ServiceCore<D> {
    shards: Vec<ShardState<D>>,
    sched: Scheduler,
    gate: Gate,
    config: ServiceConfig,
    /// Service-wide dispatch sequence, stamping each shard's first batch so
    /// priority ordering is observable (see
    /// [`ShardStats::first_dispatch_order`]).
    dispatch_clock: AtomicU64,
    /// Service-wide ingest sequence: every frame passing validation consumes
    /// one, stamped into [`PendingFrame::seq`]. The chaos harness keys its
    /// fault predicates on it.
    ingest_seq: AtomicU64,
    /// Every `serve_shard` entry consumes one — the domain of the
    /// kill-dispatch fault predicate, deliberately *before* any frame is
    /// claimed so an injected worker crash abandons nothing.
    dispatch_attempts: AtomicU64,
    /// The service's birth instant; health timestamps are nanoseconds since
    /// this epoch.
    epoch: Instant,
    /// Kept for pool introspection: the shard decoders share this
    /// template's workspace pool.
    template: D,
    /// The HARQ soft-buffer store, shared with every in-flight HARQ frame's
    /// completion hook (see [`crate::harq`]).
    harq: Arc<SoftBufferStore>,
    /// Quantizer of the HARQ code space: the configured ingest quantizer,
    /// or the paper's 8-bit W8F2 default when none is set. Soft buffers
    /// accumulate in this quantizer's integer codes.
    harq_quantizer: LlrQuantizer,
    /// The saturating combine kernel over `harq_quantizer`'s code range.
    harq_combiner: HarqCombiner,
    /// The installed chaos plan, if any (see [`crate::fault`]).
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<FaultPlan>,
}

impl<D> ServiceCore<D> {
    /// Wakes every waiting dispatch worker. The empty lock section orders
    /// the notify against a worker that has scanned but not yet parked: the
    /// producer cannot pass the lock until the worker's `wait` releases it,
    /// so the notification is never lost.
    fn kick(&self) {
        drop(self.sched.busy.lock().expect("scheduler poisoned"));
        self.sched.ready.notify_all();
    }

    /// Claims the next shard to serve, blocking until one is ready: a shard
    /// is **ready** when it is unclaimed, non-empty, and either holds a full
    /// effective batch, or its earliest micro-batch hold has released, or
    /// its queue is closed (draining). Among ready shards the highest
    /// [`Priority`] wins, ties broken by earliest release then registration
    /// order. Returns `None` only when every queue is closed and drained —
    /// the workers' exit condition.
    fn claim_next(&self) -> Option<usize> {
        let mut busy = self.sched.busy.lock().expect("scheduler poisoned");
        loop {
            let now = Instant::now();
            let mut best: Option<(Priority, Instant, usize)> = None;
            let mut next_wake: Option<Instant> = None;
            let mut all_done = true;
            for (idx, shard) in self.shards.iter().enumerate() {
                let view = shard.queue.view();
                if !(view.closed && view.len == 0) {
                    all_done = false;
                }
                if busy[idx] || view.len == 0 {
                    continue;
                }
                let release = view.earliest_dispatch_by.unwrap_or(now);
                if view.closed || view.len >= shard.effective_batch || release <= now {
                    let key = (shard.policy.priority, release, idx);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                } else {
                    next_wake = Some(next_wake.map_or(release, |w| w.min(release)));
                }
            }
            if let Some((_, _, idx)) = best {
                busy[idx] = true;
                return Some(idx);
            }
            if all_done {
                return None;
            }
            busy = match next_wake {
                Some(wake) => {
                    let timeout = wake.saturating_duration_since(Instant::now());
                    self.sched
                        .ready
                        .wait_timeout(busy, timeout)
                        .expect("scheduler poisoned")
                        .0
                }
                None => self.sched.ready.wait(busy).expect("scheduler poisoned"),
            };
        }
    }

    fn release(&self, idx: usize) {
        let mut busy = self.sched.busy.lock().expect("scheduler poisoned");
        busy[idx] = false;
        drop(busy);
        self.sched.ready.notify_all();
    }

    /// `now` on the service-epoch nanosecond clock the health timestamps
    /// use.
    fn now_nanos(&self, now: Instant) -> u64 {
        u64::try_from(now.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Releases the claimed shard even if serving it panics, so the remaining
/// workers can still drain its queue (the panicking worker's in-hand frames
/// resolve as `Abandoned` through their completion guards).
struct Claim<'a, D> {
    core: &'a ServiceCore<D>,
    idx: usize,
}

impl<D> Drop for Claim<'_, D> {
    fn drop(&mut self) {
        self.core.release(self.idx);
    }
}

/// Builder for [`DecodeService`]; see [`DecodeService::builder`].
#[derive(Debug)]
pub struct DecodeServiceBuilder<D> {
    decoder: D,
    label: String,
    config: ServiceConfig,
    start_paused: bool,
    codes: Vec<(Arc<CompiledCode>, ShardPolicy)>,
    harq_tx_bits: Vec<(CodeId, usize)>,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<FaultPlan>,
}

impl<D> DecodeServiceBuilder<D>
where
    D: Decoder + Clone + Send + Sync + 'static,
{
    fn new(decoder: D, label: String) -> Self {
        DecodeServiceBuilder {
            decoder,
            label,
            config: ServiceConfig::default(),
            start_paused: false,
            codes: Vec::new(),
            harq_tx_bits: Vec::new(),
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }

    /// Sets the per-shard ingest queue bound (backpressure limit).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the most frames coalesced into one `decode_batch` call (snapped
    /// per shard to the mode's group width; see
    /// [`ServiceConfig::max_batch`]).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the worker-thread count inside each shard's `decode_batch` call
    /// (routed onto the shared persistent decode pool; bit-identical outputs
    /// for every value — see [`ServiceConfig::decode_threads`]).
    #[must_use]
    pub fn decode_threads(mut self, threads: usize) -> Self {
        self.config.decode_threads = threads;
        self
    }

    /// Sets the dispatch-worker count serving all shards; the default is
    /// one per registered mode (see [`ServiceConfig::dispatch_workers`]).
    #[must_use]
    pub fn dispatch_workers(mut self, workers: usize) -> Self {
        self.config.dispatch_workers = Some(workers);
        self
    }

    /// Routes every submitted frame through `quantizer` at submission:
    /// frames whose peak |LLR| exceeds the representable range are
    /// gain-normalised into it (one common gain per frame, preserving the
    /// reliability ordering), then rounded to representable values. Required
    /// for serving fixed-point back-ends under high-SNR traffic, whose raw
    /// LLRs would otherwise clip flat at the 8-bit saturation code; see
    /// [`LlrQuantizer::normalize_in_place`].
    #[must_use]
    pub fn quantize_ingest(mut self, quantizer: LlrQuantizer) -> Self {
        self.config.ingest_quantizer = Some(quantizer);
        self
    }

    /// Builds the service with its workers parked: frames can be submitted
    /// (and queues can fill, exercising backpressure deterministically) but
    /// nothing decodes until [`DecodeService::resume`]. Shutdown still drains.
    #[must_use]
    pub fn start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Sets the HARQ soft-buffer store's hard memory budget (see
    /// [`ServiceConfig::harq_buffer_bytes`]; zero = stateless HARQ).
    #[must_use]
    pub fn harq_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.harq_buffer_bytes = bytes;
        self
    }

    /// Sets the idle TTL of stored soft buffers (see
    /// [`ServiceConfig::harq_ttl`]).
    #[must_use]
    pub fn harq_ttl(mut self, ttl: Duration) -> Self {
        self.config.harq_ttl = Some(ttl);
        self
    }

    /// Registers a rate-compatible puncturing pattern for `code`'s shard:
    /// [`DecodeService::submit_harq`] then also accepts transmissions of
    /// `tx_bits` LLRs, expanded to mother length with erasure LLRs at the
    /// punctured positions of the frame's redundancy version (see
    /// [`PuncturePattern`]). Full-length transmissions stay accepted either
    /// way. Validated against the compiled code at
    /// [`build`](DecodeServiceBuilder::build).
    #[must_use]
    pub fn harq_puncture(mut self, code: CodeId, tx_bits: usize) -> Self {
        self.harq_tx_bits.push((code, tx_bits));
        self
    }

    /// Installs a seeded chaos plan: the dispatch path panics, stalls and
    /// crashes exactly where the plan's deterministic predicates say (see
    /// [`crate::fault`]). Only compiled under the `fault-injection`
    /// feature — production builds have neither this method nor the checks.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Registers a mode under the greedy default policy
    /// ([`ShardPolicy::greedy`]): builds and compiles its code, creating one
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Code`] if the mode is unsupported and
    /// [`ServeError::DuplicateCode`] if it is already registered.
    pub fn register(self, id: CodeId) -> Result<Self, ServeError> {
        self.register_with_policy(id, ShardPolicy::default())
    }

    /// Registers a mode under `policy` — SLO target, priority class,
    /// micro-batch hold and shedding; see [`ShardPolicy`].
    ///
    /// # Errors
    ///
    /// As [`register`](DecodeServiceBuilder::register).
    pub fn register_with_policy(self, id: CodeId, policy: ShardPolicy) -> Result<Self, ServeError> {
        let compiled = id.build()?.compile();
        self.register_compiled_with_policy(compiled, policy)
    }

    /// Registers a mode from an already-compiled code (no rebuild) under the
    /// greedy default policy, creating one shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateCode`] if the mode is already
    /// registered.
    pub fn register_compiled(self, compiled: CompiledCode) -> Result<Self, ServeError> {
        self.register_compiled_with_policy(compiled, ShardPolicy::default())
    }

    /// Registers a mode from an already-compiled code under `policy`.
    ///
    /// # Errors
    ///
    /// As [`register_compiled`](DecodeServiceBuilder::register_compiled).
    pub fn register_compiled_with_policy(
        mut self,
        compiled: CompiledCode,
        policy: ShardPolicy,
    ) -> Result<Self, ServeError> {
        let id = compiled.spec().id();
        if self.codes.iter().any(|(c, _)| c.spec().id() == id) {
            return Err(ServeError::DuplicateCode { code: id });
        }
        self.codes.push((Arc::new(compiled), policy));
        Ok(self)
    }

    /// Spawns the dispatch workers and returns the running service.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoCodes`] if no mode was registered and
    /// [`ServeError::InvalidConfig`] for a zero `queue_capacity`,
    /// `max_batch`, `decode_threads` or `dispatch_workers`.
    pub fn build(self) -> Result<DecodeService<D>, ServeError> {
        self.config.validate()?;
        if self.codes.is_empty() {
            return Err(ServeError::NoCodes);
        }
        let config = self.config;
        let mut shards = Vec::with_capacity(self.codes.len());
        let mut index = HashMap::with_capacity(self.codes.len());
        let mut order = Vec::with_capacity(self.codes.len());
        for &(code, _) in &self.harq_tx_bits {
            if !self.codes.iter().any(|(c, _)| c.spec().id() == code) {
                return Err(ServeError::InvalidConfig {
                    reason: format!("harq_puncture for unregistered code {code}"),
                });
            }
        }
        for (compiled, policy) in self.codes {
            let id = compiled.spec().id();
            // Last registration wins, matching builder-override convention.
            let puncture = self
                .harq_tx_bits
                .iter()
                .rev()
                .find(|(code, _)| *code == id)
                .map(|&(_, tx_bits)| compiled.puncture_pattern(tx_bits))
                .transpose()?;
            // Detached: shards share the decoder's workspace pools but keep
            // private stage counters, so per-shard cascade stats never
            // aggregate across shards.
            let decoder = self.decoder.detached_clone();
            let group_width = decoder.preferred_group_width(&compiled).max(1);
            let mut effective_batch = config.max_batch;
            if group_width > 1 && config.max_batch >= group_width {
                effective_batch = (config.max_batch / group_width) * group_width;
            }
            if effective_batch != config.max_batch {
                eprintln!(
                    "ldpc-serve: max_batch {} for {id} snapped to {effective_batch} \
                     (group width {group_width}); size batches in group-width \
                     multiples to use the full ceiling",
                    config.max_batch
                );
            }
            let counters = Arc::new(ShardCounters::default());
            if let Some(cost) = policy.expected_frame_cost {
                let nanos = u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX);
                counters.est_frame_nanos.store(nanos, Ordering::Relaxed);
            }
            index.insert(id, shards.len());
            order.push(id);
            shards.push(ShardState {
                code: id,
                compiled,
                policy,
                group_width,
                effective_batch,
                queue: FrameQueue::new(config.queue_capacity),
                counters,
                decoder,
                puncture,
            });
        }
        let worker_count = config.dispatch_workers.unwrap_or(shards.len()).max(1);
        let harq_quantizer = config.ingest_quantizer.unwrap_or_default();
        let harq_combiner = HarqCombiner::new(harq_quantizer.max_code());
        let core = Arc::new(ServiceCore {
            sched: Scheduler {
                busy: Mutex::new(vec![false; shards.len()]),
                ready: Condvar::new(),
            },
            shards,
            gate: Gate::new(!self.start_paused),
            config,
            dispatch_clock: AtomicU64::new(0),
            ingest_seq: AtomicU64::new(0),
            dispatch_attempts: AtomicU64::new(0),
            epoch: Instant::now(),
            template: self.decoder,
            harq: Arc::new(SoftBufferStore::new(
                config.harq_buffer_bytes,
                config.harq_ttl,
            )),
            harq_quantizer,
            harq_combiner,
            #[cfg(feature = "fault-injection")]
            fault_plan: self.fault_plan,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("ldpc-dispatch-{i}"))
                    .spawn(move || supervise_dispatcher(&core))
                    .expect("cannot spawn dispatch worker")
            })
            .collect();
        Ok(DecodeService {
            core,
            index,
            order,
            workers,
            label: self.label,
        })
    }
}

/// A multi-code decode service: per-mode policy-scheduled shards served by a
/// pool of batch-coalescing dispatch workers, routed by [`CodeId`].
///
/// ```
/// use ldpc_codes::{CodeId, CodeRate, Standard};
/// use ldpc_core::{DecoderConfig, FloatBpArithmetic, LayeredDecoder};
/// use ldpc_serve::DecodeService;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wimax = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
/// let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default())?;
/// let service = DecodeService::builder(decoder).register(wimax)?.build()?;
///
/// // A trivially clean frame: strong positive LLRs = all-zero codeword.
/// let handle = service.submit(wimax, vec![8.0; wimax.n], ())?;
/// let output = handle.wait().into_output().expect("decoded");
/// assert!(output.parity_satisfied);
///
/// let report = service.shutdown();
/// assert_eq!(report.iter().map(|s| s.decoded).sum::<u64>(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeService<D> {
    core: Arc<ServiceCore<D>>,
    index: HashMap<CodeId, usize>,
    order: Vec<CodeId>,
    workers: Vec<JoinHandle<()>>,
    label: String,
}

impl DecodeService<CascadeDecoder> {
    /// Starts building a cascade service.
    #[deprecated(
        note = "use DecodeService::builder(policy) — CascadePolicy implements DecoderPolicy"
    )]
    #[must_use]
    pub fn cascade_builder(policy: CascadePolicy) -> DecodeServiceBuilder<CascadeDecoder> {
        DecodeService::builder(policy)
    }
}

impl<D> DecodeService<D>
where
    D: Decoder + Clone + Send + Sync + 'static,
{
    /// Starts building a service from a [`DecoderPolicy`] — the uniform
    /// entry point for *what decodes*. Every provided decoder is its own
    /// policy, so passing a decoder instance directly keeps working; passing
    /// a [`CascadePolicy`] builds a cascade service the same way.
    #[must_use]
    pub fn builder<P>(policy: P) -> DecodeServiceBuilder<D>
    where
        P: DecoderPolicy<Decoder = D>,
    {
        DecodeServiceBuilder::new(policy.build_decoder(), policy.label())
    }

    /// The registered modes, in registration order.
    #[must_use]
    pub fn codes(&self) -> &[CodeId] {
        &self.order
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.core.config
    }

    /// Human-readable label of what decodes, from the
    /// [`DecoderPolicy`] the service was built with (e.g.
    /// `"layered/float-bp"`, `"cascade"`).
    #[must_use]
    pub fn decoder_label(&self) -> &str {
        &self.label
    }

    /// The policy a mode's shard is serving under, if registered.
    #[must_use]
    pub fn shard_policy(&self, code: CodeId) -> Option<ShardPolicy> {
        self.index.get(&code).map(|&i| self.core.shards[i].policy)
    }

    /// Opens the worker gate of a service built with `start_paused`. A no-op
    /// when already running.
    pub fn resume(&self) {
        self.core.gate.open();
    }

    /// Submits a frame. `options` is anything [`Into<SubmitOptions>`]:
    /// `()` for the blocking no-deadline default, an [`Instant`] for a
    /// blocking deadline, a [`Priority`], or a full [`SubmitOptions`].
    ///
    /// Blocking submissions park the caller while the shard queue is full;
    /// non-blocking ones refuse with [`SubmitError::QueueFull`], handing the
    /// LLRs back. A frame whose effective deadline (explicit, or
    /// `arrival + slo` on SLO shards) passes while queued completes as
    /// [`DecodeOutcome::Expired`]; on shedding shards an unmeetable deadline
    /// resolves it as [`DecodeOutcome::Shed`] without decoder time.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownCode`] / [`SubmitError::FrameLength`] on
    /// validation failure, [`SubmitError::QueueFull`] on non-blocking
    /// backpressure, [`SubmitError::ShutDown`] once shutdown started.
    pub fn submit(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        options: impl Into<SubmitOptions>,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit_inner(code, llrs, options.into())
    }

    /// Blocking submission with a completion deadline.
    #[deprecated(note = "use submit(code, llrs, deadline) — an Instant converts into \
                         SubmitOptions")]
    pub fn submit_with_deadline(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        deadline: Instant,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit(code, llrs, deadline)
    }

    /// Non-blocking submission without a deadline.
    #[deprecated(note = "use submit(code, llrs, SubmitOptions::new().non_blocking())")]
    pub fn try_submit(&self, code: CodeId, llrs: Vec<f64>) -> Result<FrameHandle, SubmitError> {
        self.submit(code, llrs, SubmitOptions::new().non_blocking())
    }

    /// Non-blocking submission with a completion deadline.
    #[deprecated(note = "use submit(code, llrs, SubmitOptions::new().deadline(d).non_blocking())")]
    pub fn try_submit_with_deadline(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        deadline: Instant,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit(
            code,
            llrs,
            SubmitOptions::new().deadline(deadline).non_blocking(),
        )
    }

    fn submit_inner(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        options: SubmitOptions,
    ) -> Result<FrameHandle, SubmitError> {
        self.submit_framed(code, llrs, options, None)
            .map_err(|(e, _)| e)
    }

    /// The shared tail of every submission path. `harq` is the soft-buffer
    /// hook of a [`submit_harq`](DecodeService::submit_harq) frame; refusals
    /// hand it back alongside the error so a retry loop can re-attach it to
    /// the next attempt instead of re-combining the transmission.
    fn submit_framed(
        &self,
        code: CodeId,
        mut llrs: Vec<f64>,
        options: SubmitOptions,
        mut harq: Option<HarqCompletion>,
    ) -> Result<FrameHandle, (SubmitError, Option<HarqCompletion>)> {
        let Some(&idx) = self.index.get(&code) else {
            return Err((SubmitError::UnknownCode { code }, harq));
        };
        let shard = &self.core.shards[idx];
        let expected = shard.compiled.n();
        if llrs.len() != expected {
            return Err((
                SubmitError::FrameLength {
                    code,
                    expected,
                    actual: llrs.len(),
                },
                harq,
            ));
        }
        // Quantized ingest (when configured): gain-normalise the frame into
        // the fixed-point range at submission, so the dispatch workers — and
        // the caller, should the frame be handed back — see the exact LLRs
        // the decoder will consume.
        if let Some(quantizer) = &self.core.config.ingest_quantizer {
            quantizer.normalize_in_place(&mut llrs);
        }
        let arrival = Instant::now();
        // Every validated frame consumes one ingest sequence number — even
        // one shed at admission — so a single-threaded submitter can predict
        // the seq of each submission (what the chaos harness keys on).
        let seq = self.core.ingest_seq.fetch_add(1, Ordering::Relaxed);
        let deadline = options
            .deadline
            .or_else(|| shard.policy.slo.map(|slo| arrival + slo));
        let est = Duration::from_nanos(shard.counters.est_frame_nanos.load(Ordering::Relaxed));

        // While a degradation ladder still has rungs left, shedding is
        // suppressed: the shard gives up coding effort before it gives up
        // frames.
        let ladder_absorbing = shard.policy.degradation.is_some_and(|ladder| {
            shard.counters.degradation_level.load(Ordering::Relaxed) < u64::from(ladder.max_level)
        });

        // Queue-depth admission control: shed up front when the work already
        // queued ahead of this frame is projected to consume its entire
        // deadline budget. Shed frames are accounted (accepted + shed) and
        // their handles resolve immediately — never a silent drop.
        if shard.policy.shed && !ladder_absorbing && !est.is_zero() {
            if let Some(deadline) = deadline {
                let queue_ahead = est.saturating_mul(shard.queue.len() as u32);
                if !queue_ahead.is_zero() && arrival + queue_ahead > deadline {
                    shard.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    shard.counters.shed.fetch_add(1, Ordering::Relaxed);
                    // A shed HARQ frame parks its soft buffer: the
                    // transmission's information is banked for the retry.
                    if let Some(harq) = harq.take() {
                        harq.resolve(false);
                    }
                    let slot = Arc::new(Slot::default());
                    slot.complete(DecodeOutcome::Shed);
                    return Ok(FrameHandle::new(code, slot));
                }
            }
        }

        // Micro-batch hold: the frame may wait for a fuller batch until the
        // policy's hold ceiling — or until its deadline slack (less one
        // estimated frame cost) runs out, whichever is sooner. Greedy shards
        // hold nothing: dispatch_by = arrival reproduces the old behaviour.
        let mut dispatch_by = arrival + shard.policy.hold_limit();
        if let Some(deadline) = deadline {
            let latest = deadline.checked_sub(est).unwrap_or(arrival).max(arrival);
            dispatch_by = dispatch_by.min(latest);
        }

        let slot = Arc::new(Slot::default());
        let frame = PendingFrame {
            seq,
            llrs,
            deadline,
            priority: options.priority,
            arrival,
            dispatch_by,
            slot: CompletionGuard::new(Arc::clone(&slot), Arc::clone(&shard.counters)),
            harq,
        };
        // Count the acceptance *before* the push: once pushed, the frame is
        // visible to the workers, and a completion must never be observable
        // ahead of its acceptance. Refusals roll the count back.
        shard.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let refused = |counters: &ShardCounters| {
            counters.accepted.fetch_sub(1, Ordering::Relaxed);
        };
        // Refusals reclaim the LLRs and HARQ hook from the handed-back frame
        // and disarm its slot guard: the caller never received a handle, so
        // the drop must not resolve (and count) the frame as abandoned.
        let reclaim = |mut frame: PendingFrame| {
            frame.slot.disarm();
            (std::mem::take(&mut frame.llrs), frame.harq.take())
        };
        if options.blocking {
            shard.queue.push_blocking(frame).map_err(|frame| {
                refused(&shard.counters);
                let (llrs, harq) = reclaim(frame);
                (SubmitError::ShutDown { llrs }, harq)
            })?;
        } else {
            shard.queue.try_push(frame).map_err(|e| {
                refused(&shard.counters);
                match e {
                    PushError::Full(frame) => {
                        shard.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                        let (llrs, harq) = reclaim(frame);
                        (SubmitError::QueueFull { llrs }, harq)
                    }
                    PushError::Closed(frame) => {
                        let (llrs, harq) = reclaim(frame);
                        (SubmitError::ShutDown { llrs }, harq)
                    }
                }
            })?;
        }
        self.core.kick();
        Ok(FrameHandle::new(code, slot))
    }

    /// Non-blocking submission with bounded, jittered exponential backoff
    /// around transient [`SubmitError::QueueFull`] refusals — the polite way
    /// for a bursty producer to ride out short queue spikes without parking
    /// indefinitely like a blocking submit would.
    ///
    /// `options.blocking` is forced off (the whole point is retrying the
    /// non-blocking path). The retry loop is deadline-aware: when the frame
    /// carries a deadline and the next backoff sleep would land past it, the
    /// loop gives up immediately instead of sleeping into certain expiry.
    ///
    /// # Errors
    ///
    /// As [`submit`](DecodeService::submit); [`SubmitError::QueueFull`]
    /// (with the LLRs handed back) once `retry.max_attempts` submissions
    /// have been refused or the deadline pre-empts the next sleep.
    pub fn submit_with_retry(
        &self,
        code: CodeId,
        llrs: Vec<f64>,
        options: impl Into<SubmitOptions>,
        retry: RetryPolicy,
    ) -> Result<FrameHandle, SubmitError> {
        let options = options.into().non_blocking();
        let mut llrs = llrs;
        let mut attempt = 0u32;
        loop {
            match self.submit_inner(code, llrs, options) {
                Err(SubmitError::QueueFull { llrs: returned }) => {
                    attempt += 1;
                    if attempt >= retry.max_attempts.max(1) {
                        return Err(SubmitError::QueueFull { llrs: returned });
                    }
                    let backoff = retry.backoff(attempt - 1);
                    if let Some(deadline) = options.deadline {
                        if Instant::now() + backoff >= deadline {
                            return Err(SubmitError::QueueFull { llrs: returned });
                        }
                    }
                    std::thread::sleep(backoff);
                    llrs = returned;
                }
                other => return other,
            }
        }
    }

    /// Combines transmission `rv` of HARQ process `key` into its stored soft
    /// buffer and submits the combined frame for decoding.
    ///
    /// `llrs` is either a full codeword (`n` LLRs) or, when the code was
    /// registered with [`harq_puncture`](DecodeServiceBuilder::harq_puncture),
    /// the punctured transmission (`tx_bits` LLRs) of redundancy version
    /// `rv` — punctured positions enter the combiner as erasures (LLR 0).
    /// The frame is gain-normalised, quantized with the service's HARQ
    /// quantizer, and accumulated into the soft buffer stored under `key`
    /// (creating one when absent, within the
    /// [`harq_buffer_bytes`](ServiceConfig::harq_buffer_bytes) budget); the
    /// *combined* LLRs are what the decoder sees. Combining is
    /// order-independent: any permutation of the same transmissions yields
    /// bit-identical combined frames.
    ///
    /// The soft buffer's lifecycle follows the decode outcome: a
    /// parity-satisfied decode releases it, any other resolution (decode
    /// failure, expiry, shed, poison, abandonment) parks it for the next
    /// retransmission. A key whose buffer was evicted under budget pressure
    /// restarts cleanly from this transmission alone (counted in
    /// [`ShardStats::harq_evicted_restarts`]) — degraded, never wedged.
    ///
    /// # Errors
    ///
    /// As [`submit`](DecodeService::submit); [`SubmitError::FrameLength`]
    /// reports the nearest expected length (codeword, or `tx_bits` when a
    /// puncture pattern is registered and `llrs` is not a full codeword).
    /// On refusal the transmission's energy is already banked in the parked
    /// soft buffer — resubmitting the same LLRs would double-count them, so
    /// retry via [`submit_harq_with_retry`](DecodeService::submit_harq_with_retry)
    /// or treat the refusal as a dropped transmission and send the next `rv`.
    pub fn submit_harq(
        &self,
        code: CodeId,
        key: HarqKey,
        rv: u8,
        llrs: Vec<f64>,
        options: impl Into<SubmitOptions>,
    ) -> Result<FrameHandle, SubmitError> {
        let (combined, completion) = self.prepare_harq(code, key, rv, llrs)?;
        self.submit_framed(code, combined, options.into(), Some(completion))
            .map_err(|(err, harq)| {
                // The refused transmission is banked: dropping the completion
                // parks the soft buffer for the caller's next attempt.
                drop(harq);
                err
            })
    }

    /// [`submit_harq`](DecodeService::submit_harq) with the bounded retry
    /// loop of [`submit_with_retry`](DecodeService::submit_with_retry).
    ///
    /// The transmission is combined into the soft buffer exactly once, up
    /// front; refused attempts re-submit the already-combined frame, so a
    /// retry never double-counts the transmission's energy. `options.blocking`
    /// is forced off; the loop is deadline-aware like `submit_with_retry`.
    ///
    /// # Errors
    ///
    /// As [`submit_harq`](DecodeService::submit_harq);
    /// [`SubmitError::QueueFull`] once `retry.max_attempts` submissions were
    /// refused (the combined energy stays parked under `key`).
    pub fn submit_harq_with_retry(
        &self,
        code: CodeId,
        key: HarqKey,
        rv: u8,
        llrs: Vec<f64>,
        options: impl Into<SubmitOptions>,
        retry: RetryPolicy,
    ) -> Result<FrameHandle, SubmitError> {
        let options = options.into().non_blocking();
        let (mut llrs, mut completion) = self.prepare_harq(code, key, rv, llrs)?;
        let mut attempt = 0u32;
        loop {
            match self.submit_framed(code, llrs, options, Some(completion)) {
                Err((SubmitError::QueueFull { llrs: returned }, harq)) => {
                    attempt += 1;
                    let give_up = attempt >= retry.max_attempts.max(1);
                    let backoff = retry.backoff(attempt.saturating_sub(1));
                    let past_deadline = options
                        .deadline
                        .is_some_and(|deadline| Instant::now() + backoff >= deadline);
                    if give_up || past_deadline {
                        // Dropping the reclaimed completion parks the buffer.
                        drop(harq);
                        return Err(SubmitError::QueueFull { llrs: returned });
                    }
                    std::thread::sleep(backoff);
                    llrs = returned;
                    completion = harq.expect("refused HARQ frame hands its completion back");
                }
                Err((err, harq)) => {
                    drop(harq);
                    return Err(err);
                }
                Ok(handle) => return Ok(handle),
            }
        }
    }

    /// Validates, expands, quantizes and soft-combines one HARQ transmission,
    /// returning the combined frame (as LLRs ready for `submit_framed`) and
    /// the completion hook that releases or parks the stored buffer when the
    /// frame resolves.
    fn prepare_harq(
        &self,
        code: CodeId,
        key: HarqKey,
        rv: u8,
        llrs: Vec<f64>,
    ) -> Result<(Vec<f64>, HarqCompletion), SubmitError> {
        let Some(&idx) = self.index.get(&code) else {
            return Err(SubmitError::UnknownCode { code });
        };
        let shard = &self.core.shards[idx];
        let n = shard.compiled.n();
        let mut full = if llrs.len() == n {
            llrs
        } else if let Some(pattern) = shard
            .puncture
            .as_ref()
            .filter(|p| p.tx_bits() == llrs.len())
        {
            pattern.expand(rv, &llrs)
        } else {
            return Err(SubmitError::FrameLength {
                code,
                // Report the transmission length when one is registered and
                // the caller clearly wasn't sending a full codeword.
                expected: shard.puncture.as_ref().map_or(n, |p| p.tx_bits()),
                actual: llrs.len(),
            });
        };
        let quantizer = &self.core.harq_quantizer;
        quantizer.normalize_in_place(&mut full);
        let incoming = quantizer.quantize_all_to_codes(&full);
        let combine_seq = self.core.harq.next_combine_seq();
        #[cfg(feature = "fault-injection")]
        let force_evict = self
            .core
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.evicts(combine_seq));
        #[cfg(not(feature = "fault-injection"))]
        let force_evict = false;
        let _ = combine_seq;
        let mut combined = vec![0i32; n];
        let disposition = self.core.harq.combine_into(
            key,
            code,
            rv,
            &incoming,
            &self.core.harq_combiner,
            force_evict,
            &shard.counters,
            &mut combined,
        );
        shard.counters.harq_combines.fetch_add(1, Ordering::Relaxed);
        if disposition.restarted {
            shard
                .counters
                .harq_evicted_restarts
                .fetch_add(1, Ordering::Relaxed);
        }
        let combined_llrs: Vec<f64> = combined.iter().map(|&c| quantizer.dequantize(c)).collect();
        let completion = HarqCompletion::new(
            key,
            Arc::clone(&self.core.harq),
            Arc::clone(&shard.counters),
        );
        Ok((combined_llrs, completion))
    }

    /// Point-in-time snapshot of the HARQ soft-buffer store: occupancy
    /// against budget, peak, and the insert/release/evict/drain ledger.
    /// Also carried by [`health`](DecodeService::health) as
    /// [`ServiceHealth::harq`].
    #[must_use]
    pub fn harq_stats(&self) -> SoftBufferStats {
        self.core.harq.stats()
    }

    /// A shared handle on the soft-buffer store, so a harness can read the
    /// final [`SoftBufferStats`] ledger (post-drain occupancy, leak count)
    /// after [`shutdown`](DecodeService::shutdown) has consumed the service.
    #[must_use]
    pub fn harq_store(&self) -> Arc<crate::harq::SoftBufferStore> {
        Arc::clone(&self.core.harq)
    }

    /// Point-in-time health snapshot: every shard's queue depth,
    /// oldest-frame age, dispatch recency and stall flag, restart and
    /// quarantine counts, plus the decode pool's worker census. Cheap
    /// enough to poll from a watchdog loop; see [`ServiceHealth::healthy`]
    /// for the headline verdict.
    #[must_use]
    pub fn health(&self) -> ServiceHealth {
        let now = Instant::now();
        let now_nanos = self.core.now_nanos(now);
        let shards = self
            .core
            .shards
            .iter()
            .map(|shard| {
                let view = shard.queue.view();
                shard.counters.health(
                    shard.code,
                    view.len,
                    view.oldest_arrival
                        .map(|arrival| now.saturating_duration_since(arrival)),
                    now_nanos,
                )
            })
            .collect();
        let pool = DecodePool::global();
        // Service-wide loss totals, summed across shards so a watchdog reads
        // one number per failure class instead of folding the shard vec.
        let total = |field: fn(&ShardCounters) -> &AtomicU64| {
            self.core
                .shards
                .iter()
                .map(|shard| field(&shard.counters).load(Ordering::Relaxed))
                .sum()
        };
        ServiceHealth {
            shed: total(|c| &c.shed),
            quarantined: total(|c| &c.quarantined),
            abandoned: total(|c| &c.abandoned),
            harq: self.core.harq.stats(),
            shards,
            pool_workers: pool.workers(),
            pool_live_workers: pool.live_workers(),
            pool_worker_restarts: pool.worker_restarts(),
        }
    }

    /// Snapshot of one shard's counters.
    #[must_use]
    pub fn shard_stats(&self, code: CodeId) -> Option<ShardStats> {
        let &idx = self.index.get(&code)?;
        let shard = &self.core.shards[idx];
        Some(shard.counters.snapshot(
            code,
            shard.queue.len(),
            self.pool_workspaces_created(),
            &shard.policy,
            shard.effective_batch,
        ))
    }

    /// Snapshots of every shard, in registration order.
    #[must_use]
    pub fn stats(&self) -> Vec<ShardStats> {
        self.order
            .iter()
            .filter_map(|&code| self.shard_stats(code))
            .collect()
    }

    /// Workspaces ever built by the (service-wide, per-mode-shelved)
    /// workspace pool; stable across snapshots once every shard is warm.
    #[must_use]
    pub fn pool_workspaces_created(&self) -> usize {
        self.core
            .template
            .workspace_pool()
            .map_or(0, |pool| pool.workspaces_created())
    }

    /// Closes every shard's intake without stopping the workers: frames
    /// already accepted still decode, new submissions fail with
    /// [`SubmitError::ShutDown`]. The first half of
    /// [`shutdown`](DecodeService::shutdown), usable on a shared reference to
    /// initiate a graceful drain while other threads still hold handles.
    pub fn close_intake(&self) {
        for shard in &self.core.shards {
            shard.queue.close();
        }
        self.core.kick();
    }

    /// Drains and stops the service: closes every ingest queue (new
    /// submissions fail with [`SubmitError::ShutDown`]), opens the worker
    /// gate, lets the workers decode, expire or shed what was accepted,
    /// joins them, and returns the final per-shard statistics. On return,
    /// every accepted frame's handle is resolved.
    pub fn shutdown(mut self) -> Vec<ShardStats> {
        self.finish();
        self.stats()
    }
}

impl<D> DecodeService<D> {
    // Bound-free so `Drop` (no `D` bounds) can share it with `shutdown`.
    fn finish(&mut self) {
        for shard in &self.core.shards {
            shard.queue.close();
        }
        // Open the gate *after* closing the queues so paused services drain
        // exactly the accepted set.
        self.core.gate.open();
        self.core.kick();
        for worker in self.workers.drain(..) {
            // Supervised workers absorb their own panics and only exit
            // normally; an Err here means the supervisor itself died.
            let _ = worker.join();
        }
        // Defensive final sweep: resolve anything still queued. Each dropped
        // frame's completion guard resolves its handle as `Abandoned` and
        // counts it in `ShardStats::abandoned`, so the books balance without
        // any side-channel tally. Under supervision the workers drain every
        // queue before exiting, so this loop normally finds nothing.
        for shard in &self.core.shards {
            while let Some(frame) = shard.queue.pop_blocking() {
                drop(frame);
            }
        }
        // With every frame resolved (each parking or releasing its soft
        // buffer through its completion), drain the HARQ store: whatever is
        // still held belongs to processes mid-retransmission, and counting
        // it out here is what keeps `SoftBufferStats::leaked` at zero.
        self.core.harq.drain();
    }
}

impl<D> Drop for DecodeService<D> {
    fn drop(&mut self) {
        // After `shutdown` this is a no-op (workers already joined); a plain
        // drop performs the same drain so accepted frames never dangle.
        self.finish();
    }
}

/// Supervises one dispatch worker: runs [`run_dispatcher`] under
/// `catch_unwind` and re-enters it after a panic, so the service never
/// loses dispatch capacity to a crashing batch.
///
/// Unwinding through `run_dispatcher` is already safe by construction: the
/// [`Claim`] drop-guard releases the shard's busy flag, and any frames the
/// worker held resolve as [`DecodeOutcome::Abandoned`] through their
/// completion guards (the quarantine path in [`decode_segment`] catches
/// decode panics *before* they reach this supervisor, so in practice only
/// bookkeeping bugs unwind this far). The restart is attributed to the
/// shard that was being served via `ShardStats::worker_restarts`, and the
/// re-entered loop rebuilds its scratch buffers from scratch — no state
/// crosses the panic.
fn supervise_dispatcher<D>(core: &ServiceCore<D>)
where
    D: Decoder + Sync,
{
    // Which shard the worker currently holds a claim on; `usize::MAX` means
    // none. Written by the worker loop, read here after a panic.
    let current = AtomicUsize::new(usize::MAX);
    loop {
        match catch_unwind(AssertUnwindSafe(|| run_dispatcher(core, &current))) {
            Ok(()) => break,
            Err(_) => {
                let idx = current.swap(usize::MAX, Ordering::Relaxed);
                if let Some(shard) = core.shards.get(idx) {
                    shard
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One dispatch worker's loop: wait for the gate, claim the best ready
/// shard, serve it, release, repeat — until every queue is closed and
/// drained. `current` mirrors the held claim for the supervisor.
fn run_dispatcher<D>(core: &ServiceCore<D>, current: &AtomicUsize)
where
    D: Decoder + Sync,
{
    let mut pending: Vec<PendingFrame> = Vec::with_capacity(core.config.max_batch);
    let mut live: Vec<PendingFrame> = Vec::with_capacity(core.config.max_batch);
    let mut llr_buf: Vec<f64> = Vec::new();
    let mut outputs: Vec<DecodeOutput> = Vec::new();
    loop {
        core.gate.wait_open();
        let Some(idx) = core.claim_next() else {
            // Closed and fully drained: every accepted frame was completed.
            break;
        };
        current.store(idx, Ordering::Relaxed);
        let claim = Claim { core, idx };
        serve_shard(
            core,
            &core.shards[idx],
            &mut pending,
            &mut live,
            &mut llr_buf,
            &mut outputs,
        );
        drop(claim);
        current.store(usize::MAX, Ordering::Relaxed);
    }
}

/// Serves one claimed shard: drain a group-width-snapped batch, expire and
/// shed what cannot make its deadline, decode the rest (with quarantine
/// bisection if the decode panics), complete the handles and fold the
/// observed cost into the shard's estimate.
fn serve_shard<D>(
    core: &ServiceCore<D>,
    shard: &ShardState<D>,
    pending: &mut Vec<PendingFrame>,
    live: &mut Vec<PendingFrame>,
    llr_buf: &mut Vec<f64>,
    outputs: &mut Vec<DecodeOutput>,
) where
    D: Decoder + Sync,
{
    // Chaos hook: a killed dispatch panics *before* draining the queue, so
    // no frame is in hand — the supervisor restarts the worker and the
    // untouched batch is served by the next claim. This is the injection
    // point the chaos gate uses to prove restarts don't lose frames.
    let _attempt = core.dispatch_attempts.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "fault-injection")]
    if let Some(plan) = &core.fault_plan {
        if plan.kills_dispatch(_attempt) {
            panic!("fault-injection: killing dispatch attempt {_attempt}");
        }
    }

    pending.clear();
    shard.queue.drain_batch(
        pending,
        shard.effective_batch,
        shard.group_width,
        shard.policy.micro_batching(),
    );

    // Degradation ladder: judge pressure by the queue fill *left behind*
    // after taking this batch. Stepping up trades cascade effort (skip the
    // float-BP stage, then halve fixed-BP iterations) for throughput;
    // stepping down restores full effort once the backlog clears. While the
    // ladder still has headroom, admission shedding is suppressed — degrade
    // first, shed only once maximally degraded.
    let mut ladder_absorbing = false;
    if let Some(ladder) = shard.policy.degradation {
        let fill =
            (shard.queue.len().saturating_mul(100) / core.config.queue_capacity.max(1)) as u64;
        let level = shard.counters.degradation_level.load(Ordering::Relaxed);
        let stepped = if fill >= u64::from(ladder.high_watermark_pct)
            && level < u64::from(ladder.max_level)
        {
            level + 1
        } else if fill <= u64::from(ladder.low_watermark_pct) && level > 0 {
            level - 1
        } else {
            level
        };
        if stepped != level {
            shard
                .counters
                .degradation_level
                .store(stepped, Ordering::Relaxed);
            // Decoders without an effort ladder (plain layered back-ends)
            // refuse the hint; the gauge still records the intent.
            let _ = shard
                .decoder
                .set_effort_level(u8::try_from(stepped).unwrap_or(u8::MAX));
        }
        ladder_absorbing = stepped < u64::from(ladder.max_level);
    }

    if pending.is_empty() {
        return;
    }

    // Per-batch deadline triage, at the moment the batch is taken: overdue
    // frames expire; frames whose deadline cannot survive the batch's
    // estimated decode time are shed (shedding shards only, and only once
    // the degradation ladder is out of headroom).
    let effective_shed = shard.policy.shed && !ladder_absorbing;
    let now = Instant::now();
    let est = Duration::from_nanos(shard.counters.est_frame_nanos.load(Ordering::Relaxed));
    let batch_cost = est.saturating_mul(pending.len() as u32);
    live.clear();
    for frame in pending.drain(..) {
        match frame.deadline {
            Some(deadline) if deadline <= now => {
                shard.counters.expired.fetch_add(1, Ordering::Relaxed);
                frame.complete(DecodeOutcome::Expired);
            }
            Some(deadline) if effective_shed && !est.is_zero() && deadline < now + batch_cost => {
                shard.counters.shed.fetch_add(1, Ordering::Relaxed);
                frame.complete(DecodeOutcome::Shed);
            }
            _ => live.push(frame),
        }
    }
    if live.is_empty() {
        return;
    }

    let seq = core.dispatch_clock.fetch_add(1, Ordering::Relaxed);
    shard.counters.stamp_dispatch(seq);
    shard.counters.batches.fetch_add(1, Ordering::Relaxed);
    shard
        .counters
        .max_coalesced
        .fetch_max(live.len() as u64, Ordering::Relaxed);
    if shard.counters.degradation_level.load(Ordering::Relaxed) > 0 {
        shard
            .counters
            .degraded_batches
            .fetch_add(1, Ordering::Relaxed);
    }
    shard
        .counters
        .begin_dispatch(core.now_nanos(Instant::now()), live.len());
    // Chaos hook: a stalled dispatch sleeps before decoding — after
    // `begin_dispatch`, so the watchdog's dispatch-age stall detector sees
    // the in-progress dispatch age out.
    #[cfg(feature = "fault-injection")]
    if let Some(plan) = &core.fault_plan {
        if live.iter().any(|frame| plan.stalls(frame.seq)) {
            std::thread::sleep(plan.stall_for);
        }
    }
    decode_segment(core, shard, live, llr_buf, outputs);
    shard.counters.end_dispatch(core.now_nanos(Instant::now()));
    // Mirror stage-ladder counters (cascade decoders only) into the shard
    // counters so snapshots taken between batches see the decoder's exact
    // totals — the claim flag gives this batch exclusive shard access.
    if let Some(stats) = shard.decoder.cascade_stats() {
        shard.counters.mirror_cascade(stats);
    }
}

/// Decodes one segment of a dispatched batch, completing every frame in it.
///
/// On a clean decode the frames resolve as `Decoded`/`Failed` exactly as
/// before. If the decode **panics**, the segment is bisected and each half
/// retried independently; recursion bottoms out at a single frame, which is
/// quarantined as [`DecodeOutcome::Poisoned`]. Innocent batch-mates thus
/// decode normally (per-frame determinism makes the retried halves
/// bit-identical to the original batch), and the poisoned frame's handle
/// resolves instead of dangling. The frames stay owned by this function
/// across `catch_unwind`, so an injected panic never triggers their
/// abandonment guards.
fn decode_segment<D>(
    core: &ServiceCore<D>,
    shard: &ShardState<D>,
    frames: &mut Vec<PendingFrame>,
    llr_buf: &mut Vec<f64>,
    outputs: &mut Vec<DecodeOutput>,
) where
    D: Decoder + Sync,
{
    if frames.is_empty() {
        return;
    }
    llr_buf.clear();
    for frame in frames.iter() {
        llr_buf.extend_from_slice(&frame.llrs);
    }
    outputs.resize_with(frames.len(), DecodeOutput::empty);
    let started = Instant::now();
    match protected_decode(core, shard, frames, llr_buf, outputs) {
        Ok(Ok(())) => {
            let done = Instant::now();
            shard
                .counters
                .observe_batch_cost(done.saturating_duration_since(started), frames.len());
            for (frame, out) in frames.drain(..).zip(outputs.iter_mut()) {
                let out = std::mem::replace(out, DecodeOutput::empty());
                shard.counters.decoded.fetch_add(1, Ordering::Relaxed);
                shard
                    .counters
                    .latency
                    .record(done.saturating_duration_since(frame.arrival));
                frame.complete(DecodeOutcome::Decoded(out));
            }
        }
        Ok(Err(e)) => {
            for frame in frames.drain(..) {
                shard.counters.failed.fetch_add(1, Ordering::Relaxed);
                frame.complete(DecodeOutcome::Failed(e.clone()));
            }
        }
        Err(()) => {
            if frames.len() == 1 {
                let frame = frames.pop().expect("length checked above");
                shard.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                frame.complete(DecodeOutcome::Poisoned);
            } else {
                // Quarantine bisection: split and retry each half. The
                // split allocates only on this (exceptional) path.
                let mut back = frames.split_off(frames.len() / 2);
                decode_segment(core, shard, frames, llr_buf, outputs);
                decode_segment(core, shard, &mut back, llr_buf, outputs);
            }
        }
    }
}

/// Runs one `decode_batch` call under `catch_unwind`.
///
/// `Err(())` means the decode panicked; the caller owns the frames and
/// decides (bisect or quarantine). The decoder's workspaces are pool-owned
/// and rebuilt per batch, and the claim flag keeps the shard exclusive, so
/// unwinding mid-decode leaves no shared state half-written — the
/// `AssertUnwindSafe` is sound.
fn protected_decode<D>(
    core: &ServiceCore<D>,
    shard: &ShardState<D>,
    #[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
    frames: &[PendingFrame],
    llr_buf: &[f64],
    outputs: &mut [DecodeOutput],
) -> Result<Result<(), DecodeError>, ()>
where
    D: Decoder + Sync,
{
    catch_unwind(AssertUnwindSafe(|| {
        // Chaos hook: a poisoned frame panics the whole decode call, exactly
        // like a decoder bug tripping on one frame's input would.
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &core.fault_plan {
            if let Some(frame) = frames.iter().find(|frame| plan.poisons(frame.seq)) {
                panic!("fault-injection: poisoning frame seq {}", frame.seq);
            }
        }
        let batch = LlrBatch::new(llr_buf, shard.compiled.n())
            .expect("coalesced buffer holds whole frames");
        shard.decoder.decode_batch_into_threads(
            &shard.compiled,
            batch,
            outputs,
            core.config.decode_threads,
        )
    }))
    .map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};
    use ldpc_core::decoder::{DecoderConfig, LayeredDecoder};
    use ldpc_core::{FixedBpArithmetic, FloatBpArithmetic};

    fn wimax576() -> CodeId {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
    }

    fn decoder() -> LayeredDecoder<FloatBpArithmetic> {
        LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap()
    }

    #[test]
    fn builder_validates_registration() {
        let err = DecodeService::builder(decoder()).build().unwrap_err();
        assert_eq!(err, ServeError::NoCodes);

        let unsupported = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 100);
        let err = DecodeService::builder(decoder())
            .register(unsupported)
            .unwrap_err();
        assert!(matches!(err, ServeError::Code(_)));

        let err = DecodeService::builder(decoder())
            .register(wimax576())
            .unwrap()
            .register(wimax576())
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateCode { .. }));
    }

    #[test]
    fn zero_config_knobs_are_rejected_at_build() {
        for (build, what) in [
            (
                DecodeService::builder(decoder()).queue_capacity(0),
                "queue_capacity",
            ),
            (DecodeService::builder(decoder()).max_batch(0), "max_batch"),
            (
                DecodeService::builder(decoder()).decode_threads(0),
                "decode_threads",
            ),
            (
                DecodeService::builder(decoder()).dispatch_workers(0),
                "dispatch_workers",
            ),
        ] {
            let err = build.register(wimax576()).unwrap().build().unwrap_err();
            match err {
                ServeError::InvalidConfig { reason } => {
                    assert!(reason.contains(what), "{what}: {reason}");
                }
                other => panic!("{what}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn misaligned_max_batch_snaps_to_the_group_width() {
        // Fixed-point back-ends prefer frame groups (width 6 at z = 24); a
        // max_batch of 8 wastes the packing, so build snaps it down to 6.
        let fixed = LayeredDecoder::new(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig::default(),
        )
        .unwrap();
        let service = DecodeService::builder(fixed)
            .max_batch(8)
            .register(wimax576())
            .unwrap()
            .build()
            .unwrap();
        let stats = service.shard_stats(wimax576()).unwrap();
        assert_eq!(stats.effective_max_batch, 6);
        assert_eq!(service.config().max_batch, 8, "the config echoes the ask");

        // Float back-ends are frame-serial (width 1): nothing snaps.
        let service = DecodeService::builder(decoder())
            .max_batch(8)
            .register(wimax576())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            service.shard_stats(wimax576()).unwrap().effective_max_batch,
            8
        );
    }

    #[test]
    fn submission_is_validated_before_queueing() {
        let service = DecodeService::builder(decoder())
            .register(wimax576())
            .unwrap()
            .build()
            .unwrap();
        let unknown = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        assert!(matches!(
            service.submit(unknown, vec![1.0; 648], ()),
            Err(SubmitError::UnknownCode { .. })
        ));
        assert!(matches!(
            service.submit(wimax576(), vec![1.0; 100], ()),
            Err(SubmitError::FrameLength {
                expected: 576,
                actual: 100,
                ..
            })
        ));
        let stats = service.shutdown();
        assert_eq!(stats[0].accepted, 0, "invalid frames were never accepted");
    }

    #[test]
    fn clean_frames_decode_and_stats_add_up() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handles: Vec<_> = (0..6)
            .map(|_| service.submit(code, vec![7.5; code.n], ()).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.code(), code);
            let out = handle.wait().into_output().expect("decoded");
            assert!(out.parity_satisfied);
            assert!(out.hard_bits.iter().all(|&b| b == 0));
        }
        let stats = service.shutdown();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].decoded, 6);
        assert_eq!(stats[0].accepted, 6);
        assert_eq!(stats[0].in_flight(), 0);
        assert!(stats[0].batches >= 1);
        assert!(stats[0].pool_workspaces_created >= 1);
        assert_eq!(stats[0].latency.count, 6, "decoded frames record latency");
        assert!(stats[0].est_frame_nanos > 0, "cost estimate learned");
        assert_eq!(stats[0].first_dispatch_order, Some(0));
    }

    #[test]
    fn closed_intake_refuses_new_frames_but_drains_accepted_ones() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let accepted = service.submit(code, vec![6.0; code.n], ()).unwrap();
        service.close_intake();
        let err = service.submit(code, vec![6.0; code.n], ()).unwrap_err();
        let llrs = match err {
            SubmitError::ShutDown { llrs } => llrs,
            other => panic!("expected ShutDown, got {other:?}"),
        };
        assert_eq!(llrs.len(), code.n, "frame handed back intact");
        assert!(matches!(
            service.submit(code, llrs, SubmitOptions::new().non_blocking()),
            Err(SubmitError::ShutDown { .. })
        ));
        service.resume();
        assert!(accepted.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].accepted, 1);
        assert_eq!(stats[0].decoded, 1);
    }

    #[test]
    fn paused_service_queues_without_decoding_until_resume() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handle = service.submit(code, vec![6.0; code.n], ()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!handle.is_complete(), "paused workers must not decode");
        assert_eq!(service.shard_stats(code).unwrap().queue_depth, 1);
        service.resume();
        assert!(handle.wait().is_decoded());
        service.shutdown();
    }

    #[test]
    fn paused_service_exposes_deterministic_backpressure() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(2)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let try_opts = SubmitOptions::new().non_blocking();
        let h1 = service.submit(code, vec![6.0; code.n], try_opts).unwrap();
        let h2 = service.submit(code, vec![6.0; code.n], try_opts).unwrap();
        let err = service
            .submit(code, vec![6.0; code.n], try_opts)
            .unwrap_err();
        let llrs = match err {
            SubmitError::QueueFull { llrs } => llrs,
            other => panic!("expected QueueFull, got {other:?}"),
        };
        assert_eq!(llrs.len(), code.n, "frame handed back for retry");
        let stats = service.shard_stats(code).unwrap();
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(stats.accepted, 2);
        service.resume();
        assert!(h1.wait().is_decoded());
        assert!(h2.wait().is_decoded());
        service.shutdown();
    }

    #[test]
    fn shutdown_completes_every_accepted_frame_even_when_paused() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handles: Vec<_> = (0..5)
            .map(|_| service.submit(code, vec![6.5; code.n], ()).unwrap())
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 5, "drain decodes everything accepted");
        for handle in handles {
            assert!(handle.wait().is_decoded());
        }
    }

    #[test]
    fn dropping_the_service_also_drains() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let handle = service.submit(code, vec![6.0; code.n], ()).unwrap();
        drop(service);
        assert!(handle.wait().is_decoded(), "drop drains like shutdown");
    }

    #[test]
    fn hot_shard_fanout_is_bit_identical_with_an_idle_shard_registered() {
        // Cross-shard stealing sanity: one hot mode, one idle mode, with the
        // hot shard fanning each coalesced batch across the shared decode
        // pool. Outputs must match a direct single-threaded decode_batch
        // frame for frame, and the idle shard must see no traffic.
        use ldpc_core::Decoder;
        let hot = wimax576();
        let idle = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 1152);
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(64)
            .max_batch(32)
            .decode_threads(4)
            .register(hot)
            .unwrap()
            .register(idle)
            .unwrap()
            .build()
            .unwrap();
        let frames = 24;
        let llrs: Vec<f64> = (0..frames * hot.n)
            .map(|i| if (i * 2654435761) % 89 < 6 { -1.2 } else { 3.5 })
            .collect();
        let handles: Vec<_> = llrs
            .chunks_exact(hot.n)
            .map(|frame| service.submit(hot, frame.to_vec(), ()).unwrap())
            .collect();
        service.resume();

        let compiled = hot.build().unwrap().compile();
        let reference = decoder()
            .decode_batch(&compiled, ldpc_core::LlrBatch::new(&llrs, hot.n).unwrap())
            .unwrap();
        for (i, handle) in handles.into_iter().enumerate() {
            let out = handle.wait().into_output().expect("decoded");
            assert_eq!(out, reference[i], "frame {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, frames as u64);
        assert_eq!(stats[1].decoded, 0, "idle shard saw no frames");
    }

    #[test]
    fn cascade_policy_builds_through_the_uniform_builder() {
        // One clean frame stays at stage 1; heavily corrupted frames under a
        // one-iteration stage-1 budget must escalate. The shard's mirrored
        // counters must show exactly the decoder's ladder traffic.
        let code = wimax576();
        let policy = CascadePolicy {
            min_sum_iterations: 1,
            ..CascadePolicy::default()
        };
        let service = DecodeService::builder(policy)
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(service.decoder_label(), "cascade");

        let clean = service.submit(code, vec![8.0; code.n], ()).unwrap();
        let noisy: Vec<f64> = (0..code.n)
            .map(|i| {
                let sign = if (i * 2654435761) % 21 < 5 { -1.0 } else { 1.0 };
                sign * (0.8 + (i % 11) as f64 * 0.5)
            })
            .collect();
        let hard = service.submit(code, noisy, ()).unwrap();
        service.resume();
        assert!(clean.wait().is_decoded());
        assert!(hard.wait().is_decoded());

        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 2);
        assert_eq!(stats[0].cascade_stage_frames[0], 2);
        assert_eq!(
            stats[0].cascade_stage_frames[1], 1,
            "only the noisy frame escalates"
        );
        assert_eq!(stats[0].cascade_escalations, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_serve() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let future = Instant::now() + Duration::from_secs(3600);
        let a = service
            .submit_with_deadline(code, vec![6.0; code.n], future)
            .unwrap();
        let b = service.try_submit(code, vec![6.0; code.n]).unwrap();
        let c = service
            .try_submit_with_deadline(code, vec![6.0; code.n], future)
            .unwrap();
        assert!(a.wait().is_decoded());
        assert!(b.wait().is_decoded());
        assert!(c.wait().is_decoded());
        let cascade = DecodeService::cascade_builder(CascadePolicy::default())
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(cascade.decoder_label(), "cascade");
        cascade.shutdown();
    }

    #[test]
    fn expired_frames_skip_the_decoder() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        let expired = service.submit(code, vec![6.0; code.n], past).unwrap();
        let future = Instant::now() + Duration::from_secs(3600);
        let fresh = service
            .submit(
                code,
                vec![6.0; code.n],
                SubmitOptions::new().deadline(future).non_blocking(),
            )
            .unwrap();
        service.resume();
        assert_eq!(expired.wait(), DecodeOutcome::Expired);
        assert!(fresh.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].expired, 1);
        assert_eq!(stats[0].decoded, 1);
    }

    #[test]
    fn micro_batch_timer_waits_for_a_full_batch_then_dispatches() {
        // An SLO shard with a huge hold ceiling must sit on a lone frame —
        // and dispatch the moment the batch fills, well before the timer.
        let code = wimax576();
        let policy = ShardPolicy::with_slo(Duration::from_secs(3600)).shed(false);
        let service = DecodeService::builder(decoder())
            .max_batch(2)
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let first = service.submit(code, vec![6.0; code.n], ()).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            !first.is_complete(),
            "one queued frame of a two-frame batch must be held"
        );
        let second = service.submit(code, vec![6.0; code.n], ()).unwrap();
        assert!(first.wait().is_decoded());
        assert!(second.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].batches, 1, "size-triggered single dispatch");
        assert_eq!(stats[0].max_coalesced, 2);
    }

    #[test]
    fn micro_batch_timer_fires_on_deadline_slack_without_a_full_batch() {
        // A lone frame on an SLO shard dispatches when the hold releases
        // (slo/2), not at the deadline and not never.
        let code = wimax576();
        let policy = ShardPolicy::with_slo(Duration::from_millis(50)).shed(false);
        let service = DecodeService::builder(decoder())
            .max_batch(32)
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let submitted = Instant::now();
        let handle = service.submit(code, vec![6.0; code.n], ()).unwrap();
        assert!(handle.wait().is_decoded());
        let held = submitted.elapsed();
        assert!(
            held >= Duration::from_millis(20),
            "dispatch must wait out the 25 ms hold, not fire greedily ({held:?})"
        );
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 1);
        assert_eq!(stats[0].batches, 1);
    }

    #[test]
    fn high_priority_shard_dispatches_first_on_a_single_worker() {
        let low_mode = wimax576();
        let high_mode = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        // Register the low-priority mode first so priority — not
        // registration order — must explain the dispatch order.
        let service = DecodeService::builder(decoder())
            .start_paused()
            .dispatch_workers(1)
            .register_with_policy(low_mode, ShardPolicy::default().priority(Priority::Low))
            .unwrap()
            .register_with_policy(high_mode, ShardPolicy::default().priority(Priority::High))
            .unwrap()
            .build()
            .unwrap();
        let low = service.submit(low_mode, vec![6.0; low_mode.n], ()).unwrap();
        let high = service
            .submit(high_mode, vec![6.0; high_mode.n], ())
            .unwrap();
        let stats = service.shutdown();
        assert!(low.wait().is_decoded());
        assert!(high.wait().is_decoded());
        let order_of = |code: CodeId| {
            stats
                .iter()
                .find(|s| s.code == code)
                .and_then(|s| s.first_dispatch_order)
                .expect("dispatched")
        };
        assert!(
            order_of(high_mode) < order_of(low_mode),
            "the high-priority shard must be served first: {stats:?}"
        );
    }

    #[test]
    fn unmeetable_deadlines_are_shed_at_admission_and_dispatch() {
        // Seeded 10 s/frame cost estimate, no SLO (so only explicit
        // deadlines are judged). Frame 1 (6 s budget, empty queue) passes
        // admission but is shed at dispatch (batch cost ≥ 20 s). Frame 2
        // (5 s budget, one frame queued ahead = 10 s projected wait) is shed
        // at admission, resolving immediately while the service is paused.
        // Frame 3 has no deadline and must decode.
        let code = wimax576();
        let policy = ShardPolicy::default()
            .shed(true)
            .expected_frame_cost(Duration::from_secs(10));
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let f1 = service
            .submit(
                code,
                vec![6.0; code.n],
                Instant::now() + Duration::from_secs(6),
            )
            .unwrap();
        let f2 = service
            .submit(
                code,
                vec![6.0; code.n],
                Instant::now() + Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(f2.wait(), DecodeOutcome::Shed, "admission-time shed");
        let f3 = service.submit(code, vec![6.0; code.n], ()).unwrap();
        assert_eq!(service.shard_stats(code).unwrap().shed, 1);
        service.resume();
        assert_eq!(f1.wait(), DecodeOutcome::Shed, "dispatch-time shed");
        assert!(f3.wait().is_decoded(), "undeadlined frames never shed");
        let stats = service.shutdown();
        assert_eq!(stats[0].accepted, 3);
        assert_eq!(stats[0].shed, 2);
        assert_eq!(stats[0].decoded, 1);
        assert_eq!(stats[0].in_flight(), 0, "shed frames are accounted");
    }

    #[test]
    fn slo_scheduled_output_is_bit_identical_to_direct_decode_batch() {
        let code = wimax576();
        let policy = ShardPolicy::with_slo(Duration::from_secs(3600))
            .shed(false)
            .max_hold(Duration::from_millis(5));
        let service = DecodeService::builder(decoder())
            .max_batch(8)
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let frames = 20;
        let llrs: Vec<f64> = (0..frames * code.n)
            .map(|i| if (i * 2654435761) % 97 < 7 { -1.4 } else { 3.1 })
            .collect();
        let handles: Vec<_> = llrs
            .chunks_exact(code.n)
            .map(|frame| service.submit(code, frame.to_vec(), ()).unwrap())
            .collect();
        let compiled = code.build().unwrap().compile();
        let reference = decoder()
            .decode_batch(&compiled, LlrBatch::new(&llrs, code.n).unwrap())
            .unwrap();
        for (i, handle) in handles.into_iter().enumerate() {
            let out = handle.wait().into_output().expect("decoded");
            assert_eq!(out, reference[i], "frame {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, frames as u64);
        assert_eq!(stats[0].shed, 0);
        assert_eq!(stats[0].expired, 0);
    }

    #[test]
    fn health_reports_queue_depth_oldest_age_and_pool_census() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let before = Instant::now();
        let h1 = service.submit(code, vec![6.0; code.n], ()).unwrap();
        let h2 = service.submit(code, vec![6.0; code.n], ()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let health = service.health();
        assert_eq!(health.shards.len(), 1);
        let shard = &health.shards[0];
        assert_eq!(shard.code, code);
        assert_eq!(shard.queue_depth, 2);
        let age = shard.oldest_frame_age.expect("frames are queued");
        assert!(age >= Duration::from_millis(5) && age <= before.elapsed());
        assert!(!shard.dispatch_in_progress, "paused: nothing dispatched");
        assert!(shard.last_dispatch_age.is_none(), "no dispatch yet");
        assert!(!shard.stalled);
        assert_eq!(shard.worker_restarts, 0);
        assert_eq!(shard.quarantined, 0);
        assert!(health.pool_workers >= 1);
        // Freshly spawned pool workers register themselves asynchronously;
        // wait for the census to converge before judging healthiness.
        let deadline = Instant::now() + Duration::from_secs(10);
        let health = loop {
            let health = service.health();
            if health.pool_live_workers >= health.pool_workers {
                break health;
            }
            assert!(Instant::now() < deadline, "pool workers never registered");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(health.pool_live_workers, health.pool_workers);
        assert!(health.healthy(), "paused-but-responsive is healthy");

        service.resume();
        assert!(h1.wait().is_decoded());
        assert!(h2.wait().is_decoded());
        let drained = service.health();
        assert_eq!(drained.shards[0].queue_depth, 0);
        // Frames complete inside the dispatch, a beat before end_dispatch
        // stamps recency — poll rather than race it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.health().shards[0].last_dispatch_age.is_none() {
            assert!(
                Instant::now() < deadline,
                "a completed dispatch never stamped recency"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        service.shutdown();
    }

    #[test]
    fn submit_with_retry_rides_out_transient_queue_pressure() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(1)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let parked = service.submit(code, vec![6.0; code.n], ()).unwrap();

        // Paused + full queue: a no-retry policy refuses immediately...
        let once = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            service.submit_with_retry(code, vec![6.0; code.n], (), once),
            Err(SubmitError::QueueFull { .. })
        ));
        // ...and a deadline inside the first backoff gives up without
        // sleeping into certain expiry.
        let tight = RetryPolicy {
            base_backoff: Duration::from_secs(3600),
            ..RetryPolicy::default()
        };
        assert!(matches!(
            service.submit_with_retry(
                code,
                vec![6.0; code.n],
                Instant::now() + Duration::from_millis(1),
                tight,
            ),
            Err(SubmitError::QueueFull { .. })
        ));

        // With the service resumed mid-backoff, the retry loop lands the
        // frame once capacity frees.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                service.resume();
            });
            let retry = RetryPolicy {
                max_attempts: 200,
                base_backoff: Duration::from_millis(2),
                ..RetryPolicy::default()
            };
            let handle = service
                .submit_with_retry(code, vec![6.0; code.n], (), retry)
                .expect("capacity frees after resume");
            assert!(handle.wait().is_decoded());
        });
        assert!(parked.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 2);
        assert!(stats[0].rejected_full >= 2, "refusals were counted");
    }

    #[test]
    fn degradation_ladder_suppresses_shedding_while_it_has_headroom() {
        // Same setup as the shed test (10 s/frame seeded cost, unmeetable
        // deadlines) but with a degradation ladder attached: as long as the
        // ladder has headroom, frames decode at reduced effort instead of
        // being shed at admission or dispatch.
        let code = wimax576();
        let policy = ShardPolicy::default()
            .shed(true)
            .expected_frame_cost(Duration::from_secs(10))
            .degradation(crate::policy::DegradationPolicy::default());
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let f1 = service
            .submit(
                code,
                vec![6.0; code.n],
                Instant::now() + Duration::from_secs(6),
            )
            .unwrap();
        let f2 = service
            .submit(
                code,
                vec![6.0; code.n],
                Instant::now() + Duration::from_secs(5),
            )
            .unwrap();
        assert!(
            !f2.is_complete(),
            "admission shed is suppressed while the ladder absorbs"
        );
        service.resume();
        assert!(f1.wait().is_decoded(), "degrade-first beats shedding");
        assert!(f2.wait().is_decoded());
        let stats = service.shutdown();
        assert_eq!(stats[0].shed, 0);
        assert_eq!(stats[0].decoded, 2);
    }

    #[test]
    fn degradation_level_steps_up_under_backlog_and_recovers() {
        // Paused service, capacity 10, single-frame batches: after the first
        // dispatch 9 frames remain (90% fill ≥ the 60% watermark), so the
        // level must climb, and the drained tail must bring it back to 0.
        let code = wimax576();
        let policy = ShardPolicy::default()
            .shed(false)
            .degradation(crate::policy::DegradationPolicy::default());
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(10)
            .max_batch(1)
            .register_with_policy(code, policy)
            .unwrap()
            .build()
            .unwrap();
        let handles: Vec<_> = (0..10)
            .map(|_| service.submit(code, vec![6.5; code.n], ()).unwrap())
            .collect();
        service.resume();
        for handle in handles {
            assert!(handle.wait().is_decoded());
        }
        let stats = service.shutdown();
        assert_eq!(stats[0].decoded, 10);
        assert!(
            stats[0].degraded_batches >= 1,
            "backlogged batches ran degraded: {stats:?}"
        );
        assert_eq!(
            stats[0].degradation_level, 0,
            "drained queue steps the ladder back down"
        );
    }

    #[test]
    fn harq_parks_failed_attempts_and_releases_successes() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let key = HarqKey::new(7, 0);

        // First transmission carries a deadline that is already gone: the
        // frame expires at dispatch — a non-success that must *park* the
        // soft buffer, banking the transmission for the retry.
        let first = service
            .submit_harq(code, key, 0, vec![6.0; code.n], Instant::now())
            .unwrap();
        service.resume();
        assert!(matches!(first.wait(), DecodeOutcome::Expired));
        let stats = service.harq_stats();
        assert_eq!(stats.entries, 1, "failed attempt parks the buffer");
        assert!(stats.occupancy_bytes > 0);
        let shard = service.shard_stats(code).unwrap();
        assert_eq!(shard.harq_combines, 1);
        assert_eq!(shard.harq_parked, 1);
        assert_eq!(shard.harq_released, 0);

        // Retransmission combines with the banked energy and decodes: a
        // parity-satisfied outcome releases the buffer.
        let second = service
            .submit_harq(code, key, 1, vec![6.0; code.n], ())
            .unwrap();
        let out = second.wait().into_output().expect("combined frame decodes");
        assert!(out.parity_satisfied);
        assert!(out.hard_bits.iter().all(|&b| b == 0));
        let health = service.health();
        assert_eq!(health.harq.entries, 0, "success releases the buffer");
        assert_eq!(health.harq.releases, 1);
        assert_eq!(health.shed, 0);
        assert_eq!(health.quarantined, 0);
        assert_eq!(health.abandoned, 0);
        let shard = service.shard_stats(code).unwrap();
        assert_eq!(shard.harq_combines, 2);
        assert_eq!(shard.harq_released, 1);
        let stats = service.harq_stats();
        assert_eq!(stats.leaked(), 0, "the ledger stays balanced");
        service.shutdown();
    }

    #[test]
    fn harq_punctured_redundancy_versions_combine_to_a_full_codeword() {
        // tx_bits 288 over n = 576, z = 24: rv0 covers bits [0, 288) and
        // rv2 covers [288, 576) — complementary halves of the codeword.
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .harq_puncture(code, 288)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let key = HarqKey::new(11, 3);

        // A transmission that is neither a full codeword nor tx_bits long is
        // refused, quoting the registered transmission length.
        assert!(matches!(
            service.submit_harq(code, key, 0, vec![6.0; 100], ()),
            Err(SubmitError::FrameLength {
                expected: 288,
                actual: 100,
                ..
            })
        ));

        // rv0 alone is half a codeword (the rest erased); expire it so the
        // energy parks rather than asserting on a borderline decode.
        let first = service
            .submit_harq(code, key, 0, vec![6.0; 288], Instant::now())
            .unwrap();
        service.resume();
        assert!(matches!(first.wait(), DecodeOutcome::Expired));

        // rv2 fills in the other half: the combined frame has full-strength
        // LLRs at every position and decodes cleanly.
        let second = service
            .submit_harq(code, key, 2, vec![6.0; 288], ())
            .unwrap();
        let out = second.wait().into_output().expect("combined halves decode");
        assert!(out.parity_satisfied);
        assert!(out.hard_bits.iter().all(|&b| b == 0));
        assert_eq!(service.harq_stats().entries, 0);
        service.shutdown();
    }

    #[test]
    fn harq_builder_rejects_bad_puncture_registrations() {
        let code = wimax576();
        let other = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        let err = DecodeService::builder(decoder())
            .harq_puncture(other, 324)
            .register(code)
            .unwrap()
            .build()
            .unwrap_err();
        match err {
            ServeError::InvalidConfig { reason } => {
                assert!(reason.contains("harq_puncture"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }

        // tx_bits not divisible by z is a code-layer parameter error.
        let err = DecodeService::builder(decoder())
            .harq_puncture(code, 100)
            .register(code)
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::Code(_)), "{err:?}");
    }

    #[test]
    fn harq_refusals_bank_energy_and_retries_reattach_it() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .start_paused()
            .queue_capacity(1)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let parked = service.submit(code, vec![6.0; code.n], ()).unwrap();
        let key = HarqKey::new(42, 1);

        // Paused + full queue: the HARQ submission is refused, but the
        // transmission was already combined — its energy stays banked in the
        // parked buffer, and no phantom abandonment is counted.
        assert!(matches!(
            service.submit_harq(
                code,
                key,
                0,
                vec![6.0; code.n],
                SubmitOptions::new().non_blocking()
            ),
            Err(SubmitError::QueueFull { .. })
        ));
        let stats = service.harq_stats();
        assert_eq!(stats.entries, 1, "refused transmission stays banked");
        assert_eq!(stats.combines, 1);
        let shard = service.shard_stats(code).unwrap();
        assert_eq!(shard.harq_parked, 1);
        assert_eq!(shard.abandoned, 0, "refusal must not count as abandoned");

        // The retry loop re-attaches the completion to each attempt without
        // re-combining; once capacity frees, the frame decodes and releases.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                service.resume();
            });
            let retry = RetryPolicy {
                max_attempts: 200,
                base_backoff: Duration::from_millis(2),
                ..RetryPolicy::default()
            };
            let handle = service
                .submit_harq_with_retry(code, key, 1, vec![6.0; code.n], (), retry)
                .expect("capacity frees after resume");
            assert!(handle.wait().is_decoded());
        });
        assert!(parked.wait().is_decoded());
        let stats = service.harq_stats();
        assert_eq!(stats.combines, 2, "retries never re-combine");
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.leaked(), 0);
        let shard_stats = service.shutdown();
        assert_eq!(shard_stats[0].abandoned, 0);
        assert_eq!(shard_stats[0].harq_released, 1);
    }

    #[test]
    fn zero_harq_budget_serves_stateless() {
        let code = wimax576();
        let service = DecodeService::builder(decoder())
            .harq_buffer_bytes(0)
            .register(code)
            .unwrap()
            .build()
            .unwrap();
        let key = HarqKey::new(1, 0);
        let handle = service
            .submit_harq(code, key, 0, vec![6.5; code.n], ())
            .unwrap();
        assert!(handle.wait().is_decoded());
        let stats = service.harq_stats();
        assert_eq!(stats.entries, 0, "nothing fits a zero budget");
        assert_eq!(stats.occupancy_bytes, 0);
        assert!(stats.oversize >= 1, "stateless fallback is counted");
        assert_eq!(stats.leaked(), 0);
        service.shutdown();
    }
}
