//! Deterministic chaos injection for the serving tier.
//!
//! A [`FaultPlan`] is a seeded description of *which* frames and dispatches
//! misbehave: every predicate is a pure function of the plan and a sequence
//! number (`splitmix64(seed ^ x) % every == 0`), so a harness that knows the
//! seed can compute the exact set of frames a run will poison or stall
//! before submitting them — and then assert the service quarantined exactly
//! those and nothing else.
//!
//! The whole module (and the hooks the service compiles against it) sits
//! behind the `fault-injection` cargo feature. With the feature off — the
//! default, and what every non-chaos CI gate builds — none of this code
//! exists and the dispatch path carries zero fault-check overhead.
//!
//! The injected faults:
//!
//! * **Poisoned frames** ([`poison_every`](FaultPlan::poison_every)): the
//!   dispatch worker panics when a selected frame's batch decodes —
//!   exercising quarantine bisection, which must isolate the frame as
//!   [`DecodeOutcome::Poisoned`](crate::DecodeOutcome::Poisoned) while its
//!   batch-mates decode bit-identically to a fault-free run.
//! * **Decode stalls** ([`stall_every`](FaultPlan::stall_every)): the worker
//!   sleeps [`stall_for`](FaultPlan::stall_for) before decoding a batch
//!   holding a selected frame — exercising the watchdog's stall detection
//!   and micro-batch timing under delay.
//! * **Dispatch kills** ([`kill_dispatch_every`](FaultPlan::kill_dispatch_every)):
//!   a selected dispatch attempt panics *before claiming any frames* —
//!   exercising worker supervision: the supervisor must restart the loop
//!   and the queued frames must still all resolve.
//! * **Soft-buffer evictions** ([`evict_every`](FaultPlan::evict_every)): a
//!   selected HARQ combine force-evicts the key's stored soft buffer before
//!   combining — exercising eviction-mid-HARQ: the frame must restart from
//!   its fresh LLRs, decode normally, and be counted as an evicted restart,
//!   never wedged or leaked.

use std::time::Duration;

use crate::policy::splitmix64;

/// A seeded, deterministic fault-injection plan for one service instance.
///
/// Installed through
/// [`DecodeServiceBuilder::fault_plan`](crate::DecodeServiceBuilder::fault_plan)
/// (only compiled under the `fault-injection` feature). The default plan
/// injects nothing; enable individual faults by setting their `*_every`
/// knobs — a value of `n` selects (on average) one in `n` sequence numbers,
/// chosen by a seeded hash so the selection is uniform but reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed shared by all predicates; two runs with equal seeds and knobs
    /// fault exactly the same frames.
    pub seed: u64,
    /// Panic the decode of roughly one in this many submitted frames
    /// (by ingest sequence number). `None` poisons nothing.
    pub poison_every: Option<u64>,
    /// Stall (sleep) the dispatch of roughly one in this many submitted
    /// frames before decoding. `None` stalls nothing.
    pub stall_every: Option<u64>,
    /// How long a stalled dispatch sleeps.
    pub stall_for: Duration,
    /// Panic roughly one in this many dispatch attempts before any frame is
    /// claimed (a clean worker crash). `None` kills nothing.
    pub kill_dispatch_every: Option<u64>,
    /// Force-evict the stored soft buffer of roughly one in this many HARQ
    /// combines (by combine sequence number) before the combine runs.
    /// `None` evicts nothing.
    pub evict_every: Option<u64>,
}

impl Default for FaultPlan {
    /// The inert plan: nothing faults until a knob is set.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            poison_every: None,
            stall_every: None,
            stall_for: Duration::from_millis(5),
            kill_dispatch_every: None,
            evict_every: None,
        }
    }
}

impl FaultPlan {
    /// An inert plan carrying `seed` — knobs are then set field-wise.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    fn selects(&self, every: Option<u64>, domain: u64, x: u64) -> bool {
        match every {
            // Domain tag decorrelates the three predicates: a frame that
            // poisons under a seed should not automatically also stall.
            Some(every) => {
                splitmix64(self.seed ^ domain.wrapping_mul(0x9e37) ^ x).is_multiple_of(every)
            }
            None => false,
        }
    }

    /// Whether the frame with ingest sequence number `seq` is poisoned
    /// (its batch's decode panics until quarantine isolates it).
    #[must_use]
    pub fn poisons(&self, seq: u64) -> bool {
        self.selects(self.poison_every, 1, seq)
    }

    /// Whether the frame with ingest sequence number `seq` stalls its
    /// dispatch for [`stall_for`](FaultPlan::stall_for) before decoding.
    #[must_use]
    pub fn stalls(&self, seq: u64) -> bool {
        self.selects(self.stall_every, 2, seq)
    }

    /// Whether dispatch attempt number `attempt` panics before claiming
    /// frames (a clean worker crash the supervisor must absorb).
    #[must_use]
    pub fn kills_dispatch(&self, attempt: u64) -> bool {
        self.selects(self.kill_dispatch_every, 3, attempt)
    }

    /// Whether HARQ combine number `combine` force-evicts its key's stored
    /// soft buffer before combining (an eviction mid-HARQ the store must
    /// absorb as a counted fresh restart).
    #[must_use]
    pub fn evicts(&self, combine: u64) -> bool {
        self.selects(self.evict_every, 4, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::seeded(42);
        for seq in 0..1000 {
            assert!(
                !plan.poisons(seq)
                    && !plan.stalls(seq)
                    && !plan.kills_dispatch(seq)
                    && !plan.evicts(seq)
            );
        }
    }

    #[test]
    fn predicates_are_deterministic_and_seed_dependent() {
        let plan = FaultPlan {
            poison_every: Some(10),
            ..FaultPlan::seeded(7)
        };
        let hits: Vec<u64> = (0..200).filter(|&s| plan.poisons(s)).collect();
        let again: Vec<u64> = (0..200).filter(|&s| plan.poisons(s)).collect();
        assert_eq!(hits, again, "same plan, same selection");
        assert!(!hits.is_empty(), "1-in-10 over 200 draws must hit");
        assert!(hits.len() < 60, "...but not wildly more than expected");

        let reseeded = FaultPlan { seed: 8, ..plan };
        let other: Vec<u64> = (0..200).filter(|&s| reseeded.poisons(s)).collect();
        assert_ne!(hits, other, "different seed, different selection");
    }

    #[test]
    fn predicates_are_mutually_decorrelated() {
        let plan = FaultPlan {
            poison_every: Some(5),
            stall_every: Some(5),
            kill_dispatch_every: Some(5),
            evict_every: Some(5),
            ..FaultPlan::seeded(3)
        };
        let poisons: Vec<u64> = (0..500).filter(|&s| plan.poisons(s)).collect();
        let stalls: Vec<u64> = (0..500).filter(|&s| plan.stalls(s)).collect();
        let kills: Vec<u64> = (0..500).filter(|&s| plan.kills_dispatch(s)).collect();
        let evicts: Vec<u64> = (0..500).filter(|&s| plan.evicts(s)).collect();
        assert_ne!(poisons, stalls);
        assert_ne!(stalls, kills);
        assert_ne!(kills, evicts);
        assert!(!evicts.is_empty(), "1-in-5 over 500 draws must hit");
    }
}
