//! Per-frame completion: the [`DecodeOutcome`] a submitted frame resolves to
//! and the [`FrameHandle`] a caller waits on.
//!
//! Completion is a one-shot slot shared between the submitting caller and the
//! shard worker: the worker fills it exactly once ([`Slot::complete`]), the
//! handle blocks on it ([`FrameHandle::wait`]). The service guarantees that
//! every *accepted* frame — every successful `submit`/`try_submit` — is
//! eventually completed, including through shutdown, so `wait` cannot hang on
//! an accepted frame.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ldpc_codes::CodeId;
use ldpc_core::{DecodeError, DecodeOutput};

/// How the service resolved one submitted frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DecodeOutcome {
    /// The frame was decoded; the output is bit-identical to what a direct
    /// `decode_batch` call on the same mode would have produced.
    Decoded(DecodeOutput),
    /// The frame's deadline had passed when its shard worker pulled it for
    /// decoding, so the decoder's time was not spent on it.
    Expired,
    /// Admission control shed the frame: its deadline was still in the
    /// future, but the shard's queue depth and observed decode cost showed
    /// it could not be met, so the frame was dropped up front instead of
    /// decoded late (see [`ShardPolicy::shed`](crate::ShardPolicy::shed)).
    /// Counted in [`ShardStats::shed`](crate::ShardStats::shed) — never a
    /// silent drop.
    Shed,
    /// The decode engine rejected the coalesced batch (cannot happen for
    /// frames the service validated at submission; kept for robustness).
    Failed(DecodeError),
    /// The serving pipeline dropped the frame without resolving it — only
    /// possible if a shard worker panicked mid-batch. The completion-on-drop
    /// guard turns that crash into this outcome instead of a handle that
    /// hangs forever, and the drop is accounted in
    /// [`ShardStats::abandoned`](crate::ShardStats::abandoned).
    Abandoned,
    /// The frame made its batch's decode panic: quarantine bisection retried
    /// the crashed batch in halves until this frame was isolated as the
    /// offender, the innocent frames decoded normally, and this one was
    /// resolved here instead of crashing the batch again. Counted in
    /// [`ShardStats::quarantined`](crate::ShardStats::quarantined).
    Poisoned,
}

impl DecodeOutcome {
    /// Whether the frame was actually decoded.
    #[must_use]
    pub fn is_decoded(&self) -> bool {
        matches!(self, DecodeOutcome::Decoded(_))
    }

    /// The decode output, if the frame was decoded.
    #[must_use]
    pub fn into_output(self) -> Option<DecodeOutput> {
        match self {
            DecodeOutcome::Decoded(out) => Some(out),
            _ => None,
        }
    }
}

/// One-shot completion slot shared by a frame's handle and its shard worker.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<Option<DecodeOutcome>>,
    done: Condvar,
}

impl Slot {
    /// Resolves the frame. Must be called exactly once per accepted frame.
    pub(crate) fn complete(&self, outcome: DecodeOutcome) {
        let mut state = self.state.lock().expect("completion slot poisoned");
        debug_assert!(state.is_none(), "frame completed twice");
        *state = Some(outcome);
        self.done.notify_all();
    }

    /// Resolves the frame only if it is still pending (no-op otherwise),
    /// reporting whether this call resolved it. Used by the
    /// completion-on-drop guard, which must tolerate racing the explicit
    /// completion path — and which only accounts the drop when it really
    /// was the resolving side.
    pub(crate) fn try_complete(&self, outcome: DecodeOutcome) -> bool {
        let mut state = self.state.lock().expect("completion slot poisoned");
        if state.is_none() {
            *state = Some(outcome);
            self.done.notify_all();
            true
        } else {
            false
        }
    }
}

/// Completion handle for one accepted frame.
///
/// Obtained from the service's submit methods; consumed by
/// [`wait`](FrameHandle::wait) (or [`wait_timeout`](FrameHandle::wait_timeout),
/// which hands the handle back if the frame is still in flight).
#[derive(Debug)]
pub struct FrameHandle {
    code: CodeId,
    slot: Arc<Slot>,
}

impl FrameHandle {
    pub(crate) fn new(code: CodeId, slot: Arc<Slot>) -> Self {
        FrameHandle { code, slot }
    }

    /// The mode the frame was submitted under.
    #[must_use]
    pub fn code(&self) -> CodeId {
        self.code
    }

    /// Whether the frame has already been resolved (non-blocking).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.slot
            .state
            .lock()
            .expect("completion slot poisoned")
            .is_some()
    }

    /// Blocks until the frame is resolved and returns its outcome.
    #[must_use]
    pub fn wait(self) -> DecodeOutcome {
        let mut state = self.slot.state.lock().expect("completion slot poisoned");
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self
                .slot
                .done
                .wait(state)
                .expect("completion slot poisoned");
        }
    }

    /// Like [`wait`](FrameHandle::wait) with a timeout; returns the handle
    /// back (for retrying) if the frame is still in flight when it elapses.
    pub fn wait_timeout(self, timeout: Duration) -> Result<DecodeOutcome, FrameHandle> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("completion slot poisoned");
        loop {
            if let Some(outcome) = state.take() {
                return Ok(outcome);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                drop(state);
                return Err(self);
            };
            let (next, timed_out) = self
                .slot
                .done
                .wait_timeout(state, remaining)
                .expect("completion slot poisoned");
            state = next;
            if timed_out.timed_out() && state.is_none() {
                drop(state);
                return Err(self);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    fn handle() -> (Arc<Slot>, FrameHandle) {
        let slot = Arc::new(Slot::default());
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        (slot.clone(), FrameHandle::new(code, slot))
    }

    #[test]
    fn wait_returns_the_completed_outcome() {
        let (slot, handle) = handle();
        assert!(!handle.is_complete());
        slot.complete(DecodeOutcome::Expired);
        assert!(handle.is_complete());
        assert_eq!(handle.wait(), DecodeOutcome::Expired);
    }

    #[test]
    fn wait_blocks_until_completion_from_another_thread() {
        let (slot, handle) = handle();
        let waiter = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(20));
        slot.complete(DecodeOutcome::Decoded(DecodeOutput::empty()));
        let outcome = waiter.join().unwrap();
        assert!(outcome.is_decoded());
        assert_eq!(outcome.into_output(), Some(DecodeOutput::empty()));
    }

    #[test]
    fn wait_timeout_hands_the_handle_back_when_pending() {
        let (slot, handle) = handle();
        let handle = handle
            .wait_timeout(Duration::from_millis(10))
            .expect_err("still pending");
        slot.complete(DecodeOutcome::Expired);
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(5)).unwrap(),
            DecodeOutcome::Expired
        );
    }

    #[test]
    fn outcome_accessors() {
        assert!(!DecodeOutcome::Expired.is_decoded());
        assert_eq!(DecodeOutcome::Expired.into_output(), None);
        let failed = DecodeOutcome::Failed(DecodeError::BatchShape { reason: "x".into() });
        assert!(!failed.is_decoded());
    }
}
