//! The bounded MPSC ingest queue in front of each shard.
//!
//! Any number of submitting threads push [`PendingFrame`]s; the shard's one
//! worker pops them, coalescing as many queued frames as are available into a
//! single `decode_batch` call. The bound is the backpressure mechanism:
//! [`FrameQueue::try_push`] refuses when full (handing the frame back), while
//! [`FrameQueue::push_blocking`] parks the producer until the worker drains —
//! exactly the two submission flavours the service exposes.
//!
//! Closing the queue ([`FrameQueue::close`]) refuses new frames but leaves
//! everything already queued poppable, so a draining worker completes every
//! accepted frame before [`FrameQueue::pop_blocking`] returns `None`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::handle::{DecodeOutcome, Slot};

/// Completion-on-drop wrapper around a frame's [`Slot`]: dropping it without
/// an explicit [`complete`](CompletionGuard::complete) resolves the handle as
/// [`DecodeOutcome::Abandoned`]. This is what keeps the "every accepted frame
/// resolves" guarantee true even if a shard worker panics mid-batch — the
/// unwinding drops the worker's pending frames, and each drop unblocks its
/// waiter instead of leaving it hanging forever.
#[derive(Debug)]
pub(crate) struct CompletionGuard(Option<Arc<Slot>>);

impl CompletionGuard {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        CompletionGuard(Some(slot))
    }

    /// Resolves the frame with `outcome`, disarming the drop path.
    pub(crate) fn complete(mut self, outcome: DecodeOutcome) {
        if let Some(slot) = self.0.take() {
            slot.complete(outcome);
        }
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(slot) = self.0.take() {
            slot.try_complete(DecodeOutcome::Abandoned);
        }
    }
}

/// One accepted frame waiting for its shard worker.
#[derive(Debug)]
pub(crate) struct PendingFrame {
    /// Channel LLRs, exactly `n` values for the shard's code.
    pub llrs: Vec<f64>,
    /// Completion deadline; frames past it are expired instead of decoded.
    pub deadline: Option<Instant>,
    /// Completion guard over the slot shared with the caller's
    /// [`crate::FrameHandle`].
    pub slot: CompletionGuard,
}

impl PendingFrame {
    /// Resolves the frame's handle with `outcome`.
    pub(crate) fn complete(self, outcome: DecodeOutcome) {
        self.slot.complete(outcome);
    }
}

/// Why a push was refused; the frame is handed back either way.
#[derive(Debug)]
pub(crate) enum PushError {
    /// The queue is at capacity (transient — backpressure).
    Full(PendingFrame),
    /// The queue is closed (permanent — the service is shutting down).
    Closed(PendingFrame),
}

#[derive(Debug, Default)]
struct Inner {
    frames: VecDeque<PendingFrame>,
    closed: bool,
}

/// Bounded multi-producer single-consumer frame queue.
#[derive(Debug)]
pub(crate) struct FrameQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl FrameQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        FrameQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("frame queue poisoned")
            .frames
            .len()
    }

    /// Non-blocking push; refuses (returning the frame) when full or closed.
    pub(crate) fn try_push(&self, frame: PendingFrame) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(frame));
        }
        if inner.frames.len() >= self.capacity {
            return Err(PushError::Full(frame));
        }
        inner.frames.push_back(frame);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: parks until the worker makes room (backpressure) or the
    /// queue closes (the frame is handed back as the error).
    pub(crate) fn push_blocking(&self, frame: PendingFrame) -> Result<(), PendingFrame> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        loop {
            if inner.closed {
                return Err(frame);
            }
            if inner.frames.len() < self.capacity {
                inner.frames.push_back(frame);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("frame queue poisoned");
        }
    }

    /// Blocking pop for the shard worker. Returns `None` only when the queue
    /// is closed *and* drained — every accepted frame is handed out first.
    pub(crate) fn pop_blocking(&self) -> Option<PendingFrame> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        loop {
            if let Some(frame) = inner.frames.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(frame);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("frame queue poisoned");
        }
    }

    /// Non-blocking bulk pop of up to `max` additional frames, appended to
    /// `out` — the coalescing step after a successful `pop_blocking`.
    pub(crate) fn drain_into(&self, out: &mut Vec<PendingFrame>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        let take = max.min(inner.frames.len());
        out.extend(inner.frames.drain(..take));
        drop(inner);
        if take > 0 {
            self.not_full.notify_all();
        }
        take
    }

    /// Refuses all future pushes; queued frames remain poppable. Idempotent.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("frame queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> PendingFrame {
        PendingFrame {
            llrs: vec![1.0; 4],
            deadline: None,
            slot: CompletionGuard::new(Arc::new(Slot::default())),
        }
    }

    #[test]
    fn try_push_refuses_when_full_and_hands_the_frame_back() {
        let queue = FrameQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(frame()).unwrap();
        queue.try_push(frame()).unwrap();
        let refused = queue.try_push(frame());
        assert!(matches!(refused, Err(PushError::Full(_))));
        if let Err(PushError::Full(f)) = refused {
            assert_eq!(f.llrs.len(), 4, "frame ownership returned intact");
        }
        assert_eq!(queue.len(), 2);
        // Popping makes room again.
        assert!(queue.pop_blocking().is_some());
        queue.try_push(frame()).unwrap();
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued_frames() {
        let queue = FrameQueue::new(4);
        queue.try_push(frame()).unwrap();
        queue.try_push(frame()).unwrap();
        queue.close();
        assert!(matches!(queue.try_push(frame()), Err(PushError::Closed(_))));
        assert!(queue.push_blocking(frame()).is_err());
        assert!(queue.pop_blocking().is_some());
        assert!(queue.pop_blocking().is_some());
        assert!(queue.pop_blocking().is_none(), "closed and drained");
        queue.close(); // idempotent
    }

    #[test]
    fn push_blocking_parks_until_the_consumer_makes_room() {
        let queue = Arc::new(FrameQueue::new(1));
        queue.try_push(frame()).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push_blocking(frame()).is_ok())
        };
        // The producer cannot finish until we pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "blocked on the full queue");
        assert!(queue.pop_blocking().is_some());
        assert!(producer.join().unwrap());
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn pop_blocking_wakes_on_push() {
        let queue = Arc::new(FrameQueue::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop_blocking().is_some())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.try_push(frame()).unwrap();
        assert!(consumer.join().unwrap());
    }

    #[test]
    fn drain_into_coalesces_without_blocking() {
        let queue = FrameQueue::new(8);
        for _ in 0..5 {
            queue.try_push(frame()).unwrap();
        }
        let first = queue.pop_blocking().unwrap();
        let mut batch = vec![first];
        assert_eq!(queue.drain_into(&mut batch, 3), 3);
        assert_eq!(batch.len(), 4);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.drain_into(&mut batch, 0), 0, "zero max is a no-op");
        assert_eq!(queue.drain_into(&mut batch, 10), 1, "capped by contents");
    }

    #[test]
    fn dropping_an_uncompleted_frame_resolves_its_handle_as_abandoned() {
        use crate::handle::FrameHandle;
        use ldpc_codes::{CodeId, CodeRate, Standard};
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);

        // The panic path: a frame dropped mid-flight (worker unwinding)
        // resolves its waiter as Abandoned instead of hanging it.
        let slot = Arc::new(Slot::default());
        let handle = FrameHandle::new(code, Arc::clone(&slot));
        drop(PendingFrame {
            llrs: Vec::new(),
            deadline: None,
            slot: CompletionGuard::new(slot),
        });
        assert_eq!(handle.wait(), DecodeOutcome::Abandoned);

        // The happy path: explicit completion disarms the drop guard.
        let slot = Arc::new(Slot::default());
        let handle = FrameHandle::new(code, Arc::clone(&slot));
        let frame = PendingFrame {
            llrs: Vec::new(),
            deadline: None,
            slot: CompletionGuard::new(slot),
        };
        frame.complete(DecodeOutcome::Expired);
        assert_eq!(handle.wait(), DecodeOutcome::Expired);
    }

    #[test]
    fn capacity_floor_is_one() {
        let queue = FrameQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(frame()).unwrap();
        assert!(matches!(queue.try_push(frame()), Err(PushError::Full(_))));
    }
}
