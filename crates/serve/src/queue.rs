//! The bounded priority ingest queue in front of each shard.
//!
//! Any number of submitting threads push [`PendingFrame`]s; the service's
//! dispatch workers claim a shard and drain a batch. The bound is the
//! backpressure mechanism: [`FrameQueue::try_push`] refuses when full
//! (handing the frame back), while [`FrameQueue::push_blocking`] parks the
//! producer until a worker drains — exactly the two submission flavours
//! [`SubmitOptions::blocking`](crate::SubmitOptions::blocking) selects.
//!
//! Frames are kept priority-ordered: a pushed frame is inserted ahead of
//! every strictly lower-priority frame and behind earlier frames of its own
//! class, so draining the front is always FIFO-within-class. The
//! [`FrameQueue::view`] snapshot gives the scheduler what it ranks shards
//! by — depth, the earliest micro-batch release time, closedness — under a
//! single lock acquisition.
//!
//! Closing the queue ([`FrameQueue::close`]) refuses new frames but leaves
//! everything already queued drainable, so a draining worker completes every
//! accepted frame before [`FrameQueue::pop_blocking`] returns `None`.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::handle::{DecodeOutcome, Slot};
use crate::harq::HarqCompletion;
use crate::policy::Priority;
use crate::stats::ShardCounters;

/// Completion-on-drop wrapper around a frame's [`Slot`]: dropping it without
/// an explicit [`complete`](CompletionGuard::complete) resolves the handle as
/// [`DecodeOutcome::Abandoned`]. This is what keeps the "every accepted frame
/// resolves" guarantee true even if a dispatch worker panics mid-batch — the
/// unwinding drops the worker's pending frames, and each drop unblocks its
/// waiter instead of leaving it hanging forever. The drop path also counts
/// the abandonment into its shard's counters, so
/// [`ShardStats::in_flight`](crate::ShardStats::in_flight) returns to zero
/// even across a worker crash — abandoned frames are accounted, never a
/// silent `eprintln!` tally.
#[derive(Debug)]
pub(crate) struct CompletionGuard {
    slot: Option<Arc<Slot>>,
    counters: Option<Arc<ShardCounters>>,
}

impl CompletionGuard {
    pub(crate) fn new(slot: Arc<Slot>, counters: Arc<ShardCounters>) -> Self {
        CompletionGuard {
            slot: Some(slot),
            counters: Some(counters),
        }
    }

    /// Resolves the frame with `outcome`, disarming the drop path.
    pub(crate) fn complete(mut self, outcome: DecodeOutcome) {
        if let Some(slot) = self.slot.take() {
            slot.complete(outcome);
        }
    }

    /// Disarms the guard without resolving the slot — for frames a refused
    /// push hands back to the submitter: their handle was never issued, so
    /// nothing may resolve (or be counted) as abandoned.
    pub(crate) fn disarm(&mut self) {
        self.slot = None;
        self.counters = None;
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            if slot.try_complete(DecodeOutcome::Abandoned) {
                if let Some(counters) = &self.counters {
                    counters.abandoned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One accepted frame waiting for a dispatch worker.
#[derive(Debug)]
pub(crate) struct PendingFrame {
    /// Service-wide ingest sequence number, stamped at admission. Stable and
    /// deterministic for a single-threaded submitter, which is what lets the
    /// chaos harness predict exactly which frames a seeded
    /// `FaultPlan` will hit. Only the fault hooks read it.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    pub seq: u64,
    /// Channel LLRs, exactly `n` values for the shard's code.
    pub llrs: Vec<f64>,
    /// Effective completion deadline: the explicit submission deadline, or
    /// `arrival + slo` for shards with an SLO. Frames past it are expired
    /// instead of decoded.
    pub deadline: Option<Instant>,
    /// The frame's priority within its shard queue.
    pub priority: Priority,
    /// When the frame was accepted; latency is measured from here.
    pub arrival: Instant,
    /// When the micro-batch hold on this frame releases: the shard becomes
    /// dispatchable at `min(dispatch_by)` over its queue even without a full
    /// batch. Greedy shards use `arrival` (dispatch immediately).
    pub dispatch_by: Instant,
    /// Completion guard over the slot shared with the caller's
    /// [`crate::FrameHandle`].
    pub slot: CompletionGuard,
    /// HARQ soft-buffer hook, present only for `submit_harq` frames: the
    /// buffer is released on a parity-satisfied decode and parked on every
    /// other outcome (its own drop path parks, so even a frame dropped by a
    /// panicking worker leaves its buffer accounted).
    pub harq: Option<HarqCompletion>,
}

impl PendingFrame {
    /// Resolves the frame's handle with `outcome`, releasing or parking its
    /// HARQ soft buffer first.
    pub(crate) fn complete(mut self, outcome: DecodeOutcome) {
        if let Some(harq) = self.harq.take() {
            let success = matches!(&outcome, DecodeOutcome::Decoded(out) if out.parity_satisfied);
            harq.resolve(success);
        }
        self.slot.complete(outcome);
    }
}

/// Why a push was refused; the frame is handed back either way.
#[derive(Debug)]
pub(crate) enum PushError {
    /// The queue is at capacity (transient — backpressure).
    Full(PendingFrame),
    /// The queue is closed (permanent — the service is shutting down).
    Closed(PendingFrame),
}

/// What the scheduler ranks a shard by, snapshotted under one lock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueView {
    /// Frames currently queued.
    pub len: usize,
    /// Earliest micro-batch release time over the queued frames; `None`
    /// when empty.
    pub earliest_dispatch_by: Option<Instant>,
    /// Earliest arrival time over the queued frames; `None` when empty. The
    /// health watchdog reports this as the oldest-frame age.
    pub oldest_arrival: Option<Instant>,
    /// Whether the queue refuses new frames (service draining).
    pub closed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    frames: VecDeque<PendingFrame>,
    closed: bool,
}

impl Inner {
    /// Inserts keeping priority order: ahead of every strictly
    /// lower-priority frame, behind earlier frames of the same class.
    fn insert(&mut self, frame: PendingFrame) {
        let mut idx = self.frames.len();
        while idx > 0 && self.frames[idx - 1].priority > frame.priority {
            idx -= 1;
        }
        self.frames.insert(idx, frame);
    }
}

/// Bounded multi-producer frame queue, priority-ordered.
#[derive(Debug)]
pub(crate) struct FrameQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl FrameQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        FrameQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("frame queue poisoned")
            .frames
            .len()
    }

    /// Scheduler snapshot; one lock acquisition.
    pub(crate) fn view(&self) -> QueueView {
        let inner = self.inner.lock().expect("frame queue poisoned");
        QueueView {
            len: inner.frames.len(),
            earliest_dispatch_by: inner.frames.iter().map(|f| f.dispatch_by).min(),
            oldest_arrival: inner.frames.iter().map(|f| f.arrival).min(),
            closed: inner.closed,
        }
    }

    /// Non-blocking push; refuses (returning the frame) when full or closed.
    ///
    /// Handing the whole frame back in the `Err` is the refusal contract —
    /// the submitter keeps ownership to retry or fail it — and refusals are
    /// the hot path under a retry storm, so the large variant is not boxed.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, frame: PendingFrame) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(frame));
        }
        if inner.frames.len() >= self.capacity {
            return Err(PushError::Full(frame));
        }
        inner.insert(frame);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: parks until a worker makes room (backpressure) or the
    /// queue closes (the frame is handed back as the error).
    #[allow(clippy::result_large_err)]
    pub(crate) fn push_blocking(&self, frame: PendingFrame) -> Result<(), PendingFrame> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        loop {
            if inner.closed {
                return Err(frame);
            }
            if inner.frames.len() < self.capacity {
                inner.insert(frame);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("frame queue poisoned");
        }
    }

    /// Blocking pop. Returns `None` only when the queue is closed *and*
    /// drained — every accepted frame is handed out first. Used by the
    /// shutdown path to resolve frames a panicked worker left behind.
    pub(crate) fn pop_blocking(&self) -> Option<PendingFrame> {
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        loop {
            if let Some(frame) = inner.frames.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(frame);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("frame queue poisoned");
        }
    }

    /// Non-blocking bulk drain of up to `max` frames into `out` — the
    /// coalescing step after the scheduler claims this shard.
    ///
    /// When `snap` is set and the queue holds at least `group_width` frames,
    /// the take is rounded *down* to a multiple of `group_width` (leaving
    /// the remainder queued for the next dispatch), so micro-batched shards
    /// feed the engine group-aligned batches that waste no frame-major
    /// packing. A closed (draining) queue never snaps: completing accepted
    /// frames beats alignment.
    pub(crate) fn drain_batch(
        &self,
        out: &mut Vec<PendingFrame>,
        max: usize,
        group_width: usize,
        snap: bool,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("frame queue poisoned");
        let mut take = max.min(inner.frames.len());
        if snap && !inner.closed && group_width > 1 && take >= group_width {
            take = (take / group_width) * group_width;
        }
        out.extend(inner.frames.drain(..take));
        drop(inner);
        if take > 0 {
            self.not_full.notify_all();
        }
        take
    }

    /// Refuses all future pushes; queued frames remain drainable. Idempotent.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("frame queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> PendingFrame {
        frame_with_priority(Priority::Normal)
    }

    fn frame_with_priority(priority: Priority) -> PendingFrame {
        let now = Instant::now();
        PendingFrame {
            seq: 0,
            llrs: vec![1.0; 4],
            deadline: None,
            priority,
            arrival: now,
            dispatch_by: now,
            slot: CompletionGuard::new(Arc::new(Slot::default()), Arc::default()),
            harq: None,
        }
    }

    #[test]
    fn try_push_refuses_when_full_and_hands_the_frame_back() {
        let queue = FrameQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(frame()).unwrap();
        queue.try_push(frame()).unwrap();
        let refused = queue.try_push(frame());
        assert!(matches!(refused, Err(PushError::Full(_))));
        if let Err(PushError::Full(f)) = refused {
            assert_eq!(f.llrs.len(), 4, "frame ownership returned intact");
        }
        assert_eq!(queue.len(), 2);
        // Popping makes room again.
        assert!(queue.pop_blocking().is_some());
        queue.try_push(frame()).unwrap();
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued_frames() {
        let queue = FrameQueue::new(4);
        queue.try_push(frame()).unwrap();
        queue.try_push(frame()).unwrap();
        queue.close();
        assert!(matches!(queue.try_push(frame()), Err(PushError::Closed(_))));
        assert!(queue.push_blocking(frame()).is_err());
        assert!(queue.pop_blocking().is_some());
        assert!(queue.pop_blocking().is_some());
        assert!(queue.pop_blocking().is_none(), "closed and drained");
        queue.close(); // idempotent
    }

    #[test]
    fn push_blocking_parks_until_the_consumer_makes_room() {
        let queue = Arc::new(FrameQueue::new(1));
        queue.try_push(frame()).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push_blocking(frame()).is_ok())
        };
        // The producer cannot finish until we pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "blocked on the full queue");
        assert!(queue.pop_blocking().is_some());
        assert!(producer.join().unwrap());
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn pop_blocking_wakes_on_push() {
        let queue = Arc::new(FrameQueue::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop_blocking().is_some())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.try_push(frame()).unwrap();
        assert!(consumer.join().unwrap());
    }

    #[test]
    fn drain_batch_coalesces_without_blocking() {
        let queue = FrameQueue::new(8);
        for _ in 0..5 {
            queue.try_push(frame()).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(queue.drain_batch(&mut batch, 4, 1, false), 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(queue.len(), 1);
        assert_eq!(
            queue.drain_batch(&mut batch, 0, 1, false),
            0,
            "zero max is a no-op"
        );
        assert_eq!(
            queue.drain_batch(&mut batch, 10, 1, false),
            1,
            "capped by contents"
        );
    }

    #[test]
    fn drain_batch_snaps_to_the_group_width_until_the_queue_closes() {
        let queue = FrameQueue::new(16);
        for _ in 0..7 {
            queue.try_push(frame()).unwrap();
        }
        let mut batch = Vec::new();
        // 7 queued, width 3 → snapped take of 6, remainder left queued.
        assert_eq!(queue.drain_batch(&mut batch, 16, 3, true), 6);
        assert_eq!(queue.len(), 1);
        // Below one group width nothing can snap: the tail still dispatches.
        assert_eq!(queue.drain_batch(&mut batch, 16, 3, true), 1);
        // A closed queue drains everything regardless of alignment.
        for _ in 0..5 {
            queue.try_push(frame()).unwrap();
        }
        queue.close();
        assert_eq!(queue.drain_batch(&mut batch, 16, 3, true), 5);
    }

    #[test]
    fn frames_queue_in_priority_order_fifo_within_class() {
        let queue = FrameQueue::new(8);
        let tagged = |p: Priority, tag: f64| {
            let mut f = frame_with_priority(p);
            f.llrs = vec![tag];
            f
        };
        queue.try_push(tagged(Priority::Normal, 1.0)).unwrap();
        queue.try_push(tagged(Priority::Low, 2.0)).unwrap();
        queue.try_push(tagged(Priority::High, 3.0)).unwrap();
        queue.try_push(tagged(Priority::Normal, 4.0)).unwrap();
        queue.try_push(tagged(Priority::High, 5.0)).unwrap();
        let mut batch = Vec::new();
        queue.drain_batch(&mut batch, 8, 1, false);
        let order: Vec<f64> = batch.iter().map(|f| f.llrs[0]).collect();
        assert_eq!(order, vec![3.0, 5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn view_reports_depth_earliest_release_and_closedness() {
        let queue = FrameQueue::new(8);
        let empty = queue.view();
        assert_eq!(empty.len, 0);
        assert!(empty.earliest_dispatch_by.is_none());
        assert!(!empty.closed);

        let now = Instant::now();
        let mut early = frame();
        early.dispatch_by = now;
        let mut late = frame();
        late.dispatch_by = now + std::time::Duration::from_secs(5);
        queue.try_push(late).unwrap();
        queue.try_push(early).unwrap();
        let view = queue.view();
        assert_eq!(view.len, 2);
        assert_eq!(view.earliest_dispatch_by, Some(now));
        // Both frames were stamped after `now`; the view reports the
        // earliest of their arrivals.
        assert!(view
            .oldest_arrival
            .is_some_and(|a| a >= now && a <= Instant::now()));
        queue.close();
        assert!(queue.view().closed);
    }

    #[test]
    fn dropping_an_uncompleted_frame_resolves_its_handle_as_abandoned() {
        use crate::handle::FrameHandle;
        use ldpc_codes::{CodeId, CodeRate, Standard};
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);

        // The panic path: a frame dropped mid-flight (worker unwinding)
        // resolves its waiter as Abandoned instead of hanging it, and the
        // drop is counted against the shard.
        let counters = Arc::new(ShardCounters::default());
        let slot = Arc::new(Slot::default());
        let handle = FrameHandle::new(code, Arc::clone(&slot));
        let mut dropped = frame();
        dropped.slot = CompletionGuard::new(slot, Arc::clone(&counters));
        drop(dropped);
        assert_eq!(handle.wait(), DecodeOutcome::Abandoned);
        assert_eq!(counters.abandoned.load(Ordering::Relaxed), 1);

        // The happy path: explicit completion disarms the drop guard and
        // counts nothing as abandoned.
        let slot = Arc::new(Slot::default());
        let handle = FrameHandle::new(code, Arc::clone(&slot));
        let mut completed = frame();
        completed.slot = CompletionGuard::new(slot, Arc::clone(&counters));
        completed.complete(DecodeOutcome::Expired);
        assert_eq!(handle.wait(), DecodeOutcome::Expired);
        assert_eq!(counters.abandoned.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let queue = FrameQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(frame()).unwrap();
        assert!(matches!(queue.try_push(frame()), Err(PushError::Full(_))));
    }
}
