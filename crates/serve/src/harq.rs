//! The HARQ soft-buffer store: bounded per-user retransmission state.
//!
//! HARQ (hybrid ARQ with incremental redundancy / chase combining) makes the
//! service *stateful*: each `{user, process}` pair may hold a quantized soft
//! buffer — the wide integer accumulation of every transmission received so
//! far (see `ldpc_core::combine::HarqCombiner`) — across retransmissions,
//! until a decode succeeds. At millions-of-users scale that state is the
//! resource that must be defended, so the store enforces a **hard global
//! memory budget** ([`ServiceConfig::harq_buffer_bytes`]):
//!
//! * inserting a new buffer first evicts least-recently-touched entries
//!   until the newcomer fits, so occupancy **never** exceeds the budget, not
//!   even transiently;
//! * an optional TTL ([`ServiceConfig::harq_ttl`]) reaps buffers whose users
//!   went silent, on the next store operation;
//! * a buffer that alone exceeds the budget is served **statelessly**: the
//!   frame still decodes from its own LLRs, nothing is stored, and the skip
//!   is counted.
//!
//! Eviction is deliberately graceful rather than sticky: a retransmission
//! whose buffer was evicted simply restarts accumulation from its own fresh
//! LLRs (counted as an *evicted restart*), decodes normally, and re-parks.
//! No frame is wedged or dropped because its state aged out. Every buffer's
//! end is accounted — released on decode success, evicted (LRU / TTL /
//! chaos-forced), or drained at shutdown — and [`SoftBufferStats::leaked`]
//! pins the audit: inserts minus all accounted exits minus live entries is
//! zero at all times, which the storm soak and the `harq-gate` CI job
//! enforce.
//!
//! [`ServiceConfig::harq_buffer_bytes`]: crate::service::ServiceConfig::harq_buffer_bytes
//! [`ServiceConfig::harq_ttl`]: crate::service::ServiceConfig::harq_ttl

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ldpc_codes::CodeId;
use ldpc_core::HarqCombiner;

use crate::stats::ShardCounters;

/// Identifies one HARQ process: one user's one stop-and-wait lane.
///
/// Retransmissions of the same frame share a key; a user runs up to 256
/// independent processes (the usual HARQ process-ID width). Keys are chosen
/// by the caller — the store treats them as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HarqKey {
    /// Stable user / connection identifier.
    pub user: u64,
    /// HARQ process number within the user (0–255).
    pub process: u8,
}

impl HarqKey {
    /// A key for `user`'s HARQ process `process`.
    #[must_use]
    pub fn new(user: u64, process: u8) -> Self {
        HarqKey { user, process }
    }
}

/// Fixed per-entry bookkeeping charge added to each soft buffer's
/// `4 · n` payload bytes when accounting against the budget (map + LRU
/// index + metadata; a deliberate round constant so budget math is
/// reproducible across platforms).
pub const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Bytes one stored soft buffer of mother-code length `n` charges against
/// [`ServiceConfig::harq_buffer_bytes`](crate::service::ServiceConfig::harq_buffer_bytes).
#[must_use]
pub fn entry_bytes(n: usize) -> usize {
    n * std::mem::size_of::<i32>() + ENTRY_OVERHEAD_BYTES
}

/// Why the store dropped a buffer — every exit path is counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Evict {
    /// Least-recently-touched entry displaced to fit a newcomer in budget.
    Lru,
    /// Entry idled past the configured TTL.
    Ttl,
    /// Chaos harness (`FaultPlan::evict_every`) or a stale entry under a
    /// reused key (different code) forced the drop.
    Forced,
}

/// One stored soft buffer.
struct Entry {
    /// Wide (un-saturated) accumulator, mother-code length.
    acc: Vec<i32>,
    /// Code the buffer belongs to; a key reused for a different code starts
    /// fresh (the stale buffer is force-evicted).
    code: CodeId,
    /// Transmissions accumulated so far.
    rounds: u32,
    /// LRU position (key into `StoreInner::lru`).
    touch_clock: u64,
    /// Last touch time, for TTL reaping.
    touch_at: Instant,
    /// Owning shard's counters, so evictions are attributed to the shard
    /// that inserted the buffer even when a different shard's insert
    /// displaces it.
    counters: Arc<ShardCounters>,
}

struct StoreInner {
    map: HashMap<HarqKey, Entry>,
    /// Touch-ordered index: oldest clock first ⇒ LRU eviction order.
    lru: BTreeMap<u64, HarqKey>,
    /// Budget-accounted occupancy ([`entry_bytes`] per entry).
    bytes: usize,
    clock: u64,
}

/// What a combining pass against the [`SoftBufferStore`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineDisposition {
    /// Transmissions now folded into the emitted LLR codes (1 = fresh).
    pub rounds: u32,
    /// The caller sent a retransmission (`rv > 0`) but no stored buffer
    /// survived — accumulation restarted from this transmission alone.
    pub restarted: bool,
    /// The combined buffer was stored (false only in stateless/oversize
    /// mode).
    pub stored: bool,
}

/// The keyed, budget-bounded soft-buffer store (see the module docs).
///
/// All operations take one short internal lock; counters are atomics and
/// readable lock-free via [`stats`](SoftBufferStore::stats).
pub struct SoftBufferStore {
    inner: Mutex<StoreInner>,
    budget: usize,
    ttl: Option<Duration>,
    /// Monotone combine sequence — the domain of the chaos
    /// `FaultPlan::evict_every` predicate (assigned before the lock, so it
    /// equals submission order under a sequential submitter).
    combine_seq: AtomicU64,
    inserts: AtomicU64,
    releases: AtomicU64,
    evictions_lru: AtomicU64,
    evictions_ttl: AtomicU64,
    evictions_forced: AtomicU64,
    evicted_restarts: AtomicU64,
    drained: AtomicU64,
    combines: AtomicU64,
    oversize: AtomicU64,
    peak_bytes: AtomicU64,
}

impl std::fmt::Debug for SoftBufferStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SoftBufferStore")
            .field("budget_bytes", &self.budget)
            .field("ttl", &self.ttl)
            .field("stats", &stats)
            .finish()
    }
}

impl SoftBufferStore {
    /// A store holding at most `budget_bytes` of soft-buffer state, with
    /// entries idle longer than `ttl` reaped opportunistically. A zero
    /// budget is valid and means *stateless HARQ*: every combine runs from
    /// fresh LLRs and nothing is stored.
    #[must_use]
    pub fn new(budget_bytes: usize, ttl: Option<Duration>) -> Self {
        SoftBufferStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                clock: 0,
            }),
            budget: budget_bytes,
            ttl,
            combine_seq: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            evictions_lru: AtomicU64::new(0),
            evictions_ttl: AtomicU64::new(0),
            evictions_forced: AtomicU64::new(0),
            evicted_restarts: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Hard occupancy ceiling in bytes.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Claims the next combine sequence number (the `FaultPlan::evict_every`
    /// predicate domain).
    pub(crate) fn next_combine_seq(&self) -> u64 {
        self.combine_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Folds one quantized transmission into `key`'s soft buffer and writes
    /// the saturated combined codes (what the decoder should see) into
    /// `out`.
    ///
    /// `force_evict` drops any stored buffer for `key` *before* combining —
    /// the chaos harness's mid-HARQ eviction. A retransmission (`rv > 0`)
    /// that finds no buffer restarts from `incoming` alone and is counted as
    /// an evicted restart. `counters` is the submitting shard's counter
    /// block; evictions are attributed to the shard that stored the evicted
    /// buffer.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn combine_into(
        &self,
        key: HarqKey,
        code: CodeId,
        rv: u8,
        incoming: &[i32],
        combiner: &HarqCombiner,
        force_evict: bool,
        counters: &Arc<ShardCounters>,
        out: &mut Vec<i32>,
    ) -> CombineDisposition {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("soft-buffer store poisoned");
        self.sweep_ttl(&mut inner, now);
        if force_evict && inner.map.contains_key(&key) {
            self.evict(&mut inner, key, Evict::Forced);
        }
        // A key reused for a different code (or frame length) carries a
        // stale buffer — combining across codes would be nonsense, so the
        // old state is force-evicted and accumulation restarts.
        let stale = inner
            .map
            .get(&key)
            .is_some_and(|e| e.code != code || e.acc.len() != incoming.len());
        if stale {
            self.evict(&mut inner, key, Evict::Forced);
        }
        self.combines.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = inner.map.get_mut(&key) {
            combiner.accumulate(&mut entry.acc, incoming);
            entry.rounds += 1;
            let rounds = entry.rounds;
            out.resize(entry.acc.len(), 0);
            combiner.saturate_into(&entry.acc, out);
            self.touch(&mut inner, key, now);
            return CombineDisposition {
                rounds,
                restarted: false,
                stored: true,
            };
        }
        // Fresh start: no buffer survived for this key.
        let restarted = rv > 0;
        if restarted {
            self.evicted_restarts.fetch_add(1, Ordering::Relaxed);
        }
        out.resize(incoming.len(), 0);
        let zero = vec![0i32; incoming.len()];
        combiner.combine_saturated(&zero, incoming, out);
        let cost = entry_bytes(incoming.len());
        if cost > self.budget {
            // Oversize (or zero-budget stateless mode): serve the frame from
            // its own LLRs, store nothing.
            self.oversize.fetch_add(1, Ordering::Relaxed);
            return CombineDisposition {
                rounds: 1,
                restarted,
                stored: false,
            };
        }
        // Evict-before-insert: occupancy stays within budget at every
        // instant, never just "eventually".
        while inner.bytes + cost > self.budget {
            let (_, victim) = inner
                .lru
                .iter()
                .next()
                .map(|(c, k)| (*c, *k))
                .expect("budget accounting out of sync with LRU index");
            self.evict(&mut inner, victim, Evict::Lru);
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.lru.insert(clock, key);
        inner.map.insert(
            key,
            Entry {
                acc: incoming.to_vec(),
                code,
                rounds: 1,
                touch_clock: clock,
                touch_at: now,
                counters: Arc::clone(counters),
            },
        );
        inner.bytes += cost;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.note_peak(inner.bytes);
        CombineDisposition {
            rounds: 1,
            restarted,
            stored: true,
        }
    }

    /// Keeps `key`'s buffer for the next retransmission (decode failed) and
    /// refreshes its TTL/LRU position. No-op if the buffer was evicted while
    /// the frame was in flight.
    pub(crate) fn park(&self, key: HarqKey) {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("soft-buffer store poisoned");
        if inner.map.contains_key(&key) {
            self.touch(&mut inner, key, now);
        }
    }

    /// Frees `key`'s buffer (decode succeeded). Returns whether a buffer was
    /// present.
    pub(crate) fn release(&self, key: HarqKey) -> bool {
        let mut inner = self.inner.lock().expect("soft-buffer store poisoned");
        let Some(entry) = inner.map.remove(&key) else {
            return false;
        };
        inner.lru.remove(&entry.touch_clock);
        inner.bytes -= entry_bytes(entry.acc.len());
        self.releases.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drops every stored buffer (service shutdown). Each is counted as
    /// drained, so a clean shutdown ends with zero occupancy and zero leaks.
    pub(crate) fn drain(&self) {
        let mut inner = self.inner.lock().expect("soft-buffer store poisoned");
        let count = inner.map.len() as u64;
        inner.map.clear();
        inner.lru.clear();
        inner.bytes = 0;
        self.drained.fetch_add(count, Ordering::Relaxed);
    }

    /// Lock-free-readable counter snapshot plus (briefly locked) occupancy.
    #[must_use]
    pub fn stats(&self) -> SoftBufferStats {
        let (entries, occupancy_bytes) = {
            let inner = self.inner.lock().expect("soft-buffer store poisoned");
            (inner.map.len(), inner.bytes)
        };
        SoftBufferStats {
            entries,
            occupancy_bytes,
            peak_occupancy_bytes: self.peak_bytes.load(Ordering::Relaxed) as usize,
            budget_bytes: self.budget,
            inserts: self.inserts.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            evictions_lru: self.evictions_lru.load(Ordering::Relaxed),
            evictions_ttl: self.evictions_ttl.load(Ordering::Relaxed),
            evictions_forced: self.evictions_forced.load(Ordering::Relaxed),
            evicted_restarts: self.evicted_restarts.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            combines: self.combines.load(Ordering::Relaxed),
            oversize: self.oversize.load(Ordering::Relaxed),
        }
    }

    /// Evicts `key` (which must be present), counting under `why` both
    /// store-globally and on the owning shard.
    fn evict(&self, inner: &mut StoreInner, key: HarqKey, why: Evict) {
        let entry = inner.map.remove(&key).expect("evicting absent key");
        inner.lru.remove(&entry.touch_clock);
        inner.bytes -= entry_bytes(entry.acc.len());
        let counter = match why {
            Evict::Lru => &self.evictions_lru,
            Evict::Ttl => &self.evictions_ttl,
            Evict::Forced => &self.evictions_forced,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        entry
            .counters
            .harq_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Reaps entries idle past the TTL. Touch order equals LRU order, so the
    /// sweep stops at the first fresh entry.
    fn sweep_ttl(&self, inner: &mut StoreInner, now: Instant) {
        let Some(ttl) = self.ttl else { return };
        loop {
            let Some((_, key)) = inner.lru.iter().next().map(|(c, k)| (*c, *k)) else {
                return;
            };
            if now.saturating_duration_since(inner.map[&key].touch_at) < ttl {
                return;
            }
            self.evict(inner, key, Evict::Ttl);
        }
    }

    /// Moves `key` to the most-recently-used position and refreshes its TTL
    /// stamp.
    fn touch(&self, inner: &mut StoreInner, key: HarqKey, now: Instant) {
        inner.clock += 1;
        let clock = inner.clock;
        let old = {
            let entry = inner.map.get_mut(&key).expect("touching absent key");
            let old = entry.touch_clock;
            entry.touch_clock = clock;
            entry.touch_at = now;
            old
        };
        inner.lru.remove(&old);
        inner.lru.insert(clock, key);
    }

    fn note_peak(&self, bytes: usize) {
        self.peak_bytes.fetch_max(bytes as u64, Ordering::Relaxed);
    }
}

/// Public snapshot of the soft-buffer store's occupancy and audit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SoftBufferStats {
    /// Buffers currently stored.
    pub entries: usize,
    /// Budget-accounted bytes currently stored ([`entry_bytes`] each).
    pub occupancy_bytes: usize,
    /// High-water occupancy since the store was created — the storm soak's
    /// budget-overshoot check compares this against `budget_bytes`.
    pub peak_occupancy_bytes: usize,
    /// The configured hard ceiling.
    pub budget_bytes: usize,
    /// Buffers ever stored.
    pub inserts: u64,
    /// Buffers freed by a successful decode.
    pub releases: u64,
    /// Buffers displaced by the budget (least recently touched first).
    pub evictions_lru: u64,
    /// Buffers reaped after idling past the TTL.
    pub evictions_ttl: u64,
    /// Buffers dropped by the chaos harness or stale key reuse.
    pub evictions_forced: u64,
    /// Retransmissions that found no buffer and restarted from fresh LLRs.
    pub evicted_restarts: u64,
    /// Buffers dropped by the shutdown drain.
    pub drained: u64,
    /// Combine operations performed (stored or stateless).
    pub combines: u64,
    /// Combines served statelessly because one buffer exceeds the budget
    /// (always the case at budget 0).
    pub oversize: u64,
}

impl SoftBufferStats {
    /// All accounted evictions (LRU + TTL + forced).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions_lru + self.evictions_ttl + self.evictions_forced
    }

    /// The leak audit: inserts minus every accounted exit (releases,
    /// evictions, shutdown drain) minus live entries. Zero at all times in a
    /// correct store; the storm soak and `compare_bench --require-harq` gate
    /// on it.
    #[must_use]
    pub fn leaked(&self) -> i64 {
        self.inserts as i64
            - self.releases as i64
            - self.evictions() as i64
            - self.drained as i64
            - self.entries as i64
    }
}

/// Completion hook carried by a HARQ frame through the scheduler: resolves
/// the stored buffer when the frame's outcome is known — **release** on a
/// parity-satisfied decode, **park** on anything else (failed decode,
/// expiry, shed, poison, abandonment), so a retransmission can continue
/// accumulating. Parking on drop is the fail-safe: a frame that never
/// reaches an explicit outcome still leaves its buffer accounted.
pub(crate) struct HarqCompletion {
    key: HarqKey,
    store: Arc<SoftBufferStore>,
    counters: Arc<ShardCounters>,
    done: bool,
}

impl fmt::Debug for HarqCompletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarqCompletion")
            .field("key", &self.key)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl HarqCompletion {
    pub(crate) fn new(
        key: HarqKey,
        store: Arc<SoftBufferStore>,
        counters: Arc<ShardCounters>,
    ) -> Self {
        HarqCompletion {
            key,
            store,
            counters,
            done: false,
        }
    }

    /// Resolves the buffer: `success` (parity satisfied) releases it,
    /// anything else parks it for the next retransmission.
    pub(crate) fn resolve(mut self, success: bool) {
        self.done = true;
        if success {
            self.store.release(self.key);
            self.counters.harq_released.fetch_add(1, Ordering::Relaxed);
        } else {
            self.store.park(self.key);
            self.counters.harq_parked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for HarqCompletion {
    fn drop(&mut self) {
        if !self.done {
            self.store.park(self.key);
            self.counters.harq_parked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    fn code() -> CodeId {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
    }

    fn counters() -> Arc<ShardCounters> {
        Arc::new(ShardCounters::default())
    }

    fn codes(n: usize, v: i32) -> Vec<i32> {
        vec![v; n]
    }

    fn combine(
        store: &SoftBufferStore,
        key: HarqKey,
        rv: u8,
        incoming: &[i32],
        shard: &Arc<ShardCounters>,
    ) -> (Vec<i32>, CombineDisposition) {
        let combiner = HarqCombiner::new(127);
        let mut out = Vec::new();
        let disposition =
            store.combine_into(key, code(), rv, incoming, &combiner, false, shard, &mut out);
        (out, disposition)
    }

    #[test]
    fn combine_accumulates_then_release_frees() {
        let store = SoftBufferStore::new(1 << 20, None);
        let shard = counters();
        let key = HarqKey::new(7, 0);
        let (out, d) = combine(&store, key, 0, &codes(16, 100), &shard);
        assert!(d.stored && !d.restarted && d.rounds == 1);
        assert_eq!(out, codes(16, 100));
        let (out, d) = combine(&store, key, 1, &codes(16, 60), &shard);
        assert!(!d.restarted && d.rounds == 2);
        assert_eq!(out, codes(16, 127), "160 saturates to 127 on read");
        assert!(store.release(key));
        let stats = store.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.occupancy_bytes, 0);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.combines, 2);
        assert_eq!(stats.leaked(), 0);
    }

    #[test]
    fn budget_is_a_hard_ceiling_with_lru_eviction() {
        let n = 64;
        let budget = 3 * entry_bytes(n);
        let store = SoftBufferStore::new(budget, None);
        let shard = counters();
        for user in 0..10u64 {
            combine(&store, HarqKey::new(user, 0), 0, &codes(n, 5), &shard);
            assert!(store.stats().occupancy_bytes <= budget);
        }
        // Touch user 7 so user 8 is the LRU victim of the next insert.
        store.park(HarqKey::new(7, 0));
        combine(&store, HarqKey::new(99, 0), 0, &codes(n, 5), &shard);
        let stats = store.stats();
        assert_eq!(stats.entries, 3);
        assert!(stats.peak_occupancy_bytes <= budget);
        assert_eq!(stats.evictions_lru, 8);
        assert_eq!(
            shard.harq_evictions.load(Ordering::Relaxed),
            8,
            "evictions attributed to the owning shard"
        );
        // The touched entry survived, the untouched one did not.
        let (_, d) = combine(&store, HarqKey::new(7, 0), 1, &codes(n, 5), &shard);
        assert!(!d.restarted, "recently-touched buffer must survive");
        let (_, d) = combine(&store, HarqKey::new(8, 0), 1, &codes(n, 5), &shard);
        assert!(d.restarted, "LRU victim restarts from fresh LLRs");
        assert_eq!(store.stats().leaked(), 0);
    }

    #[test]
    fn evicted_retransmission_restarts_and_is_counted() {
        let store = SoftBufferStore::new(1 << 20, None);
        let shard = counters();
        let key = HarqKey::new(1, 3);
        let (out, d) = combine(&store, key, 2, &codes(8, 40), &shard);
        assert!(d.restarted && d.rounds == 1);
        assert_eq!(out, codes(8, 40), "restart decodes from fresh LLRs");
        assert_eq!(store.stats().evicted_restarts, 1);
    }

    #[test]
    fn forced_eviction_mid_combine_restarts_cleanly() {
        let store = SoftBufferStore::new(1 << 20, None);
        let shard = counters();
        let combiner = HarqCombiner::new(127);
        let key = HarqKey::new(5, 1);
        combine(&store, key, 0, &codes(8, 100), &shard);
        let mut out = Vec::new();
        let d = store.combine_into(
            key,
            code(),
            1,
            &codes(8, 30),
            &combiner,
            true,
            &shard,
            &mut out,
        );
        assert!(d.restarted, "forced eviction discards the stored buffer");
        assert_eq!(out, codes(8, 30));
        let stats = store.stats();
        assert_eq!(stats.evictions_forced, 1);
        assert_eq!(stats.evicted_restarts, 1);
        assert_eq!(stats.leaked(), 0);
    }

    #[test]
    fn oversize_buffers_serve_statelessly() {
        let n = 64;
        let store = SoftBufferStore::new(entry_bytes(n) - 1, None);
        let shard = counters();
        let key = HarqKey::new(2, 0);
        let (out, d) = combine(&store, key, 0, &codes(n, 9), &shard);
        assert!(!d.stored);
        assert_eq!(out, codes(n, 9));
        let stats = store.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.oversize, 1);
        assert_eq!(stats.leaked(), 0);
    }

    #[test]
    fn zero_budget_is_stateless_mode() {
        let store = SoftBufferStore::new(0, None);
        let shard = counters();
        for rv in 0..3u8 {
            let (_, d) = combine(&store, HarqKey::new(1, 0), rv, &codes(8, 3), &shard);
            assert!(!d.stored);
            assert_eq!(d.rounds, 1);
        }
        assert_eq!(store.stats().oversize, 3);
        assert_eq!(store.stats().leaked(), 0);
    }

    #[test]
    fn ttl_reaps_idle_buffers() {
        let store = SoftBufferStore::new(1 << 20, Some(Duration::from_millis(5)));
        let shard = counters();
        combine(&store, HarqKey::new(1, 0), 0, &codes(8, 4), &shard);
        std::thread::sleep(Duration::from_millis(10));
        // Any store operation sweeps; combining a different key suffices.
        combine(&store, HarqKey::new(2, 0), 0, &codes(8, 4), &shard);
        let stats = store.stats();
        assert_eq!(stats.evictions_ttl, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.leaked(), 0);
    }

    #[test]
    fn stale_key_reuse_across_codes_restarts() {
        let store = SoftBufferStore::new(1 << 20, None);
        let shard = counters();
        let key = HarqKey::new(3, 0);
        combine(&store, key, 0, &codes(8, 50), &shard);
        let other = CodeId::new(Standard::Wifi80211n, CodeRate::R1_2, 648);
        let combiner = HarqCombiner::new(127);
        let mut out = Vec::new();
        let d = store.combine_into(
            key,
            other,
            0,
            &codes(12, 7),
            &combiner,
            false,
            &shard,
            &mut out,
        );
        assert!(d.stored && d.rounds == 1);
        assert_eq!(out, codes(12, 7));
        assert_eq!(store.stats().evictions_forced, 1);
        assert_eq!(store.stats().leaked(), 0);
    }

    #[test]
    fn drain_accounts_every_survivor() {
        let store = SoftBufferStore::new(1 << 20, None);
        let shard = counters();
        for user in 0..5u64 {
            combine(&store, HarqKey::new(user, 0), 0, &codes(8, 2), &shard);
        }
        store.release(HarqKey::new(0, 0));
        store.drain();
        let stats = store.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.occupancy_bytes, 0);
        assert_eq!(stats.drained, 4);
        assert_eq!(stats.leaked(), 0);
    }

    #[test]
    fn completion_resolves_release_park_and_drop() {
        let store = Arc::new(SoftBufferStore::new(1 << 20, None));
        let shard = counters();
        for (user, success, via_drop) in [(1u64, true, false), (2, false, false), (3, false, true)]
        {
            let key = HarqKey::new(user, 0);
            combine(&store, key, 0, &codes(8, 9), &shard);
            let completion = HarqCompletion::new(key, Arc::clone(&store), Arc::clone(&shard));
            if via_drop {
                drop(completion);
            } else {
                completion.resolve(success);
            }
        }
        let stats = store.stats();
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.entries, 2, "parked buffers stay for retransmission");
        assert_eq!(shard.harq_released.load(Ordering::Relaxed), 1);
        assert_eq!(shard.harq_parked.load(Ordering::Relaxed), 2);
        assert_eq!(stats.leaked(), 0);
    }
}
