//! # ldpc-serve — the multi-code sharded decode service
//!
//! The paper's decoder is multi-mode by construction: one hardware fabric
//! serves every WiMax/WiFi/DMB-T code mode by switching a compiled mode ROM
//! while frames stream through the `z`-wide SISO array. This crate is the
//! serving-layer analogue of that fabric, built on the batched zero-alloc
//! engine of `ldpc-core`:
//!
//! ```text
//!                        ┌──────────────── DecodeService ────────────────┐
//!  submit(code, llrs) ──▶│ route by CodeId                               │
//!                        │   ├─▶ shard[WiMax 576]  queue ▷▷▷ worker ──┐  │
//!                        │   ├─▶ shard[WiFi 648]   queue ▷▷▷ worker ──┤  │
//!                        │   └─▶ shard[WiMax 1152] queue ▷▷▷ worker ──┤  │
//!                        │        (bounded MPSC)    coalesce into      │  │
//!                        │                          decode_batch ◀─────┘  │
//!                        │                          workspaces from the   │
//!                        │                          shared WorkspacePool  │
//!                        └───────────────────────────────────────────────┘
//!                                        │
//!  FrameHandle::wait() ◀── DecodeOutcome ┘  (Decoded / Expired / Failed)
//! ```
//!
//! * **Sharding** — one shard per registered [`ldpc_codes::CodeId`]: an
//!   `Arc<CompiledCode>` (the software mode ROM), a bounded ingest queue and
//!   one worker thread. Frames route by mode at submission.
//! * **Batch coalescing** — each worker drains whatever is queued (up to
//!   [`ServiceConfig::max_batch`]) into a single flat LLR buffer and decodes
//!   it with one `decode_batch` call, so bursts amortise engine overhead
//!   exactly like the paper's frame pipeline keeps the SISO array busy.
//! * **Backpressure** — the queue bound is the service's limit: `try_submit`
//!   refuses with the frame handed back, `submit` parks the producer.
//! * **Deadlines** — a frame whose deadline passes while queued completes as
//!   [`DecodeOutcome::Expired`] without spending decoder time.
//! * **Drain guarantee** — [`DecodeService::shutdown`] (and plain drop)
//!   closes intake, lets workers finish every accepted frame, and joins
//!   them: a successful submission always resolves.
//! * **Zero steady-state decoder allocation** — workers draw their
//!   workspaces from the decoder's shared
//!   [`ldpc_core::WorkspacePool`]; once every shard is warm,
//!   [`DecodeService::pool_workspaces_created`] stops growing.
//!
//! Results are **bit-identical** to calling `decode_batch` directly on the
//! same frames, whatever the submission interleaving — decoding is
//! per-frame deterministic and shards are independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod handle;
mod queue;
mod service;
mod stats;

pub use error::{ServeError, SubmitError};
pub use handle::{DecodeOutcome, FrameHandle};
pub use service::{CascadePolicy, DecodeService, DecodeServiceBuilder, ServiceConfig};
pub use stats::ShardStats;
