//! # ldpc-serve — the SLO-driven multi-code decode service
//!
//! The paper's decoder is multi-mode by construction: one hardware fabric
//! serves every WiMax/WiFi/DMB-T code mode by switching a compiled mode ROM
//! while frames stream through the `z`-wide SISO array. This crate is the
//! serving-layer analogue of that fabric, built on the batched zero-alloc
//! engine of `ldpc-core`:
//!
//! ```text
//!                           ┌───────────────── DecodeService ─────────────────┐
//!  submit(code, llrs, opts)─▶ route by CodeId                                 │
//!                           │   ├─▶ shard[WiMax 576]  queue + ShardPolicy ◀─┐ │
//!                           │   ├─▶ shard[WiFi 648]   queue + ShardPolicy ◀─┤ │
//!                           │   └─▶ shard[WiMax 1152] queue + ShardPolicy ◀─┤ │
//!                           │        (bounded, priority-ordered)            │ │
//!                           │                                     scheduler │ │
//!                           │   dispatch workers ◀── claim ready shard ─────┘ │
//!                           │     coalesce ▷ decode_batch ▷ complete frames   │
//!                           │     (workspaces from the shared WorkspacePool)  │
//!                           └─────────────────────────────────────────────────┘
//!                                          │
//!  FrameHandle::wait() ◀─── DecodeOutcome ─┘  (Decoded / Expired / Shed / Failed /
//!                                              Poisoned / Abandoned)
//! ```
//!
//! * **Sharding** — one shard per registered [`ldpc_codes::CodeId`]: an
//!   `Arc<CompiledCode>` (the software mode ROM), a bounded ingest queue and
//!   a [`ShardPolicy`]. Frames route by mode at submission; a pool of
//!   dispatch workers claims whichever shard is *ready* next (at most one
//!   worker per shard at a time, so per-mode results stay deterministic).
//! * **SLO scheduling** — [`ShardPolicy`] gives each mode a latency SLO
//!   target and a [`Priority`] class. A shard with an SLO micro-batches: it
//!   holds frames to coalesce bigger batches and dispatches at
//!   [`ServiceConfig::max_batch`] *or* deadline slack, whichever comes
//!   first, with batch sizes snapped to the mode's preferred group width.
//!   Greedy shards (the [`ShardPolicy::greedy`] default) dispatch as soon
//!   as a worker is free, exactly like the pre-policy service.
//! * **Admission control** — when [`ShardPolicy::shed`] is on, frames whose
//!   deadline cannot be met (based on queue depth × the shard's observed
//!   per-frame decode cost) resolve as [`DecodeOutcome::Shed`] instead of
//!   being decoded late; shed frames are counted in
//!   [`ShardStats::shed`], never silently dropped.
//! * **Backpressure** — the queue bound is the service's limit: a
//!   non-blocking [`SubmitOptions`] refuses with the frame handed back, a
//!   blocking submission parks the producer.
//! * **Deadlines** — a frame whose deadline passes while queued completes as
//!   [`DecodeOutcome::Expired`] without spending decoder time.
//! * **Latency accounting** — every decoded frame's queue-to-completion
//!   latency lands in a lock-free histogram; [`ShardStats::latency`] reports
//!   p50/p99/p999/max per mode for SLO verification.
//! * **Drain guarantee** — [`DecodeService::shutdown`] (and plain drop)
//!   closes intake, lets workers finish every accepted frame, and joins
//!   them: a successful submission always resolves.
//! * **Fault tolerance** — dispatch workers run under a supervisor that
//!   restarts them after a panic; a batch whose decode panics is
//!   bisect-retried until the offending frame is isolated as
//!   [`DecodeOutcome::Poisoned`] while its batch-mates decode normally;
//!   [`DecodeService::health`] reports per-shard progress (queue depth,
//!   oldest-frame age, stall detection) plus the decode pool's worker
//!   census; and a [`DegradationPolicy`] trades cascade effort for
//!   throughput under pressure before any frame is shed.
//! * **HARQ retransmissions** — [`DecodeService::submit_harq`] soft-combines
//!   rate-compatible retransmissions (full codewords or punctured
//!   redundancy versions) into a bounded, LRU/TTL-evicting
//!   [`harq::SoftBufferStore`] keyed by [`HarqKey`]; failed decodes park
//!   the combined energy for the next attempt, successes release it, and
//!   evicted processes restart cleanly from fresh LLRs — counted, never
//!   wedged. [`ServiceHealth::harq`] reports the store's ledger.
//! * **Zero steady-state decoder allocation** — workers draw their
//!   workspaces from the decoder's shared
//!   [`ldpc_core::WorkspacePool`]; once every shard is warm,
//!   [`DecodeService::pool_workspaces_created`] stops growing.
//!
//! Results are **bit-identical** to calling `decode_batch` directly on the
//! same frames, whatever the submission interleaving or scheduling policy —
//! decoding is per-frame deterministic and shards are independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod handle;
pub mod harq;
mod policy;
mod queue;
mod service;
mod stats;

pub use error::{ServeError, SubmitError};
#[cfg(feature = "fault-injection")]
pub use fault::FaultPlan;
pub use handle::{DecodeOutcome, FrameHandle};
pub use harq::{HarqKey, SoftBufferStats, SoftBufferStore};
pub use policy::{
    DecoderPolicy, DegradationPolicy, Priority, RetryPolicy, ShardPolicy, SubmitOptions,
};
pub use service::{CascadePolicy, DecodeService, DecodeServiceBuilder, ServiceConfig};
pub use stats::{LatencyStats, ServiceHealth, ShardHealth, ShardStats};
