//! Serving policies: the per-mode [`ShardPolicy`], the per-frame
//! [`SubmitOptions`], and the [`DecoderPolicy`] trait behind the uniform
//! [`DecodeService::builder`](crate::DecodeService::builder) path.
//!
//! A [`ShardPolicy`] describes *how a mode wants to be served* — its latency
//! SLO, its priority class against other modes, how long the dispatcher may
//! hold frames to grow a batch, and whether frames that can no longer meet
//! their deadline should be shed up front instead of decoded late. The
//! default policy reproduces the greedy pre-policy behaviour exactly:
//! dispatch as soon as a worker is free, coalesce whatever is queued, never
//! shed.
//!
//! A [`DecoderPolicy`] describes *what decodes*: anything that can stamp out
//! the decoder instance a service template-clones into its shards. Every
//! provided decoder is its own policy (so `DecodeService::builder(decoder)`
//! keeps working verbatim), and [`CascadePolicy`](crate::CascadePolicy) is
//! just one more implementation — not a special-cased constructor.

use std::time::{Duration, Instant};

use ldpc_core::arith::DecoderArithmetic;
use ldpc_core::cascade::CascadeDecoder;
use ldpc_core::decoder::LayeredDecoder;
use ldpc_core::flooding::FloodingDecoder;
use ldpc_core::Decoder;

use crate::service::CascadePolicy;

/// Dispatch priority class of a shard or frame. Ordered by urgency:
/// [`Priority::High`] sorts (and is served) first.
///
/// Priorities compose at two levels. A shard's [`ShardPolicy::priority`]
/// decides which mode a free dispatch worker serves when several shards are
/// ready at once; a frame's [`SubmitOptions::priority`] reorders that frame
/// within its shard's queue (ahead of every lower class, behind earlier
/// frames of its own class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served before every other class.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when no higher class is ready.
    Low,
}

/// Per-mode serving policy: how one shard batches, prioritises and sheds.
///
/// Registered per mode through
/// [`DecodeServiceBuilder::register_with_policy`](crate::DecodeServiceBuilder::register_with_policy);
/// plain `register` uses [`ShardPolicy::default`], which is today's greedy
/// behaviour (dispatch immediately, never hold, never shed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardPolicy {
    /// Target completion latency for this mode's frames. When set, frames
    /// submitted without an explicit deadline get `arrival + slo` as their
    /// effective deadline, and the micro-batch hold timer defaults to half
    /// the SLO (see [`ShardPolicy::max_hold`]).
    pub slo: Option<Duration>,
    /// The shard's dispatch class against other shards; see [`Priority`].
    pub priority: Priority,
    /// Longest time the dispatcher may hold this shard's frames waiting for
    /// a fuller batch. A frame becomes dispatchable at
    /// `arrival + min(max_hold, deadline_slack)` — or immediately once the
    /// shard has a full batch queued. `None` defaults to `slo / 2` when an
    /// SLO is set, or zero (greedy dispatch) otherwise.
    pub max_hold: Option<Duration>,
    /// Queue-depth-based admission control: when `true`, a frame whose
    /// effective deadline cannot be met — at admission, given the queue
    /// ahead of it, or at dispatch, given the batch being formed — resolves
    /// as [`DecodeOutcome::Shed`](crate::DecodeOutcome::Shed) instead of
    /// being decoded late. Requires an observed (or seeded) decode-cost
    /// estimate; a shard that has never decoded sheds nothing.
    pub shed: bool,
    /// Seed for the shard's per-frame decode-cost estimate, which the
    /// dispatcher otherwise learns as an EWMA of observed batch times. Set
    /// it to make shedding decisions deterministic from the first frame
    /// (tests, or deployments with known mode costs).
    pub expected_frame_cost: Option<Duration>,
    /// Graceful-degradation ladder: under sustained queue pressure the
    /// dispatcher first cheapens the shard decoder's cascade effort
    /// (level by level, up to [`DegradationPolicy::max_level`]) and only
    /// sheds frames once the ladder is exhausted. `None` (the default)
    /// keeps the PR-8 behaviour: shed as soon as a deadline is unmeetable.
    pub degradation: Option<DegradationPolicy>,
}

impl ShardPolicy {
    /// The greedy default policy: dispatch as soon as a worker is free,
    /// never hold, never shed. Identical to what plain
    /// [`register`](crate::DecodeServiceBuilder::register) applies.
    #[must_use]
    pub fn greedy() -> Self {
        ShardPolicy::default()
    }

    /// An SLO-driven policy: frames target completion within `slo` of
    /// arrival, the micro-batch timer holds up to `slo / 2`, and frames that
    /// can no longer make the target are shed instead of decoded late.
    #[must_use]
    pub fn with_slo(slo: Duration) -> Self {
        ShardPolicy {
            slo: Some(slo),
            shed: true,
            ..ShardPolicy::default()
        }
    }

    /// Sets the shard's dispatch [`Priority`].
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the micro-batch hold ceiling; see [`ShardPolicy::max_hold`].
    #[must_use]
    pub fn max_hold(mut self, max_hold: Duration) -> Self {
        self.max_hold = Some(max_hold);
        self
    }

    /// Enables or disables load shedding; see [`ShardPolicy::shed`].
    #[must_use]
    pub fn shed(mut self, shed: bool) -> Self {
        self.shed = shed;
        self
    }

    /// Seeds the decode-cost estimate; see
    /// [`ShardPolicy::expected_frame_cost`].
    #[must_use]
    pub fn expected_frame_cost(mut self, cost: Duration) -> Self {
        self.expected_frame_cost = Some(cost);
        self
    }

    /// Enables the graceful-degradation ladder; see
    /// [`ShardPolicy::degradation`].
    #[must_use]
    pub fn degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = Some(degradation);
        self
    }

    /// The effective micro-batch hold ceiling.
    pub(crate) fn hold_limit(&self) -> Duration {
        self.max_hold.unwrap_or_else(|| {
            self.slo
                .map_or(Duration::ZERO, |slo| slo.checked_div(2).unwrap_or(slo))
        })
    }

    /// Whether this shard micro-batches (holds frames) at all; greedy shards
    /// keep the pre-policy take-everything drain behaviour, including ragged
    /// batch tails.
    pub(crate) fn micro_batching(&self) -> bool {
        !self.hold_limit().is_zero()
    }
}

/// Graceful-degradation ladder: trade coding effort for throughput *before*
/// dropping frames.
///
/// The dispatcher watches the shard's queue fill (depth ÷ capacity, in
/// percent) at every dispatch. At or above
/// [`high_watermark_pct`](DegradationPolicy::high_watermark_pct) it steps
/// the shard's degradation level up (cheapening the decoder's cascade via
/// [`Decoder::set_effort_level`]); at or below
/// [`low_watermark_pct`](DegradationPolicy::low_watermark_pct) it steps back
/// down toward full effort. While the ladder still has rungs left
/// (level < [`max_level`](DegradationPolicy::max_level)), admission-control
/// shedding is suppressed — a degraded decode beats a dropped frame; only a
/// fully degraded shard falls back to shedding.
///
/// The watermarks are integer percents (hysteresis gap between them prevents
/// level flapping). For the built-in cascade decoder the rungs are:
/// level 1 drops the float-BP rescue stage, level 2 additionally halves the
/// fixed-BP stage's iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Queue fill (percent of capacity) at which the level steps up.
    pub high_watermark_pct: u8,
    /// Queue fill (percent of capacity) at or below which the level steps
    /// back down. Must be below the high watermark for hysteresis.
    pub low_watermark_pct: u8,
    /// Deepest degradation level the dispatcher may request. The built-in
    /// cascade understands levels 1 and 2; higher values are clamped by the
    /// decoder itself.
    pub max_level: u8,
}

impl Default for DegradationPolicy {
    /// Step down effort at 60% queue fill, recover below 20%, two rungs.
    fn default() -> Self {
        DegradationPolicy {
            high_watermark_pct: 60,
            low_watermark_pct: 20,
            max_level: 2,
        }
    }
}

/// Backoff schedule for
/// [`DecodeService::submit_with_retry`](crate::DecodeService::submit_with_retry):
/// bounded, jittered exponential backoff around transient
/// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (the first try counts; 1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (each sleep is scaled into
    /// [50%, 100%] of its nominal value so colliding submitters spread out).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Eight attempts, 200 µs initial backoff, 20 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (0-based), already
    /// exponentiated and capped. Deterministic in (`seed`, `attempt`).
    pub(crate) fn backoff(&self, attempt: u32) -> Duration {
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        // Scale into [50%, 100%] using splitmix64 as the jitter source.
        let jitter = splitmix64(self.seed ^ u64::from(attempt));
        nominal / 2 + nominal.mul_f64(0.5 * (jitter as f64 / u64::MAX as f64))
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix. The serving layer
/// uses it wherever it needs deterministic pseudo-randomness without a
/// stateful RNG — retry jitter here, fault-plan frame selection in the chaos
/// harness (`splitmix64(seed ^ seq)` gives every sequence number an
/// independent uniform draw).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-frame submission options for
/// [`DecodeService::submit`](crate::DecodeService::submit) — the one entry
/// point subsuming the old `submit` / `submit_with_deadline` / `try_submit` /
/// `try_submit_with_deadline` matrix.
///
/// `submit` takes `impl Into<SubmitOptions>`, so the common cases stay terse:
///
/// * `()` — blocking, no deadline (the old `submit`);
/// * an [`Instant`] — blocking with that deadline (the old
///   `submit_with_deadline`);
/// * a [`Priority`] — blocking, no deadline, in that class;
/// * a full `SubmitOptions` for everything else, e.g.
///   `SubmitOptions::new().deadline(t).non_blocking()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Completion deadline. A frame still queued past it completes as
    /// [`DecodeOutcome::Expired`](crate::DecodeOutcome::Expired); with
    /// [`ShardPolicy::shed`] it may resolve as
    /// [`DecodeOutcome::Shed`](crate::DecodeOutcome::Shed) earlier. `None`
    /// falls back to the shard's SLO (when set) as an implicit
    /// `arrival + slo` deadline.
    pub deadline: Option<Instant>,
    /// Whether a full shard queue parks the caller (`true`, the default) or
    /// refuses with
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) handing the
    /// frame back (`false`, the old `try_submit`).
    pub blocking: bool,
    /// The frame's [`Priority`] within its shard queue.
    pub priority: Priority,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            deadline: None,
            blocking: true,
            priority: Priority::Normal,
        }
    }
}

impl SubmitOptions {
    /// Blocking submission, no deadline, normal priority — the defaults.
    #[must_use]
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Sets the completion deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Makes the submission non-blocking: a full queue refuses the frame
    /// instead of parking the caller.
    #[must_use]
    pub fn non_blocking(mut self) -> Self {
        self.blocking = false;
        self
    }

    /// Sets the frame's [`Priority`].
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl From<()> for SubmitOptions {
    fn from((): ()) -> Self {
        SubmitOptions::default()
    }
}

impl From<Instant> for SubmitOptions {
    fn from(deadline: Instant) -> Self {
        SubmitOptions::default().deadline(deadline)
    }
}

impl From<Priority> for SubmitOptions {
    fn from(priority: Priority) -> Self {
        SubmitOptions::default().priority(priority)
    }
}

/// What decodes in a service's shards: a factory for the decoder instance
/// the service template-clones (via
/// [`Decoder::detached_clone`]) into every shard.
///
/// This is the uniform parameter of
/// [`DecodeService::builder`](crate::DecodeService::builder). Every provided
/// decoder ([`LayeredDecoder`], [`FloodingDecoder`], [`CascadeDecoder`])
/// implements it as its own factory — `builder(decoder)` call sites from the
/// pre-policy API compile unchanged — and
/// [`CascadePolicy`](crate::CascadePolicy) implements it by building the
/// cascade it describes, replacing the old `cascade_builder` special case.
pub trait DecoderPolicy {
    /// The decoder type this policy builds.
    type Decoder: Decoder + Clone + Send + Sync + 'static;

    /// Builds the service's template decoder instance.
    fn build_decoder(&self) -> Self::Decoder;

    /// Human-readable label of what decodes (for reports and harnesses),
    /// e.g. `"layered/float-bp"` or `"cascade"`.
    fn label(&self) -> String;
}

impl<A: DecoderArithmetic> DecoderPolicy for LayeredDecoder<A>
where
    LayeredDecoder<A>: Decoder + Clone + Send + Sync + 'static,
{
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.schedule_name(), self.arithmetic().name())
    }
}

impl<A: DecoderArithmetic> DecoderPolicy for FloodingDecoder<A>
where
    FloodingDecoder<A>: Decoder + Clone + Send + Sync + 'static,
{
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.schedule_name(), self.arithmetic().name())
    }
}

impl DecoderPolicy for CascadeDecoder {
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        "cascade".to_string()
    }
}

impl DecoderPolicy for CascadePolicy {
    type Decoder = CascadeDecoder;

    fn build_decoder(&self) -> CascadeDecoder {
        self.decoder()
    }

    fn label(&self) -> String {
        "cascade".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::{DecoderConfig, FloatBpArithmetic};

    #[test]
    fn priority_orders_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn default_policy_is_greedy() {
        let p = ShardPolicy::default();
        assert_eq!(p, ShardPolicy::greedy());
        assert_eq!(p.hold_limit(), Duration::ZERO);
        assert!(!p.micro_batching());
        assert!(!p.shed);
    }

    #[test]
    fn slo_policy_holds_half_the_slo_and_sheds() {
        let p = ShardPolicy::with_slo(Duration::from_millis(10));
        assert_eq!(p.hold_limit(), Duration::from_millis(5));
        assert!(p.micro_batching());
        assert!(p.shed);
        let capped = p.max_hold(Duration::from_millis(2));
        assert_eq!(capped.hold_limit(), Duration::from_millis(2));
    }

    #[test]
    fn submit_options_conversions_cover_the_old_matrix() {
        let plain: SubmitOptions = ().into();
        assert_eq!(plain, SubmitOptions::new());
        assert!(plain.blocking);
        assert!(plain.deadline.is_none());

        let t = Instant::now();
        let deadlined: SubmitOptions = t.into();
        assert_eq!(deadlined.deadline, Some(t));
        assert!(deadlined.blocking);

        let urgent: SubmitOptions = Priority::High.into();
        assert_eq!(urgent.priority, Priority::High);

        let full = SubmitOptions::new().deadline(t).non_blocking();
        assert!(!full.blocking);
        assert_eq!(full.deadline, Some(t));
    }

    #[test]
    fn degradation_policy_defaults_keep_hysteresis() {
        let d = DegradationPolicy::default();
        assert!(d.low_watermark_pct < d.high_watermark_pct);
        assert!(d.max_level >= 1);
        let p = ShardPolicy::with_slo(Duration::from_millis(10)).degradation(d);
        assert_eq!(p.degradation, Some(d));
        assert_eq!(ShardPolicy::default().degradation, None);
    }

    #[test]
    fn retry_backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy::default();
        let first = policy.backoff(0);
        // Jitter keeps every sleep within [50%, 100%] of nominal.
        assert!(first >= policy.base_backoff / 2 && first <= policy.base_backoff);
        assert!(policy.backoff(3) > policy.backoff(0) / 2 * 4);
        assert!(policy.backoff(40) <= policy.max_backoff, "capped");
        assert_eq!(policy.backoff(2), policy.backoff(2), "deterministic");
        let reseeded = RetryPolicy {
            seed: 1234,
            ..policy
        };
        assert_ne!(reseeded.backoff(2), policy.backoff(2), "seed moves jitter");
    }

    #[test]
    fn splitmix_spreads_consecutive_inputs() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff, "low bits differ too");
    }

    #[test]
    fn decoder_policies_label_and_build() {
        let layered =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert!(DecoderPolicy::label(&layered).starts_with("layered/"));
        let _ = layered.build_decoder();

        let policy = CascadePolicy::default();
        assert_eq!(DecoderPolicy::label(&policy), "cascade");
        let cascade = policy.build_decoder();
        assert_eq!(DecoderPolicy::label(&cascade), "cascade");
    }
}
