//! Serving policies: the per-mode [`ShardPolicy`], the per-frame
//! [`SubmitOptions`], and the [`DecoderPolicy`] trait behind the uniform
//! [`DecodeService::builder`](crate::DecodeService::builder) path.
//!
//! A [`ShardPolicy`] describes *how a mode wants to be served* — its latency
//! SLO, its priority class against other modes, how long the dispatcher may
//! hold frames to grow a batch, and whether frames that can no longer meet
//! their deadline should be shed up front instead of decoded late. The
//! default policy reproduces the greedy pre-policy behaviour exactly:
//! dispatch as soon as a worker is free, coalesce whatever is queued, never
//! shed.
//!
//! A [`DecoderPolicy`] describes *what decodes*: anything that can stamp out
//! the decoder instance a service template-clones into its shards. Every
//! provided decoder is its own policy (so `DecodeService::builder(decoder)`
//! keeps working verbatim), and [`CascadePolicy`](crate::CascadePolicy) is
//! just one more implementation — not a special-cased constructor.

use std::time::{Duration, Instant};

use ldpc_core::arith::DecoderArithmetic;
use ldpc_core::cascade::CascadeDecoder;
use ldpc_core::decoder::LayeredDecoder;
use ldpc_core::flooding::FloodingDecoder;
use ldpc_core::Decoder;

use crate::service::CascadePolicy;

/// Dispatch priority class of a shard or frame. Ordered by urgency:
/// [`Priority::High`] sorts (and is served) first.
///
/// Priorities compose at two levels. A shard's [`ShardPolicy::priority`]
/// decides which mode a free dispatch worker serves when several shards are
/// ready at once; a frame's [`SubmitOptions::priority`] reorders that frame
/// within its shard's queue (ahead of every lower class, behind earlier
/// frames of its own class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served before every other class.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when no higher class is ready.
    Low,
}

/// Per-mode serving policy: how one shard batches, prioritises and sheds.
///
/// Registered per mode through
/// [`DecodeServiceBuilder::register_with_policy`](crate::DecodeServiceBuilder::register_with_policy);
/// plain `register` uses [`ShardPolicy::default`], which is today's greedy
/// behaviour (dispatch immediately, never hold, never shed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardPolicy {
    /// Target completion latency for this mode's frames. When set, frames
    /// submitted without an explicit deadline get `arrival + slo` as their
    /// effective deadline, and the micro-batch hold timer defaults to half
    /// the SLO (see [`ShardPolicy::max_hold`]).
    pub slo: Option<Duration>,
    /// The shard's dispatch class against other shards; see [`Priority`].
    pub priority: Priority,
    /// Longest time the dispatcher may hold this shard's frames waiting for
    /// a fuller batch. A frame becomes dispatchable at
    /// `arrival + min(max_hold, deadline_slack)` — or immediately once the
    /// shard has a full batch queued. `None` defaults to `slo / 2` when an
    /// SLO is set, or zero (greedy dispatch) otherwise.
    pub max_hold: Option<Duration>,
    /// Queue-depth-based admission control: when `true`, a frame whose
    /// effective deadline cannot be met — at admission, given the queue
    /// ahead of it, or at dispatch, given the batch being formed — resolves
    /// as [`DecodeOutcome::Shed`](crate::DecodeOutcome::Shed) instead of
    /// being decoded late. Requires an observed (or seeded) decode-cost
    /// estimate; a shard that has never decoded sheds nothing.
    pub shed: bool,
    /// Seed for the shard's per-frame decode-cost estimate, which the
    /// dispatcher otherwise learns as an EWMA of observed batch times. Set
    /// it to make shedding decisions deterministic from the first frame
    /// (tests, or deployments with known mode costs).
    pub expected_frame_cost: Option<Duration>,
}

impl ShardPolicy {
    /// The greedy default policy: dispatch as soon as a worker is free,
    /// never hold, never shed. Identical to what plain
    /// [`register`](crate::DecodeServiceBuilder::register) applies.
    #[must_use]
    pub fn greedy() -> Self {
        ShardPolicy::default()
    }

    /// An SLO-driven policy: frames target completion within `slo` of
    /// arrival, the micro-batch timer holds up to `slo / 2`, and frames that
    /// can no longer make the target are shed instead of decoded late.
    #[must_use]
    pub fn with_slo(slo: Duration) -> Self {
        ShardPolicy {
            slo: Some(slo),
            shed: true,
            ..ShardPolicy::default()
        }
    }

    /// Sets the shard's dispatch [`Priority`].
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the micro-batch hold ceiling; see [`ShardPolicy::max_hold`].
    #[must_use]
    pub fn max_hold(mut self, max_hold: Duration) -> Self {
        self.max_hold = Some(max_hold);
        self
    }

    /// Enables or disables load shedding; see [`ShardPolicy::shed`].
    #[must_use]
    pub fn shed(mut self, shed: bool) -> Self {
        self.shed = shed;
        self
    }

    /// Seeds the decode-cost estimate; see
    /// [`ShardPolicy::expected_frame_cost`].
    #[must_use]
    pub fn expected_frame_cost(mut self, cost: Duration) -> Self {
        self.expected_frame_cost = Some(cost);
        self
    }

    /// The effective micro-batch hold ceiling.
    pub(crate) fn hold_limit(&self) -> Duration {
        self.max_hold.unwrap_or_else(|| {
            self.slo
                .map_or(Duration::ZERO, |slo| slo.checked_div(2).unwrap_or(slo))
        })
    }

    /// Whether this shard micro-batches (holds frames) at all; greedy shards
    /// keep the pre-policy take-everything drain behaviour, including ragged
    /// batch tails.
    pub(crate) fn micro_batching(&self) -> bool {
        !self.hold_limit().is_zero()
    }
}

/// Per-frame submission options for
/// [`DecodeService::submit`](crate::DecodeService::submit) — the one entry
/// point subsuming the old `submit` / `submit_with_deadline` / `try_submit` /
/// `try_submit_with_deadline` matrix.
///
/// `submit` takes `impl Into<SubmitOptions>`, so the common cases stay terse:
///
/// * `()` — blocking, no deadline (the old `submit`);
/// * an [`Instant`] — blocking with that deadline (the old
///   `submit_with_deadline`);
/// * a [`Priority`] — blocking, no deadline, in that class;
/// * a full `SubmitOptions` for everything else, e.g.
///   `SubmitOptions::new().deadline(t).non_blocking()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Completion deadline. A frame still queued past it completes as
    /// [`DecodeOutcome::Expired`](crate::DecodeOutcome::Expired); with
    /// [`ShardPolicy::shed`] it may resolve as
    /// [`DecodeOutcome::Shed`](crate::DecodeOutcome::Shed) earlier. `None`
    /// falls back to the shard's SLO (when set) as an implicit
    /// `arrival + slo` deadline.
    pub deadline: Option<Instant>,
    /// Whether a full shard queue parks the caller (`true`, the default) or
    /// refuses with
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) handing the
    /// frame back (`false`, the old `try_submit`).
    pub blocking: bool,
    /// The frame's [`Priority`] within its shard queue.
    pub priority: Priority,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            deadline: None,
            blocking: true,
            priority: Priority::Normal,
        }
    }
}

impl SubmitOptions {
    /// Blocking submission, no deadline, normal priority — the defaults.
    #[must_use]
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Sets the completion deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Makes the submission non-blocking: a full queue refuses the frame
    /// instead of parking the caller.
    #[must_use]
    pub fn non_blocking(mut self) -> Self {
        self.blocking = false;
        self
    }

    /// Sets the frame's [`Priority`].
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl From<()> for SubmitOptions {
    fn from((): ()) -> Self {
        SubmitOptions::default()
    }
}

impl From<Instant> for SubmitOptions {
    fn from(deadline: Instant) -> Self {
        SubmitOptions::default().deadline(deadline)
    }
}

impl From<Priority> for SubmitOptions {
    fn from(priority: Priority) -> Self {
        SubmitOptions::default().priority(priority)
    }
}

/// What decodes in a service's shards: a factory for the decoder instance
/// the service template-clones (via
/// [`Decoder::detached_clone`]) into every shard.
///
/// This is the uniform parameter of
/// [`DecodeService::builder`](crate::DecodeService::builder). Every provided
/// decoder ([`LayeredDecoder`], [`FloodingDecoder`], [`CascadeDecoder`])
/// implements it as its own factory — `builder(decoder)` call sites from the
/// pre-policy API compile unchanged — and
/// [`CascadePolicy`](crate::CascadePolicy) implements it by building the
/// cascade it describes, replacing the old `cascade_builder` special case.
pub trait DecoderPolicy {
    /// The decoder type this policy builds.
    type Decoder: Decoder + Clone + Send + Sync + 'static;

    /// Builds the service's template decoder instance.
    fn build_decoder(&self) -> Self::Decoder;

    /// Human-readable label of what decodes (for reports and harnesses),
    /// e.g. `"layered/float-bp"` or `"cascade"`.
    fn label(&self) -> String;
}

impl<A: DecoderArithmetic> DecoderPolicy for LayeredDecoder<A>
where
    LayeredDecoder<A>: Decoder + Clone + Send + Sync + 'static,
{
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.schedule_name(), self.arithmetic().name())
    }
}

impl<A: DecoderArithmetic> DecoderPolicy for FloodingDecoder<A>
where
    FloodingDecoder<A>: Decoder + Clone + Send + Sync + 'static,
{
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.schedule_name(), self.arithmetic().name())
    }
}

impl DecoderPolicy for CascadeDecoder {
    type Decoder = Self;

    fn build_decoder(&self) -> Self {
        self.clone()
    }

    fn label(&self) -> String {
        "cascade".to_string()
    }
}

impl DecoderPolicy for CascadePolicy {
    type Decoder = CascadeDecoder;

    fn build_decoder(&self) -> CascadeDecoder {
        self.decoder()
    }

    fn label(&self) -> String {
        "cascade".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_core::{DecoderConfig, FloatBpArithmetic};

    #[test]
    fn priority_orders_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn default_policy_is_greedy() {
        let p = ShardPolicy::default();
        assert_eq!(p, ShardPolicy::greedy());
        assert_eq!(p.hold_limit(), Duration::ZERO);
        assert!(!p.micro_batching());
        assert!(!p.shed);
    }

    #[test]
    fn slo_policy_holds_half_the_slo_and_sheds() {
        let p = ShardPolicy::with_slo(Duration::from_millis(10));
        assert_eq!(p.hold_limit(), Duration::from_millis(5));
        assert!(p.micro_batching());
        assert!(p.shed);
        let capped = p.max_hold(Duration::from_millis(2));
        assert_eq!(capped.hold_limit(), Duration::from_millis(2));
    }

    #[test]
    fn submit_options_conversions_cover_the_old_matrix() {
        let plain: SubmitOptions = ().into();
        assert_eq!(plain, SubmitOptions::new());
        assert!(plain.blocking);
        assert!(plain.deadline.is_none());

        let t = Instant::now();
        let deadlined: SubmitOptions = t.into();
        assert_eq!(deadlined.deadline, Some(t));
        assert!(deadlined.blocking);

        let urgent: SubmitOptions = Priority::High.into();
        assert_eq!(urgent.priority, Priority::High);

        let full = SubmitOptions::new().deadline(t).non_blocking();
        assert!(!full.blocking);
        assert_eq!(full.deadline, Some(t));
    }

    #[test]
    fn decoder_policies_label_and_build() {
        let layered =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert!(DecoderPolicy::label(&layered).starts_with("layered/"));
        let _ = layered.build_decoder();

        let policy = CascadePolicy::default();
        assert_eq!(DecoderPolicy::label(&policy), "cascade");
        let cascade = policy.build_decoder();
        assert_eq!(DecoderPolicy::label(&cascade), "cascade");
    }
}
