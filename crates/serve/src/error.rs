//! Error types of the serving layer.

use std::error::Error;
use std::fmt;

use ldpc_codes::{CodeError, CodeId};

/// Errors raised while building a [`crate::DecodeService`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The builder was finalised without any registered code.
    NoCodes,
    /// The same mode was registered twice.
    DuplicateCode {
        /// The mode registered twice.
        code: CodeId,
    },
    /// Building the code for a registered mode failed.
    Code(CodeError),
    /// The service configuration is invalid (e.g. a zero `max_batch`);
    /// rejected at [`build`](crate::DecodeServiceBuilder::build) instead of
    /// being silently clamped.
    InvalidConfig {
        /// What was rejected and why.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoCodes => write!(f, "a decode service needs at least one registered code"),
            ServeError::DuplicateCode { code } => {
                write!(f, "code {code} is already registered")
            }
            ServeError::Code(e) => write!(f, "cannot build registered code: {e}"),
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for ServeError {
    fn from(e: CodeError) -> Self {
        ServeError::Code(e)
    }
}

/// Errors raised at frame submission. The variants that refuse an otherwise
/// valid frame ([`QueueFull`](SubmitError::QueueFull),
/// [`ShutDown`](SubmitError::ShutDown)) hand the LLR buffer back so callers
/// can retry without reallocating.
#[derive(Clone, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The service has no shard for this mode.
    UnknownCode {
        /// The unregistered mode.
        code: CodeId,
    },
    /// The frame's LLR count does not match the mode's code length.
    FrameLength {
        /// The mode submitted under.
        code: CodeId,
        /// The code length `n`.
        expected: usize,
        /// LLRs supplied.
        actual: usize,
    },
    /// The shard's ingest queue is at capacity (backpressure; only from
    /// `try_submit` — blocking submission parks instead).
    QueueFull {
        /// The submitted LLRs, returned for a retry.
        llrs: Vec<f64>,
    },
    /// The service is shutting down and accepts no new frames.
    ShutDown {
        /// The submitted LLRs, handed back.
        llrs: Vec<f64>,
    },
}

impl SubmitError {
    /// Recovers the LLR buffer from a refused-but-valid submission, if this
    /// error carries it.
    #[must_use]
    pub fn into_llrs(self) -> Option<Vec<f64>> {
        match self {
            SubmitError::QueueFull { llrs } | SubmitError::ShutDown { llrs } => Some(llrs),
            _ => None,
        }
    }
}

// Manual Debug: a frame is thousands of LLRs; dumping them in error logs
// would bury the actual failure.
impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownCode { code } => {
                f.debug_struct("UnknownCode").field("code", code).finish()
            }
            SubmitError::FrameLength {
                code,
                expected,
                actual,
            } => f
                .debug_struct("FrameLength")
                .field("code", code)
                .field("expected", expected)
                .field("actual", actual)
                .finish(),
            SubmitError::QueueFull { llrs } => f
                .debug_struct("QueueFull")
                .field("llrs_len", &llrs.len())
                .finish(),
            SubmitError::ShutDown { llrs } => f
                .debug_struct("ShutDown")
                .field("llrs_len", &llrs.len())
                .finish(),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownCode { code } => {
                write!(f, "no shard registered for code {code}")
            }
            SubmitError::FrameLength {
                code,
                expected,
                actual,
            } => write!(
                f,
                "frame for {code} has {actual} LLRs but the code length is {expected}"
            ),
            SubmitError::QueueFull { llrs } => {
                write!(f, "shard queue full ({}-LLR frame refused)", llrs.len())
            }
            SubmitError::ShutDown { llrs } => write!(
                f,
                "service shutting down ({}-LLR frame refused)",
                llrs.len()
            ),
        }
    }
}

impl Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    #[test]
    fn debug_and_display_stay_compact() {
        let e = SubmitError::QueueFull {
            llrs: vec![0.0; 2304],
        };
        let dbg = format!("{e:?}");
        assert!(dbg.contains("llrs_len: 2304"), "{dbg}");
        assert!(!dbg.contains("0.0"), "LLR values must not be dumped");
        assert!(e.to_string().contains("2304-LLR"));
    }

    #[test]
    fn into_llrs_recovers_the_buffer() {
        let llrs = vec![1.5; 8];
        let e = SubmitError::QueueFull { llrs: llrs.clone() };
        assert_eq!(e.into_llrs(), Some(llrs.clone()));
        let e = SubmitError::ShutDown { llrs: llrs.clone() };
        assert_eq!(e.into_llrs(), Some(llrs));
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        assert_eq!(SubmitError::UnknownCode { code }.into_llrs(), None);
    }

    #[test]
    fn serve_error_wraps_code_errors() {
        let e: ServeError = CodeError::UnsupportedCode {
            requested: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("cannot build"));
        assert!(e.source().is_some());
        assert!(ServeError::NoCodes.source().is_none());
    }
}
