//! Per-shard serving counters, the latency histogram, and their public
//! snapshot forms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ldpc_codes::CodeId;

use crate::harq::SoftBufferStats;
use crate::policy::{Priority, ShardPolicy};

/// Log-bucketed latency histogram: power-of-two octaves split into
/// `2^SUB_BITS` linear sub-buckets, so relative resolution is a constant
/// ~`1/2^SUB_BITS` across the whole nanosecond-to-minutes range. Recording
/// is one relaxed `fetch_add`; percentile extraction walks the cumulative
/// counts and reports the matched bucket's upper bound (conservative:
/// percentiles read slightly high, never low — the right bias for SLO
/// gating).
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    max_nanos: AtomicU64,
}

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Enough buckets for every `u64` nanosecond value (index ≤ (64-3+1)·8).
const BUCKETS: usize = ((64 - SUB_BITS as usize + 1) + 1) * SUB as usize;

fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let msb = 63 - u64::from(nanos.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let sub = (nanos >> shift) - SUB;
    ((shift + 1) * SUB + sub) as usize
}

/// Largest value mapping to `index` — what percentiles report.
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let shift = index / SUB - 1;
    let sub = index % SUB;
    let low = (SUB + sub) << shift;
    low + ((1u64 << shift) - 1)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub(crate) fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LatencyStats {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_nanos = self.max_nanos.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the order statistic the quantile asks for.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i).min(max_nanos);
                }
            }
            max_nanos
        };
        LatencyStats {
            count,
            p50_nanos: percentile(0.50),
            p99_nanos: percentile(0.99),
            p999_nanos: percentile(0.999),
            max_nanos,
        }
    }
}

/// Completion-latency percentiles of one shard's decoded frames, measured
/// from frame arrival (submission accept) to outcome completion.
///
/// Extracted from a log-bucketed histogram with ~12% relative resolution;
/// each percentile reports its bucket's upper bound, so values read
/// slightly high, never low. Only *decoded* frames record latency — shed,
/// expired and failed frames are accounted in their own counters instead of
/// polluting the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct LatencyStats {
    /// Decoded frames measured.
    pub count: u64,
    /// Median completion latency, in nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile completion latency, in nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile completion latency, in nanoseconds.
    pub p999_nanos: u64,
    /// Worst observed completion latency, in nanoseconds.
    pub max_nanos: u64,
}

impl LatencyStats {
    /// Median completion latency.
    #[must_use]
    pub fn p50(&self) -> Duration {
        Duration::from_nanos(self.p50_nanos)
    }

    /// 99th-percentile completion latency.
    #[must_use]
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.p99_nanos)
    }

    /// 99.9th-percentile completion latency.
    #[must_use]
    pub fn p999(&self) -> Duration {
        Duration::from_nanos(self.p999_nanos)
    }

    /// Worst observed completion latency.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }
}

/// Live counters one shard's submit paths and dispatch workers update.
/// Reads are relaxed snapshots — consistent enough for monitoring and for
/// quiescent assertions (after `shutdown`, all counters are final).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Frames accepted into the ingest queue (or shed at admission).
    pub accepted: AtomicU64,
    /// Non-blocking refusals due to a full queue (backpressure events).
    pub rejected_full: AtomicU64,
    /// Frames decoded and completed with an output.
    pub decoded: AtomicU64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: AtomicU64,
    /// Frames shed by admission control (deadline unmeetable; see
    /// [`crate::DecodeOutcome::Shed`]).
    pub shed: AtomicU64,
    /// Frames completed with a decode-engine error.
    pub failed: AtomicU64,
    /// Coalesced `decode_batch` calls issued.
    pub batches: AtomicU64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: AtomicU64,
    /// EWMA of the observed per-frame decode cost, in nanoseconds; zero
    /// until the first batch unless seeded from
    /// [`ShardPolicy::expected_frame_cost`]. Drives shedding decisions.
    pub est_frame_nanos: AtomicU64,
    /// Service-wide dispatch sequence number of this shard's first decoded
    /// batch, plus one (zero = never dispatched). Makes cross-shard dispatch
    /// order — the observable effect of [`Priority`] — testable.
    pub first_dispatch_seq: AtomicU64,
    /// Completion-latency histogram of decoded frames.
    pub latency: LatencyHistogram,
    /// Cascade escalation events (stage ≥ 2 entries), mirrored from the
    /// shard decoder's [`ldpc_core::CascadeStats`] after every batch; zero
    /// for non-cascade decoders.
    pub cascade_escalations: AtomicU64,
    /// Frames decoded per cascade stage, mirrored like
    /// [`ShardCounters::cascade_escalations`].
    pub cascade_stage_frames: [AtomicU64; 3],
    /// Frames resolved as [`crate::DecodeOutcome::Abandoned`] by their
    /// completion-on-drop guard — only possible when a dispatch worker
    /// panicked while holding them. Counted by the guard itself, so the
    /// books balance even across a crash.
    pub abandoned: AtomicU64,
    /// Frames isolated by quarantine bisection as the cause of a batch
    /// panic and resolved as [`crate::DecodeOutcome::Poisoned`].
    pub quarantined: AtomicU64,
    /// Dispatch-worker panics attributed to this shard (the supervisor
    /// restarted the worker loop each time).
    pub worker_restarts: AtomicU64,
    /// Batches decoded while the shard's degradation ladder was engaged
    /// (level > 0), i.e. at reduced cascade effort.
    pub degraded_batches: AtomicU64,
    /// Current degradation level (gauge, not a counter): 0 = full effort;
    /// higher levels progressively cheapen the shard decoder's cascade.
    pub degradation_level: AtomicU64,
    /// When the most recent dispatch *finished*, in nanoseconds since the
    /// service epoch, clamped ≥ 1 (zero = never dispatched).
    pub last_dispatch_nanos: AtomicU64,
    /// When the dispatch currently decoding *started*, same clock as
    /// [`ShardCounters::last_dispatch_nanos`]; zero = no dispatch in
    /// progress. The watchdog's stall detection compares its age against
    /// the EWMA cost estimate.
    pub dispatch_started_nanos: AtomicU64,
    /// Frame count of the in-progress (or most recent) dispatch — the
    /// multiplier for the stall budget.
    pub dispatch_frames: AtomicU64,
    /// HARQ combine operations performed by this shard's `submit_harq`
    /// path (each folds one transmission into a soft buffer).
    pub harq_combines: AtomicU64,
    /// HARQ frames whose soft buffer was parked for a retransmission
    /// (decode failed, expired, shed, poisoned, or abandoned).
    pub harq_parked: AtomicU64,
    /// HARQ frames whose soft buffer was released by a parity-satisfied
    /// decode.
    pub harq_released: AtomicU64,
    /// Soft buffers this shard stored that the store later evicted
    /// (budget LRU, TTL, or chaos-forced).
    pub harq_evictions: AtomicU64,
    /// HARQ retransmissions that found no stored buffer (evicted
    /// mid-HARQ) and restarted accumulation from fresh LLRs.
    pub harq_evicted_restarts: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn snapshot(
        &self,
        code: CodeId,
        queue_depth: usize,
        pool_workspaces_created: usize,
        policy: &ShardPolicy,
        effective_max_batch: usize,
    ) -> ShardStats {
        let first_dispatch_seq = self.first_dispatch_seq.load(Ordering::Relaxed);
        ShardStats {
            code,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            est_frame_nanos: self.est_frame_nanos.load(Ordering::Relaxed),
            first_dispatch_order: first_dispatch_seq.checked_sub(1),
            latency: self.latency.snapshot(),
            cascade_escalations: self.cascade_escalations.load(Ordering::Relaxed),
            cascade_stage_frames: [
                self.cascade_stage_frames[0].load(Ordering::Relaxed),
                self.cascade_stage_frames[1].load(Ordering::Relaxed),
                self.cascade_stage_frames[2].load(Ordering::Relaxed),
            ],
            abandoned: self.abandoned.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            degradation_level: u8::try_from(self.degradation_level.load(Ordering::Relaxed))
                .unwrap_or(u8::MAX),
            harq_combines: self.harq_combines.load(Ordering::Relaxed),
            harq_parked: self.harq_parked.load(Ordering::Relaxed),
            harq_released: self.harq_released.load(Ordering::Relaxed),
            harq_evictions: self.harq_evictions.load(Ordering::Relaxed),
            harq_evicted_restarts: self.harq_evicted_restarts.load(Ordering::Relaxed),
            queue_depth,
            pool_workspaces_created,
            priority: policy.priority,
            slo: policy.slo,
            effective_max_batch,
        }
    }

    /// Folds one observed batch into the per-frame cost EWMA
    /// (`new = (3·old + observed) / 4`; the first observation seeds it).
    pub(crate) fn observe_batch_cost(&self, elapsed: Duration, frames: usize) {
        if frames == 0 {
            return;
        }
        let per_frame = u64::try_from(elapsed.as_nanos() / frames as u128).unwrap_or(u64::MAX);
        let old = self.est_frame_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_frame
        } else {
            (3 * (old / 4)).saturating_add(per_frame / 4).max(1)
        };
        self.est_frame_nanos.store(new, Ordering::Relaxed);
    }

    /// Stamps the shard's first dispatch with the service-wide sequence
    /// number `seq` (0-based); later dispatches leave it untouched.
    pub(crate) fn stamp_dispatch(&self, seq: u64) {
        let _ = self.first_dispatch_seq.compare_exchange(
            0,
            seq + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Mirrors a cascade decoder's live stage counters into the shard
    /// counters (stores, not adds: each shard owns a detached decoder
    /// clone, so the decoder's totals *are* the shard's totals).
    pub(crate) fn mirror_cascade(&self, stats: ldpc_core::CascadeStats) {
        self.cascade_escalations
            .store(stats.escalations, Ordering::Relaxed);
        for (counter, frames) in self.cascade_stage_frames.iter().zip(stats.stage_frames) {
            counter.store(frames, Ordering::Relaxed);
        }
    }

    /// Marks a dispatch of `frames` frames as decoding right now.
    /// `now_nanos` is nanoseconds since the service epoch, clamped ≥ 1 so
    /// zero keeps meaning "none".
    pub(crate) fn begin_dispatch(&self, now_nanos: u64, frames: usize) {
        self.dispatch_frames.store(frames as u64, Ordering::Relaxed);
        self.dispatch_started_nanos
            .store(now_nanos.max(1), Ordering::Relaxed);
    }

    /// Marks the in-progress dispatch finished at `now_nanos`.
    pub(crate) fn end_dispatch(&self, now_nanos: u64) {
        self.dispatch_started_nanos.store(0, Ordering::Relaxed);
        self.last_dispatch_nanos
            .store(now_nanos.max(1), Ordering::Relaxed);
    }

    /// Health view of this shard at `now_nanos` (service-epoch clock).
    /// Queue facts come from the caller's queue snapshot.
    pub(crate) fn health(
        &self,
        code: CodeId,
        queue_depth: usize,
        oldest_frame_age: Option<Duration>,
        now_nanos: u64,
    ) -> ShardHealth {
        let started = self.dispatch_started_nanos.load(Ordering::Relaxed);
        let last = self.last_dispatch_nanos.load(Ordering::Relaxed);
        let dispatch_in_progress = started != 0;
        let stalled = dispatch_in_progress && {
            let frames = self.dispatch_frames.load(Ordering::Relaxed).max(1);
            let est = self.est_frame_nanos.load(Ordering::Relaxed);
            let budget = est
                .saturating_mul(frames)
                .saturating_mul(STALL_COST_MULTIPLIER)
                .max(STALL_FLOOR_NANOS);
            now_nanos.saturating_sub(started) > budget
        };
        ShardHealth {
            code,
            queue_depth,
            oldest_frame_age,
            last_dispatch_age: (last != 0)
                .then(|| Duration::from_nanos(now_nanos.saturating_sub(last))),
            dispatch_in_progress,
            stalled,
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            degradation_level: u8::try_from(self.degradation_level.load(Ordering::Relaxed))
                .unwrap_or(u8::MAX),
        }
    }
}

/// A dispatch is flagged stalled once its age exceeds this multiple of the
/// EWMA-estimated batch cost (floored at [`STALL_FLOOR_NANOS`] so fast
/// shards aren't flagged by scheduling noise).
pub(crate) const STALL_COST_MULTIPLIER: u64 = 8;
/// Minimum in-progress dispatch age (50 ms) before a stall can be flagged.
pub(crate) const STALL_FLOOR_NANOS: u64 = 50_000_000;

/// Snapshot of one shard's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// The mode this shard serves.
    pub code: CodeId,
    /// Frames accepted (including frames admission control then shed —
    /// a shed frame is accounted, never silently dropped).
    pub accepted: u64,
    /// Non-blocking submission refusals due to a full queue (backpressure
    /// events).
    pub rejected_full: u64,
    /// Frames decoded and completed with an output.
    pub decoded: u64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: u64,
    /// Frames shed by admission control: their deadline was still ahead but
    /// unmeetable given the shard's queue depth and observed decode cost,
    /// so they resolved as [`crate::DecodeOutcome::Shed`] without decoder
    /// time. Zero unless the shard's [`ShardPolicy::shed`] is enabled.
    pub shed: u64,
    /// Frames completed with a decode-engine error.
    pub failed: u64,
    /// Coalesced `decode_batch` calls the shard's dispatches issued.
    pub batches: u64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: u64,
    /// EWMA of the observed per-frame decode cost, in nanoseconds (zero
    /// until the first batch unless seeded through
    /// [`ShardPolicy::expected_frame_cost`]). This is the estimate the
    /// dispatcher's shedding and micro-batch timing decisions use.
    pub est_frame_nanos: u64,
    /// Service-wide sequence number (0-based) of this shard's first decoded
    /// batch; `None` if the shard never dispatched. Later-served shards
    /// carry larger numbers — the observable form of [`Priority`] ordering.
    pub first_dispatch_order: Option<u64>,
    /// Completion-latency percentiles of decoded frames.
    pub latency: LatencyStats,
    /// Cascade escalation events: frames this shard's decoder re-decoded at
    /// stage ≥ 2 of its ladder. Zero for non-cascade decoders. A rising
    /// escalation *rate* (escalations ÷ decoded) under fixed traffic is the
    /// serving-layer signal that channel conditions — or a decoder
    /// regression — are pushing frames off the cheap path.
    pub cascade_escalations: u64,
    /// Frames decoded per cascade stage (stage 1 counts every frame its
    /// groups entered with; stages 2/3 count escalated survivors). All zero
    /// for non-cascade decoders.
    pub cascade_stage_frames: [u64; 3],
    /// Frames resolved as [`crate::DecodeOutcome::Abandoned`]: a dispatch
    /// worker panicked while holding them and their completion-on-drop
    /// guard resolved (and counted) them. Nonzero only after a worker crash
    /// that quarantine could not attribute to a single frame.
    pub abandoned: u64,
    /// Frames isolated by quarantine bisection as the cause of a batch
    /// panic, resolved as [`crate::DecodeOutcome::Poisoned`] while their
    /// batch-mates decoded normally.
    pub quarantined: u64,
    /// Dispatch-worker panics attributed to this shard; each one was
    /// followed by a supervised restart of the worker loop.
    pub worker_restarts: u64,
    /// Batches decoded while the degradation ladder was engaged (level > 0).
    pub degraded_batches: u64,
    /// Current degradation level (a gauge): 0 = full cascade effort; each
    /// higher level cheapens the shard decoder's cascade before admission
    /// control is allowed to shed (see
    /// [`DegradationPolicy`](crate::DegradationPolicy)).
    pub degradation_level: u8,
    /// HARQ combine operations performed by this shard's
    /// [`submit_harq`](crate::DecodeService::submit_harq) path.
    pub harq_combines: u64,
    /// HARQ frames whose soft buffer was parked for a retransmission (any
    /// non-success outcome keeps the accumulated state).
    pub harq_parked: u64,
    /// HARQ frames whose soft buffer was released by a parity-satisfied
    /// decode.
    pub harq_released: u64,
    /// Soft buffers this shard stored that the store evicted (budget LRU,
    /// TTL, or chaos-forced) — attributed to the storing shard even when
    /// another shard's insert displaced them.
    pub harq_evictions: u64,
    /// HARQ retransmissions that found their buffer evicted and restarted
    /// accumulation from fresh LLRs (decoded normally, never wedged).
    pub harq_evicted_restarts: u64,
    /// Frames queued but not yet claimed by a dispatch worker at snapshot
    /// time.
    pub queue_depth: usize,
    /// Workspaces ever built by the decoder's workspace pool. The pool is
    /// shared by all shards of one service (shelves are keyed per mode), so
    /// this value is service-global; it being stable across snapshots is the
    /// observable form of "steady-state serving allocates no decoder state".
    pub pool_workspaces_created: usize,
    /// The shard's dispatch priority class, echoed from its policy.
    pub priority: Priority,
    /// The shard's latency SLO, echoed from its policy.
    pub slo: Option<Duration>,
    /// The shard's batch ceiling after group-width snapping of
    /// [`crate::ServiceConfig::max_batch`].
    pub effective_max_batch: usize,
}

impl ShardStats {
    /// Frames resolved so far
    /// (decoded + expired + shed + failed + quarantined + abandoned).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.decoded + self.expired + self.shed + self.failed + self.quarantined + self.abandoned
    }

    /// Accepted frames not yet resolved. Saturating: the counters are
    /// relaxed-atomic snapshots, so a racing reader could otherwise observe
    /// a completion fractionally ahead of another shard event.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.accepted.saturating_sub(self.completed())
    }
}

/// Health view of one shard — the watchdog-facing subset of its state,
/// focused on "is this shard making progress right now" rather than
/// lifetime totals (see [`ShardStats`](crate::ShardStats) for those).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardHealth {
    /// The mode this shard serves.
    pub code: CodeId,
    /// Frames queued but not yet claimed by a dispatch worker.
    pub queue_depth: usize,
    /// Age of the oldest queued frame (time since its submission was
    /// accepted); `None` when the queue is empty. A growing value with a
    /// recent dispatch means the shard is falling behind; a growing value
    /// with *no* recent dispatch means it is starved or stuck.
    pub oldest_frame_age: Option<Duration>,
    /// Time since the shard's most recent dispatch finished; `None` if it
    /// never dispatched.
    pub last_dispatch_age: Option<Duration>,
    /// Whether a dispatch worker is decoding a batch of this shard right
    /// now.
    pub dispatch_in_progress: bool,
    /// Stall flag: a dispatch is in progress and has been running longer
    /// than 8× the EWMA-estimated cost of its batch (floored at 50 ms).
    /// A stalled shard is either hitting pathological decode behaviour or a
    /// stuck worker — either way it needs attention before its queue backs
    /// up into shedding.
    pub stalled: bool,
    /// Dispatch-worker panics attributed to this shard.
    pub worker_restarts: u64,
    /// Frames quarantined as poisoned by this shard.
    pub quarantined: u64,
    /// Frames abandoned by a crashing worker on this shard.
    pub abandoned: u64,
    /// Current degradation-ladder level (0 = full effort).
    pub degradation_level: u8,
}

/// Point-in-time health snapshot of the whole service: every shard's
/// [`ShardHealth`] plus the decode pool's worker census. Obtained from
/// [`DecodeService::health`](crate::DecodeService::health); cheap enough to
/// poll from a watchdog loop.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceHealth {
    /// Per-shard health, in the service's shard order.
    pub shards: Vec<ShardHealth>,
    /// Decode pool workers at full strength.
    pub pool_workers: usize,
    /// Decode pool workers currently alive. Transiently below
    /// [`pool_workers`](ServiceHealth::pool_workers) between a worker death
    /// and its supervised respawn; persistently below means respawn failed.
    pub pool_live_workers: usize,
    /// Decode pool workers ever respawned after a death.
    pub pool_worker_restarts: u64,
    /// Frames shed by admission control, summed across shards — so the
    /// watchdog view is self-contained and a sudden shed ramp is visible
    /// without also pulling [`ShardStats`](crate::ShardStats).
    pub shed: u64,
    /// Frames quarantined as poisoned, summed across shards.
    pub quarantined: u64,
    /// Frames abandoned by crashing workers, summed across shards.
    pub abandoned: u64,
    /// Occupancy and audit counters of the HARQ soft-buffer store (zeros
    /// when HARQ is unused).
    pub harq: SoftBufferStats,
}

impl ServiceHealth {
    /// Whether the service looks able to make progress: the decode pool is
    /// at full strength and no shard's dispatch is flagged as stalled.
    /// Restart/quarantine *counts* don't fail health — they are history,
    /// and the whole point of supervision is that history stays history.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.pool_live_workers >= self.pool_workers && self.shards.iter().all(|s| !s.stalled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    #[test]
    fn snapshot_carries_all_counters() {
        let counters = ShardCounters::default();
        counters.accepted.store(15, Ordering::Relaxed);
        counters.decoded.store(6, Ordering::Relaxed);
        counters.expired.store(2, Ordering::Relaxed);
        counters.shed.store(2, Ordering::Relaxed);
        counters.failed.store(1, Ordering::Relaxed);
        counters.rejected_full.store(3, Ordering::Relaxed);
        counters.batches.store(4, Ordering::Relaxed);
        counters.max_coalesced.store(5, Ordering::Relaxed);
        counters.stamp_dispatch(7);
        counters.stamp_dispatch(9); // later dispatches do not overwrite
        counters.mirror_cascade(ldpc_core::CascadeStats {
            stage_frames: [10, 7, 2],
            escalations: 9,
        });
        counters.abandoned.store(1, Ordering::Relaxed);
        counters.quarantined.store(2, Ordering::Relaxed);
        counters.worker_restarts.store(3, Ordering::Relaxed);
        counters.degraded_batches.store(2, Ordering::Relaxed);
        counters.degradation_level.store(1, Ordering::Relaxed);
        counters.harq_combines.store(11, Ordering::Relaxed);
        counters.harq_parked.store(4, Ordering::Relaxed);
        counters.harq_released.store(6, Ordering::Relaxed);
        counters.harq_evictions.store(2, Ordering::Relaxed);
        counters.harq_evicted_restarts.store(1, Ordering::Relaxed);
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let policy = ShardPolicy::with_slo(Duration::from_millis(8)).priority(Priority::High);
        let stats = counters.snapshot(code, 1, 2, &policy, 30);
        assert_eq!(stats.code, code);
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.worker_restarts, 3);
        assert_eq!(stats.degraded_batches, 2);
        assert_eq!(stats.degradation_level, 1);
        assert_eq!(
            stats.completed(),
            14,
            "quarantined and abandoned count as resolved"
        );
        assert_eq!(stats.in_flight(), 1);
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.rejected_full, 3);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.max_coalesced, 5);
        assert_eq!(stats.first_dispatch_order, Some(7));
        assert_eq!(stats.cascade_escalations, 9);
        assert_eq!(stats.cascade_stage_frames, [10, 7, 2]);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.pool_workspaces_created, 2);
        assert_eq!(stats.priority, Priority::High);
        assert_eq!(stats.slo, Some(Duration::from_millis(8)));
        assert_eq!(stats.effective_max_batch, 30);
        assert_eq!(stats.harq_combines, 11);
        assert_eq!(stats.harq_parked, 4);
        assert_eq!(stats.harq_released, 6);
        assert_eq!(stats.harq_evictions, 2);
        assert_eq!(stats.harq_evicted_restarts, 1);
    }

    #[test]
    fn never_dispatched_shards_have_no_dispatch_order() {
        let counters = ShardCounters::default();
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 0, 0, &ShardPolicy::default(), 32);
        assert_eq!(stats.first_dispatch_order, None);
    }

    #[test]
    fn mirror_cascade_stores_rather_than_adds() {
        let counters = ShardCounters::default();
        for total in [3u64, 8, 21] {
            counters.mirror_cascade(ldpc_core::CascadeStats {
                stage_frames: [total, total / 2, 0],
                escalations: total / 2,
            });
        }
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 0, 0, &ShardPolicy::default(), 32);
        assert_eq!(stats.cascade_stage_frames, [21, 10, 0]);
        assert_eq!(stats.cascade_escalations, 10);
    }

    #[test]
    fn cost_ewma_seeds_then_smooths() {
        let counters = ShardCounters::default();
        counters.observe_batch_cost(Duration::from_micros(40), 4);
        assert_eq!(counters.est_frame_nanos.load(Ordering::Relaxed), 10_000);
        counters.observe_batch_cost(Duration::from_micros(80), 4);
        let est = counters.est_frame_nanos.load(Ordering::Relaxed);
        assert!(
            est > 10_000 && est < 20_000,
            "EWMA moves toward the new observation: {est}"
        );
        counters.observe_batch_cost(Duration::from_secs(1), 0); // no-op
        assert_eq!(counters.est_frame_nanos.load(Ordering::Relaxed), est);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_bounded() {
        let mut last = 0usize;
        for nanos in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_index(nanos);
            assert!(idx >= last, "bucket index must be monotone in the value");
            assert!(idx < BUCKETS);
            assert!(
                bucket_upper_bound(idx) >= nanos,
                "upper bound must cover the value: {nanos}"
            );
            last = idx;
        }
    }

    #[test]
    fn latency_percentiles_read_conservatively_high() {
        let hist = LatencyHistogram::default();
        for ms in 1..=100u64 {
            hist.record(Duration::from_millis(ms));
        }
        let stats = hist.snapshot();
        assert_eq!(stats.count, 100);
        // Exact order statistics: p50 = 50 ms, p99 = 99 ms, p999/max = 100 ms.
        // Bucketing may round up by one sub-bucket width (~12%), never down.
        let ms = |nanos: u64| nanos as f64 / 1e6;
        assert!((50.0..60.0).contains(&ms(stats.p50_nanos)), "{stats:?}");
        assert!((99.0..115.0).contains(&ms(stats.p99_nanos)), "{stats:?}");
        assert!(stats.p999_nanos <= stats.max_nanos);
        assert_eq!(stats.max(), Duration::from_millis(100));
        assert!(stats.p50() <= stats.p99() && stats.p99() <= stats.p999());
    }

    #[test]
    fn empty_histogram_snapshots_to_zeroes() {
        let stats = LatencyHistogram::default().snapshot();
        assert_eq!(stats, LatencyStats::default());
    }

    #[test]
    fn stall_detection_compares_dispatch_age_against_the_cost_estimate() {
        let counters = ShardCounters::default();
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);

        // Never dispatched: nothing in progress, nothing stalled.
        let idle = counters.health(code, 0, None, 1_000);
        assert!(!idle.dispatch_in_progress && !idle.stalled);
        assert_eq!(idle.last_dispatch_age, None);

        // In progress but young: not yet a stall (floor is 50 ms).
        counters.est_frame_nanos.store(1_000_000, Ordering::Relaxed);
        counters.begin_dispatch(1_000_000, 4);
        let young = counters.health(code, 3, Some(Duration::from_millis(1)), 2_000_000);
        assert!(young.dispatch_in_progress && !young.stalled);
        assert_eq!(young.queue_depth, 3);
        assert_eq!(young.oldest_frame_age, Some(Duration::from_millis(1)));

        // 4 frames × 1 ms estimate × multiplier 8 = 32 ms budget, floored
        // at 50 ms: a dispatch 60 ms old is stalled.
        let stalled = counters.health(code, 3, None, 1_000_000 + 60_000_000);
        assert!(stalled.stalled);

        // Finishing the dispatch clears the flag and stamps the timestamp.
        counters.end_dispatch(70_000_000);
        let done = counters.health(code, 0, None, 75_000_000);
        assert!(!done.dispatch_in_progress && !done.stalled);
        assert_eq!(done.last_dispatch_age, Some(Duration::from_millis(5)));
    }

    #[test]
    fn service_health_requires_full_pool_and_no_stalls() {
        let counters = ShardCounters::default();
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let shard = counters.health(code, 0, None, 1_000);
        let healthy = ServiceHealth {
            shards: vec![shard],
            pool_workers: 4,
            pool_live_workers: 4,
            pool_worker_restarts: 2,
            shed: 5,
            quarantined: 1,
            abandoned: 1,
            harq: SoftBufferStats::default(),
        };
        assert!(healthy.healthy(), "restart history alone is not unhealthy");
        let short_pool = ServiceHealth {
            pool_live_workers: 3,
            ..healthy.clone()
        };
        assert!(!short_pool.healthy());
        let mut stalled_shard = shard;
        stalled_shard.stalled = true;
        let stalled = ServiceHealth {
            shards: vec![shard, stalled_shard],
            ..healthy
        };
        assert!(!stalled.healthy());
    }
}
