//! Per-shard serving counters and their public snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

use ldpc_codes::CodeId;

/// Live counters one shard's submit paths and worker update. Reads are
/// relaxed snapshots — consistent enough for monitoring and for quiescent
/// assertions (after `shutdown`, all counters are final).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Frames accepted into the ingest queue.
    pub accepted: AtomicU64,
    /// `try_submit` refusals due to a full queue (backpressure events).
    pub rejected_full: AtomicU64,
    /// Frames decoded and completed with an output.
    pub decoded: AtomicU64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: AtomicU64,
    /// Frames completed with a decode-engine error.
    pub failed: AtomicU64,
    /// Coalesced `decode_batch` calls issued.
    pub batches: AtomicU64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: AtomicU64,
    /// Cascade escalation events (stage ≥ 2 entries), mirrored from the
    /// shard decoder's [`ldpc_core::CascadeStats`] after every batch; zero
    /// for non-cascade decoders.
    pub cascade_escalations: AtomicU64,
    /// Frames decoded per cascade stage, mirrored like
    /// [`ShardCounters::cascade_escalations`].
    pub cascade_stage_frames: [AtomicU64; 3],
}

impl ShardCounters {
    pub(crate) fn snapshot(
        &self,
        code: CodeId,
        queue_depth: usize,
        pool_workspaces_created: usize,
    ) -> ShardStats {
        ShardStats {
            code,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            cascade_escalations: self.cascade_escalations.load(Ordering::Relaxed),
            cascade_stage_frames: [
                self.cascade_stage_frames[0].load(Ordering::Relaxed),
                self.cascade_stage_frames[1].load(Ordering::Relaxed),
                self.cascade_stage_frames[2].load(Ordering::Relaxed),
            ],
            queue_depth,
            pool_workspaces_created,
        }
    }

    /// Mirrors a cascade decoder's live stage counters into the shard
    /// counters (stores, not adds: each shard worker owns a detached decoder
    /// clone, so the decoder's totals *are* the shard's totals).
    pub(crate) fn mirror_cascade(&self, stats: ldpc_core::CascadeStats) {
        self.cascade_escalations
            .store(stats.escalations, Ordering::Relaxed);
        for (counter, frames) in self.cascade_stage_frames.iter().zip(stats.stage_frames) {
            counter.store(frames, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one shard's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// The mode this shard serves.
    pub code: CodeId,
    /// Frames accepted into the ingest queue.
    pub accepted: u64,
    /// `try_submit` refusals due to a full queue (backpressure events).
    pub rejected_full: u64,
    /// Frames decoded and completed with an output.
    pub decoded: u64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: u64,
    /// Frames completed with a decode-engine error.
    pub failed: u64,
    /// Coalesced `decode_batch` calls the shard worker issued.
    pub batches: u64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: u64,
    /// Cascade escalation events: frames this shard's decoder re-decoded at
    /// stage ≥ 2 of its ladder. Zero for non-cascade decoders. A rising
    /// escalation *rate* (escalations ÷ decoded) under fixed traffic is the
    /// serving-layer signal that channel conditions — or a decoder
    /// regression — are pushing frames off the cheap path.
    pub cascade_escalations: u64,
    /// Frames decoded per cascade stage (stage 1 counts every frame its
    /// groups entered with; stages 2/3 count escalated survivors). All zero
    /// for non-cascade decoders.
    pub cascade_stage_frames: [u64; 3],
    /// Frames queued but not yet pulled by the worker at snapshot time.
    pub queue_depth: usize,
    /// Workspaces ever built by the decoder's workspace pool. The pool is
    /// shared by all shards of one service (shelves are keyed per mode), so
    /// this value is service-global; it being stable across snapshots is the
    /// observable form of "steady-state serving allocates no decoder state".
    pub pool_workspaces_created: usize,
}

impl ShardStats {
    /// Frames resolved so far (decoded + expired + failed).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.decoded + self.expired + self.failed
    }

    /// Accepted frames not yet resolved. Saturating: the counters are
    /// relaxed-atomic snapshots, so a racing reader could otherwise observe
    /// a completion fractionally ahead of another shard event.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.accepted.saturating_sub(self.completed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    #[test]
    fn snapshot_carries_all_counters() {
        let counters = ShardCounters::default();
        counters.accepted.store(10, Ordering::Relaxed);
        counters.decoded.store(6, Ordering::Relaxed);
        counters.expired.store(2, Ordering::Relaxed);
        counters.failed.store(1, Ordering::Relaxed);
        counters.rejected_full.store(3, Ordering::Relaxed);
        counters.batches.store(4, Ordering::Relaxed);
        counters.max_coalesced.store(5, Ordering::Relaxed);
        counters.mirror_cascade(ldpc_core::CascadeStats {
            stage_frames: [10, 7, 2],
            escalations: 9,
        });
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 1, 2);
        assert_eq!(stats.code, code);
        assert_eq!(stats.completed(), 9);
        assert_eq!(stats.in_flight(), 1);
        assert_eq!(stats.rejected_full, 3);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.max_coalesced, 5);
        assert_eq!(stats.cascade_escalations, 9);
        assert_eq!(stats.cascade_stage_frames, [10, 7, 2]);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.pool_workspaces_created, 2);
    }

    #[test]
    fn mirror_cascade_stores_rather_than_adds() {
        let counters = ShardCounters::default();
        for total in [3u64, 8, 21] {
            counters.mirror_cascade(ldpc_core::CascadeStats {
                stage_frames: [total, total / 2, 0],
                escalations: total / 2,
            });
        }
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 0, 0);
        assert_eq!(stats.cascade_stage_frames, [21, 10, 0]);
        assert_eq!(stats.cascade_escalations, 10);
    }
}
