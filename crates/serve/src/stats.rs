//! Per-shard serving counters, the latency histogram, and their public
//! snapshot forms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ldpc_codes::CodeId;

use crate::policy::{Priority, ShardPolicy};

/// Log-bucketed latency histogram: power-of-two octaves split into
/// `2^SUB_BITS` linear sub-buckets, so relative resolution is a constant
/// ~`1/2^SUB_BITS` across the whole nanosecond-to-minutes range. Recording
/// is one relaxed `fetch_add`; percentile extraction walks the cumulative
/// counts and reports the matched bucket's upper bound (conservative:
/// percentiles read slightly high, never low — the right bias for SLO
/// gating).
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    max_nanos: AtomicU64,
}

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Enough buckets for every `u64` nanosecond value (index ≤ (64-3+1)·8).
const BUCKETS: usize = ((64 - SUB_BITS as usize + 1) + 1) * SUB as usize;

fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let msb = 63 - u64::from(nanos.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let sub = (nanos >> shift) - SUB;
    ((shift + 1) * SUB + sub) as usize
}

/// Largest value mapping to `index` — what percentiles report.
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let shift = index / SUB - 1;
    let sub = index % SUB;
    let low = (SUB + sub) << shift;
    low + ((1u64 << shift) - 1)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub(crate) fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LatencyStats {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_nanos = self.max_nanos.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the order statistic the quantile asks for.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i).min(max_nanos);
                }
            }
            max_nanos
        };
        LatencyStats {
            count,
            p50_nanos: percentile(0.50),
            p99_nanos: percentile(0.99),
            p999_nanos: percentile(0.999),
            max_nanos,
        }
    }
}

/// Completion-latency percentiles of one shard's decoded frames, measured
/// from frame arrival (submission accept) to outcome completion.
///
/// Extracted from a log-bucketed histogram with ~12% relative resolution;
/// each percentile reports its bucket's upper bound, so values read
/// slightly high, never low. Only *decoded* frames record latency — shed,
/// expired and failed frames are accounted in their own counters instead of
/// polluting the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct LatencyStats {
    /// Decoded frames measured.
    pub count: u64,
    /// Median completion latency, in nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile completion latency, in nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile completion latency, in nanoseconds.
    pub p999_nanos: u64,
    /// Worst observed completion latency, in nanoseconds.
    pub max_nanos: u64,
}

impl LatencyStats {
    /// Median completion latency.
    #[must_use]
    pub fn p50(&self) -> Duration {
        Duration::from_nanos(self.p50_nanos)
    }

    /// 99th-percentile completion latency.
    #[must_use]
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.p99_nanos)
    }

    /// 99.9th-percentile completion latency.
    #[must_use]
    pub fn p999(&self) -> Duration {
        Duration::from_nanos(self.p999_nanos)
    }

    /// Worst observed completion latency.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }
}

/// Live counters one shard's submit paths and dispatch workers update.
/// Reads are relaxed snapshots — consistent enough for monitoring and for
/// quiescent assertions (after `shutdown`, all counters are final).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Frames accepted into the ingest queue (or shed at admission).
    pub accepted: AtomicU64,
    /// Non-blocking refusals due to a full queue (backpressure events).
    pub rejected_full: AtomicU64,
    /// Frames decoded and completed with an output.
    pub decoded: AtomicU64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: AtomicU64,
    /// Frames shed by admission control (deadline unmeetable; see
    /// [`crate::DecodeOutcome::Shed`]).
    pub shed: AtomicU64,
    /// Frames completed with a decode-engine error.
    pub failed: AtomicU64,
    /// Coalesced `decode_batch` calls issued.
    pub batches: AtomicU64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: AtomicU64,
    /// EWMA of the observed per-frame decode cost, in nanoseconds; zero
    /// until the first batch unless seeded from
    /// [`ShardPolicy::expected_frame_cost`]. Drives shedding decisions.
    pub est_frame_nanos: AtomicU64,
    /// Service-wide dispatch sequence number of this shard's first decoded
    /// batch, plus one (zero = never dispatched). Makes cross-shard dispatch
    /// order — the observable effect of [`Priority`] — testable.
    pub first_dispatch_seq: AtomicU64,
    /// Completion-latency histogram of decoded frames.
    pub latency: LatencyHistogram,
    /// Cascade escalation events (stage ≥ 2 entries), mirrored from the
    /// shard decoder's [`ldpc_core::CascadeStats`] after every batch; zero
    /// for non-cascade decoders.
    pub cascade_escalations: AtomicU64,
    /// Frames decoded per cascade stage, mirrored like
    /// [`ShardCounters::cascade_escalations`].
    pub cascade_stage_frames: [AtomicU64; 3],
}

impl ShardCounters {
    pub(crate) fn snapshot(
        &self,
        code: CodeId,
        queue_depth: usize,
        pool_workspaces_created: usize,
        policy: &ShardPolicy,
        effective_max_batch: usize,
    ) -> ShardStats {
        let first_dispatch_seq = self.first_dispatch_seq.load(Ordering::Relaxed);
        ShardStats {
            code,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            est_frame_nanos: self.est_frame_nanos.load(Ordering::Relaxed),
            first_dispatch_order: first_dispatch_seq.checked_sub(1),
            latency: self.latency.snapshot(),
            cascade_escalations: self.cascade_escalations.load(Ordering::Relaxed),
            cascade_stage_frames: [
                self.cascade_stage_frames[0].load(Ordering::Relaxed),
                self.cascade_stage_frames[1].load(Ordering::Relaxed),
                self.cascade_stage_frames[2].load(Ordering::Relaxed),
            ],
            queue_depth,
            pool_workspaces_created,
            priority: policy.priority,
            slo: policy.slo,
            effective_max_batch,
        }
    }

    /// Folds one observed batch into the per-frame cost EWMA
    /// (`new = (3·old + observed) / 4`; the first observation seeds it).
    pub(crate) fn observe_batch_cost(&self, elapsed: Duration, frames: usize) {
        if frames == 0 {
            return;
        }
        let per_frame = u64::try_from(elapsed.as_nanos() / frames as u128).unwrap_or(u64::MAX);
        let old = self.est_frame_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_frame
        } else {
            (3 * (old / 4)).saturating_add(per_frame / 4).max(1)
        };
        self.est_frame_nanos.store(new, Ordering::Relaxed);
    }

    /// Stamps the shard's first dispatch with the service-wide sequence
    /// number `seq` (0-based); later dispatches leave it untouched.
    pub(crate) fn stamp_dispatch(&self, seq: u64) {
        let _ = self.first_dispatch_seq.compare_exchange(
            0,
            seq + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Mirrors a cascade decoder's live stage counters into the shard
    /// counters (stores, not adds: each shard owns a detached decoder
    /// clone, so the decoder's totals *are* the shard's totals).
    pub(crate) fn mirror_cascade(&self, stats: ldpc_core::CascadeStats) {
        self.cascade_escalations
            .store(stats.escalations, Ordering::Relaxed);
        for (counter, frames) in self.cascade_stage_frames.iter().zip(stats.stage_frames) {
            counter.store(frames, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one shard's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// The mode this shard serves.
    pub code: CodeId,
    /// Frames accepted (including frames admission control then shed —
    /// a shed frame is accounted, never silently dropped).
    pub accepted: u64,
    /// Non-blocking submission refusals due to a full queue (backpressure
    /// events).
    pub rejected_full: u64,
    /// Frames decoded and completed with an output.
    pub decoded: u64,
    /// Frames completed as expired (deadline passed before decoding).
    pub expired: u64,
    /// Frames shed by admission control: their deadline was still ahead but
    /// unmeetable given the shard's queue depth and observed decode cost,
    /// so they resolved as [`crate::DecodeOutcome::Shed`] without decoder
    /// time. Zero unless the shard's [`ShardPolicy::shed`] is enabled.
    pub shed: u64,
    /// Frames completed with a decode-engine error.
    pub failed: u64,
    /// Coalesced `decode_batch` calls the shard's dispatches issued.
    pub batches: u64,
    /// Largest number of frames coalesced into one batch.
    pub max_coalesced: u64,
    /// EWMA of the observed per-frame decode cost, in nanoseconds (zero
    /// until the first batch unless seeded through
    /// [`ShardPolicy::expected_frame_cost`]). This is the estimate the
    /// dispatcher's shedding and micro-batch timing decisions use.
    pub est_frame_nanos: u64,
    /// Service-wide sequence number (0-based) of this shard's first decoded
    /// batch; `None` if the shard never dispatched. Later-served shards
    /// carry larger numbers — the observable form of [`Priority`] ordering.
    pub first_dispatch_order: Option<u64>,
    /// Completion-latency percentiles of decoded frames.
    pub latency: LatencyStats,
    /// Cascade escalation events: frames this shard's decoder re-decoded at
    /// stage ≥ 2 of its ladder. Zero for non-cascade decoders. A rising
    /// escalation *rate* (escalations ÷ decoded) under fixed traffic is the
    /// serving-layer signal that channel conditions — or a decoder
    /// regression — are pushing frames off the cheap path.
    pub cascade_escalations: u64,
    /// Frames decoded per cascade stage (stage 1 counts every frame its
    /// groups entered with; stages 2/3 count escalated survivors). All zero
    /// for non-cascade decoders.
    pub cascade_stage_frames: [u64; 3],
    /// Frames queued but not yet claimed by a dispatch worker at snapshot
    /// time.
    pub queue_depth: usize,
    /// Workspaces ever built by the decoder's workspace pool. The pool is
    /// shared by all shards of one service (shelves are keyed per mode), so
    /// this value is service-global; it being stable across snapshots is the
    /// observable form of "steady-state serving allocates no decoder state".
    pub pool_workspaces_created: usize,
    /// The shard's dispatch priority class, echoed from its policy.
    pub priority: Priority,
    /// The shard's latency SLO, echoed from its policy.
    pub slo: Option<Duration>,
    /// The shard's batch ceiling after group-width snapping of
    /// [`crate::ServiceConfig::max_batch`].
    pub effective_max_batch: usize,
}

impl ShardStats {
    /// Frames resolved so far (decoded + expired + shed + failed).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.decoded + self.expired + self.shed + self.failed
    }

    /// Accepted frames not yet resolved. Saturating: the counters are
    /// relaxed-atomic snapshots, so a racing reader could otherwise observe
    /// a completion fractionally ahead of another shard event.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.accepted.saturating_sub(self.completed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeRate, Standard};

    #[test]
    fn snapshot_carries_all_counters() {
        let counters = ShardCounters::default();
        counters.accepted.store(12, Ordering::Relaxed);
        counters.decoded.store(6, Ordering::Relaxed);
        counters.expired.store(2, Ordering::Relaxed);
        counters.shed.store(2, Ordering::Relaxed);
        counters.failed.store(1, Ordering::Relaxed);
        counters.rejected_full.store(3, Ordering::Relaxed);
        counters.batches.store(4, Ordering::Relaxed);
        counters.max_coalesced.store(5, Ordering::Relaxed);
        counters.stamp_dispatch(7);
        counters.stamp_dispatch(9); // later dispatches do not overwrite
        counters.mirror_cascade(ldpc_core::CascadeStats {
            stage_frames: [10, 7, 2],
            escalations: 9,
        });
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let policy = ShardPolicy::with_slo(Duration::from_millis(8)).priority(Priority::High);
        let stats = counters.snapshot(code, 1, 2, &policy, 30);
        assert_eq!(stats.code, code);
        assert_eq!(stats.completed(), 11);
        assert_eq!(stats.in_flight(), 1);
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.rejected_full, 3);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.max_coalesced, 5);
        assert_eq!(stats.first_dispatch_order, Some(7));
        assert_eq!(stats.cascade_escalations, 9);
        assert_eq!(stats.cascade_stage_frames, [10, 7, 2]);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.pool_workspaces_created, 2);
        assert_eq!(stats.priority, Priority::High);
        assert_eq!(stats.slo, Some(Duration::from_millis(8)));
        assert_eq!(stats.effective_max_batch, 30);
    }

    #[test]
    fn never_dispatched_shards_have_no_dispatch_order() {
        let counters = ShardCounters::default();
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 0, 0, &ShardPolicy::default(), 32);
        assert_eq!(stats.first_dispatch_order, None);
    }

    #[test]
    fn mirror_cascade_stores_rather_than_adds() {
        let counters = ShardCounters::default();
        for total in [3u64, 8, 21] {
            counters.mirror_cascade(ldpc_core::CascadeStats {
                stage_frames: [total, total / 2, 0],
                escalations: total / 2,
            });
        }
        let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576);
        let stats = counters.snapshot(code, 0, 0, &ShardPolicy::default(), 32);
        assert_eq!(stats.cascade_stage_frames, [21, 10, 0]);
        assert_eq!(stats.cascade_escalations, 10);
    }

    #[test]
    fn cost_ewma_seeds_then_smooths() {
        let counters = ShardCounters::default();
        counters.observe_batch_cost(Duration::from_micros(40), 4);
        assert_eq!(counters.est_frame_nanos.load(Ordering::Relaxed), 10_000);
        counters.observe_batch_cost(Duration::from_micros(80), 4);
        let est = counters.est_frame_nanos.load(Ordering::Relaxed);
        assert!(
            est > 10_000 && est < 20_000,
            "EWMA moves toward the new observation: {est}"
        );
        counters.observe_batch_cost(Duration::from_secs(1), 0); // no-op
        assert_eq!(counters.est_frame_nanos.load(Ordering::Relaxed), est);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_bounded() {
        let mut last = 0usize;
        for nanos in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_index(nanos);
            assert!(idx >= last, "bucket index must be monotone in the value");
            assert!(idx < BUCKETS);
            assert!(
                bucket_upper_bound(idx) >= nanos,
                "upper bound must cover the value: {nanos}"
            );
            last = idx;
        }
    }

    #[test]
    fn latency_percentiles_read_conservatively_high() {
        let hist = LatencyHistogram::default();
        for ms in 1..=100u64 {
            hist.record(Duration::from_millis(ms));
        }
        let stats = hist.snapshot();
        assert_eq!(stats.count, 100);
        // Exact order statistics: p50 = 50 ms, p99 = 99 ms, p999/max = 100 ms.
        // Bucketing may round up by one sub-bucket width (~12%), never down.
        let ms = |nanos: u64| nanos as f64 / 1e6;
        assert!((50.0..60.0).contains(&ms(stats.p50_nanos)), "{stats:?}");
        assert!((99.0..115.0).contains(&ms(stats.p99_nanos)), "{stats:?}");
        assert!(stats.p999_nanos <= stats.max_nanos);
        assert_eq!(stats.max(), Duration::from_millis(100));
        assert!(stats.p50() <= stats.p99() && stats.p99() <= stats.p999());
    }

    #[test]
    fn empty_histogram_snapshots_to_zeroes() {
        let stats = LatencyHistogram::default().snapshot();
        assert_eq!(stats, LatencyStats::default());
    }
}
