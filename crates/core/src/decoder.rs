//! The layered belief-propagation decoder (Algorithm 1 of the paper).
//!
//! [`LayeredDecoder`] implements the layered schedule generically over a
//! [`DecoderArithmetic`]: full BP in floating point (reference), full BP in
//! 8-bit fixed point with 3-bit LUTs (the ASIC datapath) or the Min-Sum
//! baseline. One full iteration is divided into `j` sub-iterations; within a
//! sub-iteration the `z` rows of the layer are independent (they are processed
//! by `z` parallel SISO decoders in hardware) and are processed here in a
//! simple loop, producing bit-identical results.
//!
//! The per-row processing follows Algorithm 1 exactly:
//!
//! 1. **Read**: `λ_mn = L_n − Λ_mn` for every `n ∈ N(m)`,
//! 2. **Decode**: `Λ'_mn` from the check-node update (Eq. 1), then
//!    `L'_n = λ_mn + Λ'_mn`,
//! 3. **Write back** `L'_n` and `Λ'_mn`.
//!
//! The hot path runs against a [`CompiledCode`] (flattened schedule +
//! circulant index tables) and a reusable [`DecodeWorkspace`], so steady-state
//! decoding allocates nothing; see [`crate::engine::Decoder`] for the batched
//! entry points.

use ldpc_codes::{CompiledCode, QcCode};

use crate::arith::DecoderArithmetic;
use crate::early_term::EarlyTermination;
use crate::engine::Decoder;
use crate::error::DecodeError;
use crate::result::{DecodeOutput, DecodeStats};
use crate::schedule::LayerOrderPolicy;
use crate::workspace::DecodeWorkspace;

/// Decoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderConfig {
    /// Maximum number of full iterations `I` (the paper uses 10).
    pub max_iterations: usize,
    /// Early-termination rule; `None` always runs `max_iterations`.
    pub early_termination: Option<EarlyTermination>,
    /// Also stop as soon as the hard decisions satisfy every parity check
    /// (a common additional criterion; disabled by default so that the
    /// power experiments isolate the paper's LLR-based rule).
    pub stop_on_zero_syndrome: bool,
    /// Layer visiting order.
    pub layer_order: LayerOrderPolicy,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            max_iterations: 10,
            early_termination: Some(EarlyTermination::default()),
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }
}

impl DecoderConfig {
    /// A configuration that always runs the maximum number of iterations
    /// (no early termination, no syndrome stopping).
    #[must_use]
    pub fn fixed_iterations(max_iterations: usize) -> Self {
        DecoderConfig {
            max_iterations,
            early_termination: None,
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }

    fn validate(&self) -> Result<(), DecodeError> {
        if self.max_iterations == 0 {
            return Err(DecodeError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if let LayerOrderPolicy::Custom(order) = &self.layer_order {
            // Self-consistency is checkable without a code (the length match
            // against the code's layer count happens at decode time).
            let mut seen = vec![false; order.len()];
            for &l in order {
                if l >= order.len() || seen[l] {
                    return Err(DecodeError::InvalidConfig {
                        reason: format!(
                            "custom layer order {order:?} is not a permutation of 0..{}",
                            order.len()
                        ),
                    });
                }
                seen[l] = true;
            }
        }
        Ok(())
    }
}

/// The layered (turbo-decoding message passing) LDPC decoder.
#[derive(Debug, Clone)]
pub struct LayeredDecoder<A: DecoderArithmetic> {
    arith: A,
    config: DecoderConfig,
}

impl<A: DecoderArithmetic> LayeredDecoder<A> {
    /// Creates a decoder from an arithmetic back-end and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for nonsensical configurations.
    pub fn new(arith: A, config: DecoderConfig) -> Result<Self, DecodeError> {
        config.validate()?;
        Ok(LayeredDecoder { arith, config })
    }

    /// The arithmetic back-end.
    #[must_use]
    pub fn arithmetic(&self) -> &A {
        &self.arith
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Decodes one frame given its channel LLRs (`2y/σ²`, length `n`).
    ///
    /// Compatibility entry point: compiles the schedule and allocates a fresh
    /// workspace on every call. Hot loops should compile once and use
    /// [`Decoder::decode_into`] / [`Decoder::decode_batch`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `channel_llrs.len()` is
    /// not the code length.
    pub fn decode(&self, code: &QcCode, channel_llrs: &[f64]) -> Result<DecodeOutput, DecodeError> {
        Decoder::decode(self, code, channel_llrs)
    }
}

impl<A: DecoderArithmetic> Decoder for LayeredDecoder<A> {
    type Arith = A;

    fn arithmetic(&self) -> &A {
        &self.arith
    }

    fn config(&self) -> &DecoderConfig {
        &self.config
    }

    fn schedule_name(&self) -> &'static str {
        "layered"
    }

    fn decode_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        out: &mut DecodeOutput,
    ) -> Result<(), DecodeError> {
        if llrs.len() != compiled.n() {
            return Err(DecodeError::LlrLengthMismatch {
                expected: compiled.n(),
                actual: llrs.len(),
            });
        }
        #[cfg(debug_assertions)]
        let steady_fingerprint = ws
            .is_ready_for(compiled, false)
            .then(|| ws.allocation_fingerprint());

        let arith = &self.arith;
        let z = compiled.z();
        let num_layers = compiled.block_rows();
        let info_len = compiled.info_bits();
        let col_index = compiled.col_index();

        // Resolve the layer visit order without allocating: natural is
        // implicit, the shuffled order is precompiled into the schedule,
        // custom was permutation-checked at construction and only needs the
        // cheap length match against this code here.
        let stall_order = matches!(self.config.layer_order, LayerOrderPolicy::StallMinimizing)
            .then(|| compiled.stall_minimizing_order());
        let custom_order = match &self.config.layer_order {
            LayerOrderPolicy::Custom(order) => {
                assert_eq!(
                    order.len(),
                    num_layers,
                    "custom order must cover every layer"
                );
                #[cfg(debug_assertions)]
                crate::engine::validate_custom_order(order, num_layers);
                Some(order.as_slice())
            }
            _ => None,
        };

        // L_n ← channel, Λ ← 0 (Algorithm 1 initialisation).
        ws.prepare(compiled, arith.zero(), false);
        ws.app.extend(llrs.iter().map(|&l| arith.from_channel(l)));

        let mut stats = DecodeStats::default();
        let mut iterations = 0;
        let mut early_terminated = false;

        for _ in 0..self.config.max_iterations {
            for li in 0..num_layers {
                let l = match (stall_order, custom_order) {
                    (Some(order), _) => order[li] as usize,
                    (_, Some(order)) => order[li],
                    _ => li,
                };
                let entries = compiled.layer_entries(l);
                stats.sub_iterations += 1;
                for r in 0..z {
                    // 1) Read: gather λ_mn = L_n − Λ_mn via the index table.
                    ws.row_in.clear();
                    for e in entries {
                        let edge = e.edge_base as usize + r;
                        let col = col_index[edge] as usize;
                        ws.row_in.push(arith.sub(ws.app[col], ws.lambda[edge]));
                    }
                    // 2) Decode: new Λ_mn (Eq. 1) and new L_n.
                    arith.check_node_update(&ws.row_in, &mut ws.row_out);
                    stats.check_node_updates += 1;
                    stats.messages_processed += ws.row_in.len();
                    // 3) Write back.
                    for (slot, e) in entries.iter().enumerate() {
                        let edge = e.edge_base as usize + r;
                        let col = col_index[edge] as usize;
                        ws.lambda[edge] = ws.row_out[slot];
                        ws.app[col] = arith.add(ws.row_in[slot], ws.row_out[slot]);
                    }
                }
            }
            iterations += 1;

            // Early termination (paper's rule, §IV): information-bit hard
            // decisions stable across two iterations and min |L| above the
            // threshold.
            if let Some(rule) = &self.config.early_termination {
                if crate::engine::early_termination_reached(arith, rule.threshold, ws, info_len)
                    && iterations < self.config.max_iterations
                {
                    early_terminated = true;
                    break;
                }
            }

            if self.config.stop_on_zero_syndrome && iterations < self.config.max_iterations {
                ws.hard.clear();
                ws.hard.extend(ws.app.iter().map(|&m| arith.hard_bit(m)));
                if compiled.syndrome_ok(&ws.hard) {
                    break;
                }
            }
        }

        crate::engine::finish_output(
            arith,
            compiled,
            &ws.app,
            out,
            iterations,
            early_terminated,
            stats,
        );

        #[cfg(debug_assertions)]
        if let Some(fingerprint) = steady_fingerprint {
            debug_assert_eq!(
                fingerprint,
                ws.allocation_fingerprint(),
                "steady-state decode_into must not reallocate workspace buffers"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{
        FixedBpArithmetic, FixedMinSumArithmetic, FloatBpArithmetic, FloatMinSumArithmetic,
    };
    use ldpc_channel::awgn::AwgnChannel;
    use ldpc_channel::workload::FrameSource;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn small_code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    fn decode_frames<A: DecoderArithmetic>(
        arith: A,
        config: DecoderConfig,
        ebn0_db: f64,
        frames: usize,
        seed: u64,
    ) -> (usize, usize, f64) {
        let code = small_code();
        let decoder = LayeredDecoder::new(arith, config).unwrap();
        let channel = AwgnChannel::from_ebn0_db(ebn0_db, code.rate());
        let mut source = FrameSource::random(&code, seed).unwrap();
        let mut bit_errors = 0;
        let mut channel_errors = 0;
        let mut total_iterations = 0.0;
        for _ in 0..frames {
            let frame = source.next_frame();
            let llrs = channel.transmit(&frame.codeword, source.noise_rng());
            channel_errors += llrs
                .iter()
                .zip(&frame.codeword)
                .filter(|(&l, &b)| u8::from(l < 0.0) != b)
                .count();
            let out = decoder.decode(&code, &llrs).unwrap();
            bit_errors += out.bit_errors_against(&frame.codeword);
            total_iterations += out.iterations as f64;
        }
        (bit_errors, channel_errors, total_iterations / frames as f64)
    }

    #[test]
    fn rejects_wrong_llr_length() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert!(matches!(
            decoder.decode(&code, &[0.0; 3]),
            Err(DecodeError::LlrLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_iterations() {
        assert!(LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(0)
        )
        .is_err());
    }

    #[test]
    fn noiseless_frame_decodes_in_one_iteration_with_syndrome_stop() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 3).unwrap();
        let frame = source.next_frame();
        // Perfect channel: huge LLRs of the correct sign.
        let llrs: Vec<f64> = frame
            .codeword
            .iter()
            .map(|&b| if b == 0 { 20.0 } else { -20.0 })
            .collect();
        let config = DecoderConfig {
            stop_on_zero_syndrome: true,
            ..DecoderConfig::default()
        };
        let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.hard_bits, frame.codeword);
        assert!(out.parity_satisfied);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn float_bp_corrects_noisy_frames_at_moderate_snr() {
        let (decoded_errors, channel_errors, _) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0, "channel should introduce errors");
        assert!(
            decoded_errors * 20 < channel_errors,
            "decoder should remove almost all channel errors: {decoded_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_forward_backward_matches_float_bp_error_correction() {
        // The 8-bit forward/backward datapath tracks the float reference to
        // within a fraction of a dB.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 20 < channel_errors,
            "8-bit datapath should still decode: {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_sum_extract_still_corrects_errors() {
        // The paper-faithful ⊟-extraction datapath is measurably weaker at
        // 8 bits (see CheckNodeMode docs); it must still remove a substantial
        // fraction of the channel errors at a moderate operating point.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::default(),
            DecoderConfig::default(),
            2.0,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 2 < channel_errors,
            "⊟-extraction datapath should at least halve the channel errors: \
             {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn min_sum_also_decodes_clean_channels() {
        for arith in [
            FloatMinSumArithmetic::default(),
            FloatMinSumArithmetic::with_alpha(1.0),
        ] {
            let (errors, _, _) = decode_frames(arith, DecoderConfig::default(), 3.5, 4, 21);
            assert_eq!(errors, 0, "min-sum should decode clean frames at 3.5 dB");
        }
        let (errors, _, _) = decode_frames(
            FixedMinSumArithmetic::default(),
            DecoderConfig::default(),
            3.5,
            4,
            21,
        );
        assert_eq!(errors, 0);
    }

    #[test]
    fn early_termination_reduces_iterations_at_high_snr() {
        let config_et = DecoderConfig::default();
        let config_no_et = DecoderConfig::fixed_iterations(10);
        let (_, _, avg_et) = decode_frames(FloatBpArithmetic::default(), config_et, 4.0, 6, 5);
        let (_, _, avg_no_et) =
            decode_frames(FloatBpArithmetic::default(), config_no_et, 4.0, 6, 5);
        assert!(avg_no_et >= 10.0 - 1e-9);
        assert!(
            avg_et < 6.0,
            "early termination should cut iterations at 4 dB, got {avg_et}"
        );
    }

    #[test]
    fn early_termination_runs_longer_at_low_snr() {
        let (_, _, avg_low) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            0.0,
            4,
            7,
        );
        let (_, _, avg_high) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            4.5,
            4,
            7,
        );
        assert!(
            avg_low > avg_high,
            "bad channels need more iterations: {avg_low} vs {avg_high}"
        );
    }

    #[test]
    fn layer_order_does_not_change_correctness() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 9).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        for order in [
            LayerOrderPolicy::Natural,
            LayerOrderPolicy::StallMinimizing,
            LayerOrderPolicy::Custom((0..code.block_rows()).rev().collect()),
        ] {
            let config = DecoderConfig {
                layer_order: order,
                ..DecoderConfig::default()
            };
            let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
            let out = decoder.decode(&code, &llrs).unwrap();
            assert_eq!(
                out.bit_errors_against(&frame.codeword),
                0,
                "decoding should succeed regardless of layer order"
            );
        }
    }

    #[test]
    fn custom_order_with_duplicates_is_rejected_at_construction() {
        let config = DecoderConfig {
            layer_order: LayerOrderPolicy::Custom(vec![0, 0, 2]),
            ..DecoderConfig::default()
        };
        assert!(matches!(
            LayeredDecoder::new(FloatBpArithmetic::default(), config),
            Err(DecodeError::InvalidConfig { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "cover every layer")]
    fn custom_order_of_wrong_length_panics_at_decode() {
        let code = small_code();
        let config = DecoderConfig {
            layer_order: LayerOrderPolicy::Custom(vec![2, 0, 1]),
            ..DecoderConfig::default()
        };
        let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
        let _ = decoder.decode(&code, &vec![1.0; code.n()]);
    }

    #[test]
    fn stats_count_operations() {
        let code = small_code();
        let decoder = LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(2),
        )
        .unwrap();
        let llrs = vec![1.0; code.n()];
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.iterations, 2);
        assert_eq!(out.stats.sub_iterations, 2 * code.block_rows());
        assert_eq!(out.stats.check_node_updates, 2 * code.m());
        assert_eq!(out.stats.messages_processed, 2 * code.num_edges());
    }

    #[test]
    fn posterior_llrs_match_hard_bits() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FixedBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let mut source = FrameSource::random(&code, 17).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        let out = decoder.decode(&code, &llrs).unwrap();
        for (l, &b) in out.posterior_llrs.iter().zip(&out.hard_bits) {
            assert_eq!(u8::from(*l < 0.0), b);
        }
    }
}
