//! The layered belief-propagation decoder (Algorithm 1 of the paper).
//!
//! [`LayeredDecoder`] implements the layered schedule generically over a
//! [`DecoderArithmetic`]: full BP in floating point (reference), full BP in
//! 8-bit fixed point with 3-bit LUTs (the ASIC datapath) or the Min-Sum
//! baseline. One full iteration is divided into `j` sub-iterations; within a
//! sub-iteration the `z` rows of the layer are independent (they are processed
//! by `z` parallel SISO decoders in hardware) and are processed here in a
//! simple loop, producing bit-identical results.
//!
//! The per-row processing follows Algorithm 1 exactly:
//!
//! 1. **Read**: `λ_mn = L_n − Λ_mn` for every `n ∈ N(m)`,
//! 2. **Decode**: `Λ'_mn` from the check-node update (Eq. 1), then
//!    `L'_n = λ_mn + Λ'_mn`,
//! 3. **Write back** `L'_n` and `Λ'_mn`.
//!
//! The hot loop is *lane-major*: the `z` independent rows of a layer are the
//! lanes, and each step of the sub-iteration processes all of them at once
//! through the [`LaneKernel`] slice operations — gather `λ` for every lane of
//! a block column as two stride-1 spans (the rotation contract of
//! [`CompiledCode`]'s lane layout), run the check-node update across the
//! whole layer, scatter `Λ'` and `L'` back as stride-1 spans. This is the
//! software shape of the paper's `z`-wide parallel SISO array and is
//! bit-identical to row-serial processing (kept as
//! [`LayeredDecoder::decode_into_reference`]) because the lanes of a layer
//! touch pairwise disjoint L-memory addresses.
//!
//! The hot path runs against a [`CompiledCode`] (flattened schedule +
//! circulant index tables + lane-major SoA layout) and a reusable
//! [`DecodeWorkspace`], so steady-state decoding allocates nothing; see
//! [`crate::engine::Decoder`] for the batched entry points.

use ldpc_codes::{CompiledCode, QcCode};

use crate::arith::{DecoderArithmetic, LaneKernel};
use crate::early_term::EarlyTermination;
use crate::engine::Decoder;
use crate::error::DecodeError;
use crate::pool::WorkspacePool;
use crate::result::{DecodeOutput, DecodeStats};
use crate::schedule::LayerOrderPolicy;
use crate::workspace::DecodeWorkspace;

/// Decoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderConfig {
    /// Maximum number of full iterations `I` (the paper uses 10).
    pub max_iterations: usize,
    /// Early-termination rule; `None` always runs `max_iterations`.
    pub early_termination: Option<EarlyTermination>,
    /// Also stop as soon as the hard decisions satisfy every parity check
    /// (a common additional criterion; disabled by default so that the
    /// power experiments isolate the paper's LLR-based rule).
    pub stop_on_zero_syndrome: bool,
    /// Layer visiting order.
    pub layer_order: LayerOrderPolicy,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            max_iterations: 10,
            early_termination: Some(EarlyTermination::default()),
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }
}

impl DecoderConfig {
    /// A configuration that always runs the maximum number of iterations
    /// (no early termination, no syndrome stopping).
    #[must_use]
    pub fn fixed_iterations(max_iterations: usize) -> Self {
        DecoderConfig {
            max_iterations,
            early_termination: None,
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }

    fn validate(&self) -> Result<(), DecodeError> {
        if self.max_iterations == 0 {
            return Err(DecodeError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if let LayerOrderPolicy::Custom(order) = &self.layer_order {
            // Self-consistency is checkable without a code (the length match
            // against the code's layer count happens at decode time).
            let mut seen = vec![false; order.len()];
            for &l in order {
                if l >= order.len() || seen[l] {
                    return Err(DecodeError::InvalidConfig {
                        reason: format!(
                            "custom layer order {order:?} is not a permutation of 0..{}",
                            order.len()
                        ),
                    });
                }
                seen[l] = true;
            }
        }
        Ok(())
    }
}

/// The configured layer visit order, resolved against one compiled code
/// without allocating: natural is implicit, the shuffled order is precompiled
/// into the schedule, custom was permutation-checked at construction and only
/// needs the cheap length match against this code.
enum ResolvedOrder<'a> {
    Natural,
    Stall(&'a [u32]),
    Custom(&'a [usize]),
}

impl<'a> ResolvedOrder<'a> {
    fn new(config: &'a DecoderConfig, compiled: &'a CompiledCode, num_layers: usize) -> Self {
        match &config.layer_order {
            LayerOrderPolicy::StallMinimizing => {
                ResolvedOrder::Stall(compiled.stall_minimizing_order())
            }
            LayerOrderPolicy::Custom(order) => {
                assert_eq!(
                    order.len(),
                    num_layers,
                    "custom order must cover every layer"
                );
                #[cfg(debug_assertions)]
                crate::engine::validate_custom_order(order, num_layers);
                ResolvedOrder::Custom(order.as_slice())
            }
            LayerOrderPolicy::Natural => ResolvedOrder::Natural,
        }
    }

    #[inline]
    fn layer(&self, li: usize) -> usize {
        match self {
            ResolvedOrder::Natural => li,
            ResolvedOrder::Stall(order) => order[li] as usize,
            ResolvedOrder::Custom(order) => order[li],
        }
    }
}

/// One lane-major sub-iteration over a `width`-frame group: updates every row
/// of `layer` of every packed frame at once through the [`LaneKernel`] slice
/// operations. Pure stride-1 gather/compute/scatter per the rotation contract
/// of [`CompiledCode`]'s lane layout — with the frame-innermost interleave of
/// [`crate::group`], every single-frame span simply scales by `width`, so the
/// kernels see `z · width`-lane panels. Bit-identical to processing the rows
/// (and frames) serially because the lanes of a layer touch pairwise disjoint
/// L-memory addresses and every kernel operation is element-wise per lane.
/// `width == 1` is exactly the single-frame hot path.
fn lane_layer_update<A: LaneKernel>(
    arith: &A,
    compiled: &CompiledCode,
    layer: usize,
    width: usize,
    ws: &mut DecodeWorkspace<A::Msg>,
) {
    let z = compiled.z();
    let zw = z * width;
    let lanes = compiled.layer_lanes(layer);
    let degree = lanes.degree();
    let lane_in = &mut ws.lane_in[..degree * zw];
    let lane_out = &mut ws.lane_out[..degree * zw];

    // 1) Read: gather λ = L − Λ for all z·width lanes of each block column.
    //    Lane (r, f) reads L at (col_base + ((r + shift) mod z))·width + f, so
    //    the lanes split into the two contiguous spans
    //    [(col_base+shift)·width, (col_base+z)·width) and
    //    [col_base·width, (col_base+shift)·width); Λ is lane-contiguous by
    //    construction.
    for slot in 0..degree {
        let eb = lanes.edge_base[slot] as usize * width;
        let cb = lanes.col_base[slot] as usize * width;
        let split = (z - lanes.shift[slot] as usize) * width;
        let lam = &mut lane_in[slot * zw..(slot + 1) * zw];
        let lambda = &ws.lambda[eb..eb + zw];
        arith.sub_lanes(
            &ws.app[cb + zw - split..cb + zw],
            &lambda[..split],
            &mut lam[..split],
        );
        arith.sub_lanes(
            &ws.app[cb..cb + zw - split],
            &lambda[split..],
            &mut lam[split..],
        );
    }

    // 2) Decode: the check-node update of every lane (Eq. 1), vectorised
    //    across the z·width SISO lanes.
    arith.check_node_update_lanes(zw, lane_in, lane_out, &mut ws.lane_scratch);

    // 3) Write back: Λ ← Λ′ is a straight lane-contiguous copy; L ← λ + Λ′
    //    scatters through the same two contiguous spans as the gather.
    for slot in 0..degree {
        let eb = lanes.edge_base[slot] as usize * width;
        let cb = lanes.col_base[slot] as usize * width;
        let split = (z - lanes.shift[slot] as usize) * width;
        let lam = &lane_in[slot * zw..(slot + 1) * zw];
        let upd = &lane_out[slot * zw..(slot + 1) * zw];
        ws.lambda[eb..eb + zw].copy_from_slice(upd);
        arith.add_lanes(
            &lam[..split],
            &upd[..split],
            &mut ws.app[cb + zw - split..cb + zw],
        );
        arith.add_lanes(
            &lam[split..],
            &upd[split..],
            &mut ws.app[cb..cb + zw - split],
        );
    }
}

/// The early-termination check of one packed frame of a group (paper's rule,
/// §IV): exactly [`crate::engine::early_termination_reached`] applied to the
/// strided column `slot` of the frame-major APP buffer, with the decision
/// history kept per original frame index so it follows the frame through
/// compaction.
fn group_early_termination<A: DecoderArithmetic>(
    arith: &A,
    threshold: f64,
    ws: &mut DecodeWorkspace<A::Msg>,
    info_len: usize,
    width: usize,
    slot: usize,
    frame: usize,
) -> bool {
    let DecodeWorkspace {
        app,
        info_hard,
        group_histories,
        ..
    } = ws;
    let info = &app[..info_len * width];
    info_hard.clear();
    info_hard.extend(
        info.iter()
            .skip(slot)
            .step_by(width)
            .map(|&m| arith.hard_bit(m)),
    );
    let min_abs = info
        .iter()
        .skip(slot)
        .step_by(width)
        .map(|&m| arith.magnitude(m))
        .fold(f64::INFINITY, f64::min);
    let stable = group_histories[frame].stable_update(info_hard);
    stable && min_abs > threshold
}

/// The operation counts of one frame after `iterations` full group
/// iterations — identical to what the single-frame lane path accumulates
/// (one sub-iteration, `z` check-node updates and `degree · z` messages per
/// layer, summed over all layers and iterations).
fn group_frame_stats(compiled: &CompiledCode, iterations: usize) -> DecodeStats {
    DecodeStats {
        sub_iterations: iterations * compiled.block_rows(),
        check_node_updates: iterations * compiled.m(),
        messages_processed: iterations * compiled.num_edges(),
    }
}

/// One row-serial sub-iteration (the reference kernel): walks the `z` rows of
/// `layer` one at a time through the scalar arithmetic, gathering via the
/// per-edge `col_index` table. Per-row processing follows Algorithm 1 exactly:
/// read `λ = L − Λ`, check-node update, write back `Λ'` and `L'`.
fn row_layer_update<A: DecoderArithmetic>(
    arith: &A,
    compiled: &CompiledCode,
    layer: usize,
    ws: &mut DecodeWorkspace<A::Msg>,
    stats: &mut DecodeStats,
) {
    let z = compiled.z();
    let col_index = compiled.col_index();
    let entries = compiled.layer_entries(layer);
    stats.sub_iterations += 1;
    for r in 0..z {
        ws.row_in.clear();
        for e in entries {
            let edge = e.edge_base as usize + r;
            let col = col_index[edge] as usize;
            ws.row_in.push(arith.sub(ws.app[col], ws.lambda[edge]));
        }
        arith.check_node_update(&ws.row_in, &mut ws.row_out);
        stats.check_node_updates += 1;
        stats.messages_processed += ws.row_in.len();
        for (slot, e) in entries.iter().enumerate() {
            let edge = e.edge_base as usize + r;
            let col = col_index[edge] as usize;
            ws.lambda[edge] = ws.row_out[slot];
            ws.app[col] = arith.add(ws.row_in[slot], ws.row_out[slot]);
        }
    }
}

/// The layered (turbo-decoding message passing) LDPC decoder.
///
/// Owns a [`WorkspacePool`] for the batch engine (shared by clones), so
/// repeated `decode_batch` calls of the same mode allocate nothing.
#[derive(Debug, Clone)]
pub struct LayeredDecoder<A: DecoderArithmetic> {
    arith: A,
    config: DecoderConfig,
    pool: std::sync::Arc<WorkspacePool<A::Msg>>,
}

impl<A: DecoderArithmetic> LayeredDecoder<A> {
    /// Creates a decoder from an arithmetic back-end and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for nonsensical configurations.
    pub fn new(arith: A, config: DecoderConfig) -> Result<Self, DecodeError> {
        config.validate()?;
        Ok(LayeredDecoder {
            arith,
            config,
            pool: std::sync::Arc::new(WorkspacePool::new()),
        })
    }

    /// The arithmetic back-end.
    #[must_use]
    pub fn arithmetic(&self) -> &A {
        &self.arith
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Row-serial reference kernel: decodes one frame exactly like
    /// [`Decoder::decode_into`], but walking the `z` rows of every layer one
    /// at a time through the scalar [`DecoderArithmetic`] calls instead of the
    /// lane-major [`LaneKernel`] path. The two paths are required to be
    /// bit-identical for every back-end; this one is kept as the comparison
    /// baseline for tests and benchmarks (it needs no [`LaneKernel`] bound).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `llrs.len() != n`.
    pub fn decode_into_reference(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        out: &mut DecodeOutput,
    ) -> Result<(), DecodeError> {
        self.decode_layered_with(compiled, llrs, ws, out, row_layer_update)
    }

    /// The shared layered-schedule driver: Algorithm 1's initialisation,
    /// iteration control (layer visit order, early termination, zero-syndrome
    /// stop) and output finishing, parameterized over the per-layer update so
    /// the lane-major hot path and the row-serial reference run the exact
    /// same control flow around their different kernels.
    fn decode_layered_with<F>(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        out: &mut DecodeOutput,
        mut layer_update: F,
    ) -> Result<(), DecodeError>
    where
        F: FnMut(&A, &CompiledCode, usize, &mut DecodeWorkspace<A::Msg>, &mut DecodeStats),
    {
        if llrs.len() != compiled.n() {
            return Err(DecodeError::LlrLengthMismatch {
                expected: compiled.n(),
                actual: llrs.len(),
            });
        }
        #[cfg(debug_assertions)]
        let steady_fingerprint = ws
            .is_ready_for(compiled, false)
            .then(|| ws.allocation_fingerprint());

        let arith = &self.arith;
        let num_layers = compiled.block_rows();
        let info_len = compiled.info_bits();
        let order = ResolvedOrder::new(&self.config, compiled, num_layers);

        // L_n ← channel, Λ ← 0 (Algorithm 1 initialisation).
        ws.prepare(compiled, arith.zero(), false);
        ws.app.extend(llrs.iter().map(|&l| arith.from_channel(l)));

        let mut stats = DecodeStats::default();
        let mut iterations = 0;
        let mut early_terminated = false;

        for _ in 0..self.config.max_iterations {
            for li in 0..num_layers {
                layer_update(arith, compiled, order.layer(li), ws, &mut stats);
            }
            iterations += 1;

            // Early termination (paper's rule, §IV): information-bit hard
            // decisions stable across two iterations and min |L| above the
            // threshold.
            if let Some(rule) = &self.config.early_termination {
                if crate::engine::early_termination_reached(arith, rule.threshold, ws, info_len)
                    && iterations < self.config.max_iterations
                {
                    early_terminated = true;
                    break;
                }
            }
            if self.config.stop_on_zero_syndrome && iterations < self.config.max_iterations {
                ws.hard.clear();
                ws.hard.extend(ws.app.iter().map(|&m| arith.hard_bit(m)));
                if compiled.syndrome_ok(&ws.hard) {
                    break;
                }
            }
        }

        crate::engine::finish_output(
            arith,
            compiled,
            &ws.app,
            out,
            iterations,
            early_terminated,
            stats,
        );

        #[cfg(debug_assertions)]
        if let Some(fingerprint) = steady_fingerprint {
            debug_assert_eq!(
                fingerprint,
                ws.allocation_fingerprint(),
                "steady-state decode_into must not reallocate workspace buffers"
            );
        }
        Ok(())
    }
}

impl<A: LaneKernel> LayeredDecoder<A> {
    /// Decodes one frame given its channel LLRs (`2y/σ²`, length `n`).
    ///
    /// Compatibility entry point: compiles the schedule and allocates a fresh
    /// workspace on every call. Hot loops should compile once and use
    /// [`Decoder::decode_into`] / [`Decoder::decode_batch`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `channel_llrs.len()` is
    /// not the code length.
    pub fn decode(&self, code: &QcCode, channel_llrs: &[f64]) -> Result<DecodeOutput, DecodeError> {
        Decoder::decode(self, code, channel_llrs)
    }

    /// The frame-major group driver behind
    /// [`Decoder::decode_group_into`]: packs the frames frame-innermost (see
    /// [`crate::group`]), runs the layered schedule over `z · width`-lane
    /// panels, applies the termination rules *per frame* in the same order as
    /// the single-frame engine, and compacts converged frames out of the
    /// group so they skip all remaining-iteration work. Frame `f` of the
    /// result is bit-identical to `decode_into` on that frame alone.
    fn decode_group_layered(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        outs: &mut [DecodeOutput],
    ) -> Result<(), DecodeError> {
        let n = compiled.n();
        let frames = outs.len();
        if llrs.len() != frames * n {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "group of {frames} outputs needs {} LLRs, got {}",
                    frames * n,
                    llrs.len()
                ),
            });
        }
        if frames == 0 {
            return Ok(());
        }
        if frames == 1 {
            // A group of one is exactly the single-frame hot path.
            return Decoder::decode_into(self, compiled, llrs, ws, &mut outs[0]);
        }

        #[cfg(debug_assertions)]
        let steady_fingerprint = ws
            .is_ready_for_group(compiled, frames)
            .then(|| ws.group_fingerprint());

        let arith = &self.arith;
        let num_layers = compiled.block_rows();
        let info_len = compiled.info_bits();
        let order = ResolvedOrder::new(&self.config, compiled, num_layers);

        // L ← channel, Λ ← 0, frame-innermost (Algorithm 1 initialisation,
        // interleaved: app[col · width + f]).
        ws.prepare_group(compiled, arith.zero(), frames);
        ws.app.resize(n * frames, arith.zero());
        for (f, frame) in llrs.chunks_exact(n).enumerate() {
            for (col, &l) in frame.iter().enumerate() {
                ws.app[col * frames + f] = arith.from_channel(l);
            }
        }

        let mut width = frames;
        let mut iterations = 0usize;
        loop {
            for li in 0..num_layers {
                lane_layer_update(arith, compiled, order.layer(li), width, ws);
            }
            iterations += 1;
            let last = iterations == self.config.max_iterations;

            // Per-frame termination, same rule order as the single-frame
            // engine (early termination first, then the syndrome stop).
            // Finished frames produce their output now; survivors are listed
            // in `group_keep`.
            ws.group_keep.clear();
            for slot in 0..width {
                let frame = ws.group_active[slot] as usize;
                let mut done = last;
                let mut early = false;
                if let Some(rule) = &self.config.early_termination {
                    // The history update runs every iteration for every live
                    // frame, exactly like the single-frame engine.
                    let reached = group_early_termination(
                        arith,
                        rule.threshold,
                        ws,
                        info_len,
                        width,
                        slot,
                        frame,
                    );
                    if reached && !last {
                        done = true;
                        early = true;
                    }
                }
                if !done && !last && self.config.stop_on_zero_syndrome {
                    ws.hard.clear();
                    ws.hard.extend(
                        ws.app
                            .iter()
                            .skip(slot)
                            .step_by(width)
                            .map(|&m| arith.hard_bit(m)),
                    );
                    if compiled.syndrome_ok(&ws.hard) {
                        done = true;
                    }
                }
                if done {
                    crate::group::extract_column(&ws.app, width, slot, &mut ws.group_frame);
                    crate::engine::finish_output(
                        arith,
                        compiled,
                        &ws.group_frame,
                        &mut outs[frame],
                        iterations,
                        early,
                        group_frame_stats(compiled, iterations),
                    );
                } else {
                    ws.group_keep.push(slot as u32);
                }
            }
            if ws.group_keep.is_empty() {
                break;
            }
            if ws.group_keep.len() < width {
                // Converged frames drop out: repack the survivors so the
                // remaining iterations do strictly less work. (`take` swaps
                // the keep buffer out to satisfy the borrow checker; it is
                // put back below, so nothing reallocates.)
                let keep = std::mem::take(&mut ws.group_keep);
                crate::group::compact_columns(&mut ws.app, n, width, &keep);
                crate::group::compact_columns(&mut ws.lambda, compiled.num_edges(), width, &keep);
                for (a, &s) in keep.iter().enumerate() {
                    ws.group_active[a] = ws.group_active[s as usize];
                }
                width = keep.len();
                ws.group_active.truncate(width);
                ws.group_keep = keep;
            }
        }

        #[cfg(debug_assertions)]
        if let Some(fingerprint) = steady_fingerprint {
            debug_assert_eq!(
                fingerprint,
                ws.group_fingerprint(),
                "steady-state group decode must not reallocate workspace buffers"
            );
        }
        Ok(())
    }
}

impl<A: LaneKernel> Decoder for LayeredDecoder<A> {
    type Arith = A;

    fn arithmetic(&self) -> &A {
        &self.arith
    }

    fn config(&self) -> &DecoderConfig {
        &self.config
    }

    fn schedule_name(&self) -> &'static str {
        "layered"
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool<A::Msg>> {
        Some(&self.pool)
    }

    fn decode_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        out: &mut DecodeOutput,
    ) -> Result<(), DecodeError> {
        // All z rows (lanes) of each layer at once — the software analogue of
        // the paper's z parallel SISO units.
        self.decode_layered_with(compiled, llrs, ws, out, |arith, compiled, l, ws, stats| {
            lane_layer_update(arith, compiled, l, 1, ws);
            let z = compiled.z();
            stats.sub_iterations += 1;
            stats.check_node_updates += z;
            stats.messages_processed += compiled.layer_degree(l) * z;
        })
    }

    fn preferred_group_width(&self, compiled: &CompiledCode) -> usize {
        if self.arith.prefers_frame_groups() {
            crate::group::group_width_for(compiled.z())
        } else {
            1
        }
    }

    fn decode_group_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<A::Msg>,
        outs: &mut [DecodeOutput],
    ) -> Result<(), DecodeError> {
        self.decode_group_layered(compiled, llrs, ws, outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{
        FixedBpArithmetic, FixedMinSumArithmetic, FloatBpArithmetic, FloatMinSumArithmetic,
    };
    use ldpc_channel::awgn::AwgnChannel;
    use ldpc_channel::workload::FrameSource;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn small_code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    fn decode_frames<A: LaneKernel>(
        arith: A,
        config: DecoderConfig,
        ebn0_db: f64,
        frames: usize,
        seed: u64,
    ) -> (usize, usize, f64) {
        let code = small_code();
        let decoder = LayeredDecoder::new(arith, config).unwrap();
        let channel = AwgnChannel::from_ebn0_db(ebn0_db, code.rate());
        let mut source = FrameSource::random(&code, seed).unwrap();
        let mut bit_errors = 0;
        let mut channel_errors = 0;
        let mut total_iterations = 0.0;
        for _ in 0..frames {
            let frame = source.next_frame();
            let llrs = channel.transmit(&frame.codeword, source.noise_rng());
            channel_errors += llrs
                .iter()
                .zip(&frame.codeword)
                .filter(|(&l, &b)| u8::from(l < 0.0) != b)
                .count();
            let out = decoder.decode(&code, &llrs).unwrap();
            bit_errors += out.bit_errors_against(&frame.codeword);
            total_iterations += out.iterations as f64;
        }
        (bit_errors, channel_errors, total_iterations / frames as f64)
    }

    #[test]
    fn rejects_wrong_llr_length() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert!(matches!(
            decoder.decode(&code, &[0.0; 3]),
            Err(DecodeError::LlrLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_iterations() {
        assert!(LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(0)
        )
        .is_err());
    }

    #[test]
    fn noiseless_frame_decodes_in_one_iteration_with_syndrome_stop() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 3).unwrap();
        let frame = source.next_frame();
        // Perfect channel: huge LLRs of the correct sign.
        let llrs: Vec<f64> = frame
            .codeword
            .iter()
            .map(|&b| if b == 0 { 20.0 } else { -20.0 })
            .collect();
        let config = DecoderConfig {
            stop_on_zero_syndrome: true,
            ..DecoderConfig::default()
        };
        let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.hard_bits, frame.codeword);
        assert!(out.parity_satisfied);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn float_bp_corrects_noisy_frames_at_moderate_snr() {
        let (decoded_errors, channel_errors, _) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0, "channel should introduce errors");
        assert!(
            decoded_errors * 20 < channel_errors,
            "decoder should remove almost all channel errors: {decoded_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_forward_backward_matches_float_bp_error_correction() {
        // The 8-bit forward/backward datapath tracks the float reference to
        // within a fraction of a dB.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 20 < channel_errors,
            "8-bit datapath should still decode: {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_sum_extract_still_corrects_errors() {
        // The paper-faithful ⊟-extraction datapath is measurably weaker at
        // 8 bits (see CheckNodeMode docs); it must still remove a substantial
        // fraction of the channel errors at a moderate operating point.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::default(),
            DecoderConfig::default(),
            2.0,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 2 < channel_errors,
            "⊟-extraction datapath should at least halve the channel errors: \
             {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn min_sum_also_decodes_clean_channels() {
        for arith in [
            FloatMinSumArithmetic::default(),
            FloatMinSumArithmetic::with_alpha(1.0),
        ] {
            let (errors, _, _) = decode_frames(arith, DecoderConfig::default(), 3.5, 4, 21);
            assert_eq!(errors, 0, "min-sum should decode clean frames at 3.5 dB");
        }
        let (errors, _, _) = decode_frames(
            FixedMinSumArithmetic::default(),
            DecoderConfig::default(),
            3.5,
            4,
            21,
        );
        assert_eq!(errors, 0);
    }

    #[test]
    fn early_termination_reduces_iterations_at_high_snr() {
        let config_et = DecoderConfig::default();
        let config_no_et = DecoderConfig::fixed_iterations(10);
        let (_, _, avg_et) = decode_frames(FloatBpArithmetic::default(), config_et, 4.0, 6, 5);
        let (_, _, avg_no_et) =
            decode_frames(FloatBpArithmetic::default(), config_no_et, 4.0, 6, 5);
        assert!(avg_no_et >= 10.0 - 1e-9);
        assert!(
            avg_et < 6.0,
            "early termination should cut iterations at 4 dB, got {avg_et}"
        );
    }

    #[test]
    fn early_termination_runs_longer_at_low_snr() {
        let (_, _, avg_low) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            0.0,
            4,
            7,
        );
        let (_, _, avg_high) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            4.5,
            4,
            7,
        );
        assert!(
            avg_low > avg_high,
            "bad channels need more iterations: {avg_low} vs {avg_high}"
        );
    }

    #[test]
    fn layer_order_does_not_change_correctness() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 9).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        for order in [
            LayerOrderPolicy::Natural,
            LayerOrderPolicy::StallMinimizing,
            LayerOrderPolicy::Custom((0..code.block_rows()).rev().collect()),
        ] {
            let config = DecoderConfig {
                layer_order: order,
                ..DecoderConfig::default()
            };
            let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
            let out = decoder.decode(&code, &llrs).unwrap();
            assert_eq!(
                out.bit_errors_against(&frame.codeword),
                0,
                "decoding should succeed regardless of layer order"
            );
        }
    }

    #[test]
    fn custom_order_with_duplicates_is_rejected_at_construction() {
        let config = DecoderConfig {
            layer_order: LayerOrderPolicy::Custom(vec![0, 0, 2]),
            ..DecoderConfig::default()
        };
        assert!(matches!(
            LayeredDecoder::new(FloatBpArithmetic::default(), config),
            Err(DecodeError::InvalidConfig { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "cover every layer")]
    fn custom_order_of_wrong_length_panics_at_decode() {
        let code = small_code();
        let config = DecoderConfig {
            layer_order: LayerOrderPolicy::Custom(vec![2, 0, 1]),
            ..DecoderConfig::default()
        };
        let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
        let _ = decoder.decode(&code, &vec![1.0; code.n()]);
    }

    #[test]
    fn stats_count_operations() {
        let code = small_code();
        let decoder = LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(2),
        )
        .unwrap();
        let llrs = vec![1.0; code.n()];
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.iterations, 2);
        assert_eq!(out.stats.sub_iterations, 2 * code.block_rows());
        assert_eq!(out.stats.check_node_updates, 2 * code.m());
        assert_eq!(out.stats.messages_processed, 2 * code.num_edges());
    }

    #[test]
    fn posterior_llrs_match_hard_bits() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FixedBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let mut source = FrameSource::random(&code, 17).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        let out = decoder.decode(&code, &llrs).unwrap();
        for (l, &b) in out.posterior_llrs.iter().zip(&out.hard_bits) {
            assert_eq!(u8::from(*l < 0.0), b);
        }
    }
}
