//! The layered belief-propagation decoder (Algorithm 1 of the paper).
//!
//! [`LayeredDecoder`] implements the layered schedule generically over a
//! [`DecoderArithmetic`]: full BP in floating point (reference), full BP in
//! 8-bit fixed point with 3-bit LUTs (the ASIC datapath) or the Min-Sum
//! baseline. One full iteration is divided into `j` sub-iterations; within a
//! sub-iteration the `z` rows of the layer are independent (they are processed
//! by `z` parallel SISO decoders in hardware) and are processed here in a
//! simple loop, producing bit-identical results.
//!
//! The per-row processing follows Algorithm 1 exactly:
//!
//! 1. **Read**: `λ_mn = L_n − Λ_mn` for every `n ∈ N(m)`,
//! 2. **Decode**: `Λ'_mn` from the check-node update (Eq. 1), then
//!    `L'_n = λ_mn + Λ'_mn`,
//! 3. **Write back** `L'_n` and `Λ'_mn`.

use ldpc_codes::QcCode;

use crate::arith::DecoderArithmetic;
use crate::early_term::{EarlyTermination, TerminationTracker};
use crate::error::DecodeError;
use crate::result::{DecodeOutput, DecodeStats};
use crate::schedule::LayerOrderPolicy;

/// Decoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderConfig {
    /// Maximum number of full iterations `I` (the paper uses 10).
    pub max_iterations: usize,
    /// Early-termination rule; `None` always runs `max_iterations`.
    pub early_termination: Option<EarlyTermination>,
    /// Also stop as soon as the hard decisions satisfy every parity check
    /// (a common additional criterion; disabled by default so that the
    /// power experiments isolate the paper's LLR-based rule).
    pub stop_on_zero_syndrome: bool,
    /// Layer visiting order.
    pub layer_order: LayerOrderPolicy,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            max_iterations: 10,
            early_termination: Some(EarlyTermination::default()),
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }
}

impl DecoderConfig {
    /// A configuration that always runs the maximum number of iterations
    /// (no early termination, no syndrome stopping).
    #[must_use]
    pub fn fixed_iterations(max_iterations: usize) -> Self {
        DecoderConfig {
            max_iterations,
            early_termination: None,
            stop_on_zero_syndrome: false,
            layer_order: LayerOrderPolicy::Natural,
        }
    }

    fn validate(&self) -> Result<(), DecodeError> {
        if self.max_iterations == 0 {
            return Err(DecodeError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// The layered (turbo-decoding message passing) LDPC decoder.
#[derive(Debug, Clone)]
pub struct LayeredDecoder<A: DecoderArithmetic> {
    arith: A,
    config: DecoderConfig,
}

impl<A: DecoderArithmetic> LayeredDecoder<A> {
    /// Creates a decoder from an arithmetic back-end and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] for nonsensical configurations.
    pub fn new(arith: A, config: DecoderConfig) -> Result<Self, DecodeError> {
        config.validate()?;
        Ok(LayeredDecoder { arith, config })
    }

    /// The arithmetic back-end.
    #[must_use]
    pub fn arithmetic(&self) -> &A {
        &self.arith
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Decodes one frame given its channel LLRs (`2y/σ²`, length `n`).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `channel_llrs.len()` is
    /// not the code length.
    pub fn decode(&self, code: &QcCode, channel_llrs: &[f64]) -> Result<DecodeOutput, DecodeError> {
        if channel_llrs.len() != code.n() {
            return Err(DecodeError::LlrLengthMismatch {
                expected: code.n(),
                actual: channel_llrs.len(),
            });
        }

        let z = code.z();
        let info_len = code.info_bits();
        let layer_order = self.config.layer_order.resolve(code);

        // APP messages L_n, initialised from the channel (Algorithm 1).
        let mut l_msgs: Vec<A::Msg> = channel_llrs
            .iter()
            .map(|&l| self.arith.from_channel(l))
            .collect();

        // Check messages Λ_mn, one per edge, initialised to zero. Indexed by
        // (global block-entry index) · z + row-within-block, mirroring the
        // distributed Λ-memory banks of the architecture.
        let entry_offsets = entry_offsets(code);
        let mut lambda_msgs: Vec<A::Msg> = vec![self.arith.zero(); code.num_edges()];

        let mut tracker = self
            .config
            .early_termination
            .map(TerminationTracker::new);
        let mut stats = DecodeStats::default();
        let mut iterations = 0;
        let mut early_terminated = false;

        // Scratch buffers reused across rows.
        let max_degree = code.max_layer_degree();
        let mut row_lambdas: Vec<A::Msg> = Vec::with_capacity(max_degree);
        let mut row_cols: Vec<usize> = Vec::with_capacity(max_degree);
        let mut row_out: Vec<A::Msg> = Vec::with_capacity(max_degree);

        for _ in 0..self.config.max_iterations {
            for &l in &layer_order {
                let layer = code.layer(l);
                let base_entry = entry_offsets[l];
                stats.sub_iterations += 1;
                for r in 0..z {
                    // 1) Read: gather λ_mn = L_n − Λ_mn.
                    row_lambdas.clear();
                    row_cols.clear();
                    for (ei, entry) in layer.entries.iter().enumerate() {
                        let col = entry.block_col * z + (r + entry.shift) % z;
                        let old_lambda = lambda_msgs[(base_entry + ei) * z + r];
                        row_lambdas.push(self.arith.sub(l_msgs[col], old_lambda));
                        row_cols.push(col);
                    }
                    // 2) Decode: new Λ_mn (Eq. 1) and new L_n.
                    self.arith.check_node_update(&row_lambdas, &mut row_out);
                    stats.check_node_updates += 1;
                    stats.messages_processed += row_lambdas.len();
                    // 3) Write back.
                    for (ei, (&col, &new_lambda)) in row_cols.iter().zip(&row_out).enumerate() {
                        lambda_msgs[(base_entry + ei) * z + r] = new_lambda;
                        l_msgs[col] = self.arith.add(row_lambdas[ei], new_lambda);
                    }
                }
            }
            iterations += 1;

            // Early termination (paper's rule, §IV): information-bit hard
            // decisions stable across two iterations and min |L| above the
            // threshold.
            if let Some(tracker) = tracker.as_mut() {
                let info_decisions: Vec<u8> = l_msgs[..info_len]
                    .iter()
                    .map(|&m| self.arith.hard_bit(m))
                    .collect();
                let min_abs = l_msgs[..info_len]
                    .iter()
                    .map(|&m| self.arith.magnitude(m))
                    .fold(f64::INFINITY, f64::min);
                if tracker.should_terminate(&info_decisions, min_abs)
                    && iterations < self.config.max_iterations
                {
                    early_terminated = true;
                    break;
                }
            }

            if self.config.stop_on_zero_syndrome && iterations < self.config.max_iterations {
                let hard: Vec<u8> = l_msgs.iter().map(|&m| self.arith.hard_bit(m)).collect();
                if code.is_codeword(&hard).unwrap_or(false) {
                    break;
                }
            }
        }

        let hard_bits: Vec<u8> = l_msgs.iter().map(|&m| self.arith.hard_bit(m)).collect();
        let posterior_llrs: Vec<f64> = l_msgs.iter().map(|&m| self.arith.to_llr(m)).collect();
        let parity_satisfied = code.is_codeword(&hard_bits).unwrap_or(false);

        Ok(DecodeOutput {
            hard_bits,
            posterior_llrs,
            iterations,
            parity_satisfied,
            early_terminated,
            stats,
        })
    }
}

/// Global block-entry offset of each layer (prefix sums of the layer weights),
/// defining the Λ-memory layout.
fn entry_offsets(code: &QcCode) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(code.block_rows());
    let mut acc = 0;
    for layer in code.layers() {
        offsets.push(acc);
        acc += layer.weight();
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{
        FixedBpArithmetic, FixedMinSumArithmetic, FloatBpArithmetic, FloatMinSumArithmetic,
    };
    use ldpc_channel::awgn::AwgnChannel;
    use ldpc_channel::workload::FrameSource;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn small_code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    fn decode_frames<A: DecoderArithmetic>(
        arith: A,
        config: DecoderConfig,
        ebn0_db: f64,
        frames: usize,
        seed: u64,
    ) -> (usize, usize, f64) {
        let code = small_code();
        let decoder = LayeredDecoder::new(arith, config).unwrap();
        let channel = AwgnChannel::from_ebn0_db(ebn0_db, code.rate());
        let mut source = FrameSource::random(&code, seed).unwrap();
        let mut bit_errors = 0;
        let mut channel_errors = 0;
        let mut total_iterations = 0.0;
        for _ in 0..frames {
            let frame = source.next_frame();
            let llrs = channel.transmit(&frame.codeword, source.noise_rng());
            channel_errors += llrs
                .iter()
                .zip(&frame.codeword)
                .filter(|(&l, &b)| u8::from(l < 0.0) != b)
                .count();
            let out = decoder.decode(&code, &llrs).unwrap();
            bit_errors += out.bit_errors_against(&frame.codeword);
            total_iterations += out.iterations as f64;
        }
        (bit_errors, channel_errors, total_iterations / frames as f64)
    }

    #[test]
    fn rejects_wrong_llr_length() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert!(matches!(
            decoder.decode(&code, &[0.0; 3]),
            Err(DecodeError::LlrLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_iterations() {
        assert!(LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(0)
        )
        .is_err());
    }

    #[test]
    fn noiseless_frame_decodes_in_one_iteration_with_syndrome_stop() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 3).unwrap();
        let frame = source.next_frame();
        // Perfect channel: huge LLRs of the correct sign.
        let llrs: Vec<f64> = frame
            .codeword
            .iter()
            .map(|&b| if b == 0 { 20.0 } else { -20.0 })
            .collect();
        let config = DecoderConfig {
            stop_on_zero_syndrome: true,
            ..DecoderConfig::default()
        };
        let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.hard_bits, frame.codeword);
        assert!(out.parity_satisfied);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn float_bp_corrects_noisy_frames_at_moderate_snr() {
        let (decoded_errors, channel_errors, _) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0, "channel should introduce errors");
        assert!(
            decoded_errors * 20 < channel_errors,
            "decoder should remove almost all channel errors: {decoded_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_forward_backward_matches_float_bp_error_correction() {
        // The 8-bit forward/backward datapath tracks the float reference to
        // within a fraction of a dB.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig::default(),
            2.5,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 20 < channel_errors,
            "8-bit datapath should still decode: {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn fixed_bp_sum_extract_still_corrects_errors() {
        // The paper-faithful ⊟-extraction datapath is measurably weaker at
        // 8 bits (see CheckNodeMode docs); it must still remove a substantial
        // fraction of the channel errors at a moderate operating point.
        let (fixed_errors, channel_errors, _) = decode_frames(
            FixedBpArithmetic::default(),
            DecoderConfig::default(),
            2.0,
            8,
            11,
        );
        assert!(channel_errors > 0);
        assert!(
            fixed_errors * 2 < channel_errors,
            "⊟-extraction datapath should at least halve the channel errors: \
             {fixed_errors} vs {channel_errors}"
        );
    }

    #[test]
    fn min_sum_also_decodes_clean_channels() {
        for arith in [
            FloatMinSumArithmetic::default(),
            FloatMinSumArithmetic::with_alpha(1.0),
        ] {
            let (errors, _, _) = decode_frames(arith, DecoderConfig::default(), 3.5, 4, 21);
            assert_eq!(errors, 0, "min-sum should decode clean frames at 3.5 dB");
        }
        let (errors, _, _) = decode_frames(
            FixedMinSumArithmetic::default(),
            DecoderConfig::default(),
            3.5,
            4,
            21,
        );
        assert_eq!(errors, 0);
    }

    #[test]
    fn early_termination_reduces_iterations_at_high_snr() {
        let config_et = DecoderConfig::default();
        let config_no_et = DecoderConfig::fixed_iterations(10);
        let (_, _, avg_et) = decode_frames(FloatBpArithmetic::default(), config_et, 4.0, 6, 5);
        let (_, _, avg_no_et) =
            decode_frames(FloatBpArithmetic::default(), config_no_et, 4.0, 6, 5);
        assert!(avg_no_et >= 10.0 - 1e-9);
        assert!(
            avg_et < 6.0,
            "early termination should cut iterations at 4 dB, got {avg_et}"
        );
    }

    #[test]
    fn early_termination_runs_longer_at_low_snr() {
        let (_, _, avg_low) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            0.0,
            4,
            7,
        );
        let (_, _, avg_high) = decode_frames(
            FloatBpArithmetic::default(),
            DecoderConfig::default(),
            4.5,
            4,
            7,
        );
        assert!(
            avg_low > avg_high,
            "bad channels need more iterations: {avg_low} vs {avg_high}"
        );
    }

    #[test]
    fn layer_order_does_not_change_correctness() {
        let code = small_code();
        let mut source = FrameSource::random(&code, 9).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        for order in [
            LayerOrderPolicy::Natural,
            LayerOrderPolicy::StallMinimizing,
            LayerOrderPolicy::Custom((0..code.block_rows()).rev().collect()),
        ] {
            let config = DecoderConfig {
                layer_order: order,
                ..DecoderConfig::default()
            };
            let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), config).unwrap();
            let out = decoder.decode(&code, &llrs).unwrap();
            assert_eq!(
                out.bit_errors_against(&frame.codeword),
                0,
                "decoding should succeed regardless of layer order"
            );
        }
    }

    #[test]
    fn stats_count_operations() {
        let code = small_code();
        let decoder = LayeredDecoder::new(
            FloatBpArithmetic::default(),
            DecoderConfig::fixed_iterations(2),
        )
        .unwrap();
        let llrs = vec![1.0; code.n()];
        let out = decoder.decode(&code, &llrs).unwrap();
        assert_eq!(out.iterations, 2);
        assert_eq!(out.stats.sub_iterations, 2 * code.block_rows());
        assert_eq!(out.stats.check_node_updates, 2 * code.m());
        assert_eq!(out.stats.messages_processed, 2 * code.num_edges());
    }

    #[test]
    fn posterior_llrs_match_hard_bits() {
        let code = small_code();
        let decoder =
            LayeredDecoder::new(FixedBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let mut source = FrameSource::random(&code, 17).unwrap();
        let frame = source.next_frame();
        let channel = AwgnChannel::from_ebn0_db(3.0, code.rate());
        let llrs = channel.transmit(&frame.codeword, source.noise_rng());
        let out = decoder.decode(&code, &llrs).unwrap();
        for (l, &b) in out.posterior_llrs.iter().zip(&out.hard_bits) {
            assert_eq!(u8::from(*l < 0.0), b);
        }
    }
}
