//! Reusable decode state, so steady-state decoding is allocation-free.
//!
//! The seed decoder allocated its APP memory, Λ memory and scratch rows on
//! every `decode` call. [`DecodeWorkspace`] owns those buffers instead — the
//! software analogue of the paper's dedicated L/Λ memory banks, which exist
//! once in silicon and are merely re-initialised between frames. It also owns
//! the slot-major lane buffers and [`LaneScratch`] the lane-parallel SISO
//! kernels run out of (see [`crate::arith::LaneKernel`]). A workspace
//! is created (or grown) on first use with a given code and then reused:
//! every subsequent [`Decoder::decode_into`](crate::engine::Decoder::decode_into)
//! with the same code performs **zero heap allocations**, which the engine
//! enforces with a debug assertion on the buffer fingerprints.

use ldpc_codes::CompiledCode;

use crate::arith::LaneScratch;
use crate::early_term::DecisionHistory;

/// Buffer set for decoding frames of one code with messages of type `M`.
///
/// A workspace may be moved between codes: `prepare` grows the buffers as
/// needed. Only the steady state (same code as the previous call) is
/// guaranteed allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DecodeWorkspace<M> {
    /// A-posteriori messages `L_n`, length `n`.
    pub(crate) app: Vec<M>,
    /// Channel messages (flooding schedule only), length `n`.
    pub(crate) chan: Vec<M>,
    /// Check messages `Λ_mn`, one per edge, indexed `entry · z + r`.
    pub(crate) lambda: Vec<M>,
    /// Second edge buffer for the flooding schedule's double buffering.
    pub(crate) lambda_alt: Vec<M>,
    /// Row gather scratch `λ`, capacity = max check degree.
    pub(crate) row_in: Vec<M>,
    /// Row output scratch `Λ'`, capacity = max check degree.
    pub(crate) row_out: Vec<M>,
    /// Lane-major gather buffer `λ` of one layer (slot-major, `degree · z`),
    /// the input of [`LaneKernel::check_node_update_lanes`](crate::arith::LaneKernel::check_node_update_lanes).
    pub(crate) lane_in: Vec<M>,
    /// Lane-major output buffer `Λ'` of one layer (slot-major, `degree · z`).
    pub(crate) lane_out: Vec<M>,
    /// Transient storage of the lane kernels (fallback rows + vector lanes).
    pub(crate) lane_scratch: LaneScratch<M>,
    /// Hard-decision scratch, length `n`.
    pub(crate) hard: Vec<u8>,
    /// Information-bit hard decisions of the current iteration.
    pub(crate) info_hard: Vec<u8>,
    /// Early-termination decision history (previous iteration's hard
    /// decisions), the same mechanism [`crate::early_term::TerminationTracker`]
    /// uses.
    pub(crate) history: DecisionHistory,
    /// Per-frame early-termination histories of the frame-major group path
    /// (one per frame of the widest group decoded so far).
    pub(crate) group_histories: Vec<DecisionHistory>,
    /// Original frame index of each packed column of the current group (the
    /// active set; converged frames are compacted out).
    pub(crate) group_active: Vec<u32>,
    /// Per-iteration survivor list scratch of the group path.
    pub(crate) group_keep: Vec<u32>,
    /// Single-frame APP extraction scratch of the group path, length `n`.
    pub(crate) group_frame: Vec<M>,
    /// Original frame indices of the stage-1 failures a cascade escalates
    /// (see [`crate::cascade`]).
    pub(crate) cascade_pending: Vec<u32>,
    /// Frame-contiguous handoff LLRs of the escalated frames.
    pub(crate) cascade_llrs: Vec<f64>,
    /// Stage ≥ 2 output slots, swapped against the caller's outputs.
    pub(crate) cascade_outs: Vec<crate::result::DecodeOutput>,
}

impl<M: Copy> DecodeWorkspace<M> {
    /// An empty workspace; buffers are allocated on first use.
    #[must_use]
    pub fn new() -> Self {
        DecodeWorkspace {
            app: Vec::new(),
            chan: Vec::new(),
            lambda: Vec::new(),
            lambda_alt: Vec::new(),
            row_in: Vec::new(),
            row_out: Vec::new(),
            lane_in: Vec::new(),
            lane_out: Vec::new(),
            lane_scratch: LaneScratch::new(),
            hard: Vec::new(),
            info_hard: Vec::new(),
            history: DecisionHistory::new(),
            group_histories: Vec::new(),
            group_active: Vec::new(),
            group_keep: Vec::new(),
            group_frame: Vec::new(),
            cascade_pending: Vec::new(),
            cascade_llrs: Vec::new(),
            cascade_outs: Vec::new(),
        }
    }

    /// A workspace with capacity pre-allocated for `compiled` (including the
    /// flooding-only buffers), so even the first decode is allocation-free.
    #[must_use]
    pub fn for_code(compiled: &CompiledCode) -> Self {
        let mut ws = Self::new();
        ws.reserve_for(compiled, true);
        ws
    }

    /// Grows every buffer to the capacity `compiled` needs.
    pub fn reserve_for(&mut self, compiled: &CompiledCode, flooding: bool) {
        let n = compiled.n();
        let edges = compiled.num_edges();
        let degree = compiled.max_degree();
        let info = compiled.info_bits();
        reserve_to(&mut self.app, n);
        reserve_to(&mut self.lambda, edges);
        reserve_to(&mut self.row_in, degree);
        reserve_to(&mut self.row_out, degree);
        reserve_to(&mut self.lane_in, degree * compiled.z());
        reserve_to(&mut self.lane_out, degree * compiled.z());
        self.lane_scratch.reserve(degree, compiled.z());
        reserve_to(&mut self.hard, n);
        reserve_to(&mut self.info_hard, info);
        self.history.reserve(info);
        if flooding {
            reserve_to(&mut self.chan, n);
            reserve_to(&mut self.lambda_alt, edges);
        }
    }

    /// Whether every buffer already has the capacity `compiled` needs, i.e.
    /// whether the next `prepare` for this code is guaranteed allocation-free.
    #[must_use]
    pub fn is_ready_for(&self, compiled: &CompiledCode, flooding: bool) -> bool {
        let n = compiled.n();
        let edges = compiled.num_edges();
        let degree = compiled.max_degree();
        let info = compiled.info_bits();
        self.app.capacity() >= n
            && self.lambda.capacity() >= edges
            && self.row_in.capacity() >= degree
            && self.row_out.capacity() >= degree
            && self.lane_in.capacity() >= degree * compiled.z()
            && self.lane_out.capacity() >= degree * compiled.z()
            && self.lane_scratch.is_ready(degree, compiled.z())
            && self.hard.capacity() >= n
            && self.info_hard.capacity() >= info
            && self.history.is_ready(info)
            && (!flooding || (self.chan.capacity() >= n && self.lambda_alt.capacity() >= edges))
    }

    /// Resets the per-frame state: Λ memory zeroed, APP cleared (the engine
    /// refills it from the channel LLRs), early-termination history dropped.
    pub(crate) fn prepare(&mut self, compiled: &CompiledCode, zero: M, flooding: bool) {
        self.reserve_for(compiled, flooding);
        self.app.clear();
        self.lambda.clear();
        self.lambda.resize(compiled.num_edges(), zero);
        // The lane buffers are fully written before every read; only their
        // *length* must cover a whole layer so the engine can slice them.
        let lane_len = compiled.max_degree() * compiled.z();
        self.lane_in.clear();
        self.lane_in.resize(lane_len, zero);
        self.lane_out.clear();
        self.lane_out.resize(lane_len, zero);
        self.history.reset();
        if flooding {
            self.chan.clear();
            // The flooding schedule writes every edge of `lambda_alt` before
            // reading it, so its contents need no initialisation — only its
            // length must match for the buffer swap.
            self.lambda_alt.clear();
            self.lambda_alt.resize(compiled.num_edges(), zero);
        }
    }

    /// Grows every buffer the frame-major group path touches to the capacity
    /// a `width`-frame group of `compiled` needs (see [`crate::group`] for
    /// the layout): the single-frame buffers scaled by `width`, plus the
    /// per-frame histories and the group bookkeeping scratch.
    pub fn reserve_for_group(&mut self, compiled: &CompiledCode, width: usize) {
        let n = compiled.n();
        let edges = compiled.num_edges();
        let degree = compiled.max_degree();
        let info = compiled.info_bits();
        let zw = compiled.z() * width;
        reserve_to(&mut self.app, n * width);
        reserve_to(&mut self.lambda, edges * width);
        reserve_to(&mut self.row_in, degree);
        reserve_to(&mut self.row_out, degree);
        reserve_to(&mut self.lane_in, degree * zw);
        reserve_to(&mut self.lane_out, degree * zw);
        self.lane_scratch.reserve(degree, zw);
        reserve_to(&mut self.hard, n);
        reserve_to(&mut self.info_hard, info);
        reserve_to(&mut self.group_active, width);
        reserve_to(&mut self.group_keep, width);
        reserve_to(&mut self.group_frame, n);
        if self.group_histories.len() < width {
            self.group_histories
                .resize_with(width, DecisionHistory::new);
        }
        for history in &mut self.group_histories[..width] {
            history.reserve(info);
        }
    }

    /// Whether preparing a group decode (`prepare_group`) with these parameters is
    /// guaranteed allocation-free.
    #[must_use]
    pub fn is_ready_for_group(&self, compiled: &CompiledCode, width: usize) -> bool {
        let n = compiled.n();
        let info = compiled.info_bits();
        let zw = compiled.z() * width;
        let degree = compiled.max_degree();
        self.app.capacity() >= n * width
            && self.lambda.capacity() >= compiled.num_edges() * width
            && self.lane_in.capacity() >= degree * zw
            && self.lane_out.capacity() >= degree * zw
            && self.lane_scratch.is_ready(degree, zw)
            && self.hard.capacity() >= n
            && self.info_hard.capacity() >= info
            && self.group_active.capacity() >= width
            && self.group_keep.capacity() >= width
            && self.group_frame.capacity() >= n
            && self.group_histories.len() >= width
            && self.group_histories[..width]
                .iter()
                .all(|h| h.is_ready(info))
    }

    /// Resets the workspace for a `width`-frame group decode: Λ memory zeroed
    /// at group stride, APP cleared (the group driver packs it from the
    /// channel LLRs), the active set reset to all frames, every per-frame
    /// history dropped.
    pub(crate) fn prepare_group(&mut self, compiled: &CompiledCode, zero: M, width: usize) {
        self.reserve_for_group(compiled, width);
        self.app.clear();
        self.lambda.clear();
        self.lambda.resize(compiled.num_edges() * width, zero);
        let lane_len = compiled.max_degree() * compiled.z() * width;
        self.lane_in.clear();
        self.lane_in.resize(lane_len, zero);
        self.lane_out.clear();
        self.lane_out.resize(lane_len, zero);
        self.group_active.clear();
        self.group_active.extend(0..width as u32);
        for history in &mut self.group_histories[..width] {
            history.reset();
        }
    }

    /// Grows every buffer a [`crate::cascade::CascadeDecoder`] needs for a
    /// `width`-frame group of `compiled`: the group-path buffers plus the
    /// escalation scratch (pending list, handoff LLRs and stage output
    /// slots, all sized for the worst case of every frame escalating).
    pub fn reserve_for_cascade(&mut self, compiled: &CompiledCode, width: usize) {
        self.reserve_for_group(compiled, width);
        reserve_to(&mut self.cascade_pending, width);
        reserve_to(&mut self.cascade_llrs, compiled.n() * width);
        if self.cascade_outs.len() < width {
            self.cascade_outs
                .resize_with(width, crate::result::DecodeOutput::empty);
        }
    }

    /// Whether a cascade decode of a `width`-frame group is guaranteed not to
    /// grow any workspace-owned buffer. (The stage output slots' *inner*
    /// buffers still grow on the first escalation that reaches them — they
    /// are swapped against caller outputs, so their contents are not part of
    /// the workspace's steady state.)
    #[must_use]
    pub fn is_ready_for_cascade(&self, compiled: &CompiledCode, width: usize) -> bool {
        self.is_ready_for_group(compiled, width)
            && self.cascade_pending.capacity() >= width
            && self.cascade_llrs.capacity() >= compiled.n() * width
            && self.cascade_outs.len() >= width
    }

    /// Pointer/capacity fingerprint of the cascade buffers on top of
    /// [`DecodeWorkspace::group_fingerprint`]. The stage output slots
    /// contribute only their outer vector (their inner buffers are swapped
    /// with caller outputs, so their identity legitimately changes).
    #[must_use]
    pub fn cascade_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp = self.group_fingerprint();
        fp.push((
            self.cascade_pending.as_ptr() as usize,
            self.cascade_pending.capacity(),
        ));
        fp.push((
            self.cascade_llrs.as_ptr() as usize,
            self.cascade_llrs.capacity(),
        ));
        fp.push((
            self.cascade_outs.as_ptr() as usize,
            self.cascade_outs.capacity(),
        ));
        fp
    }

    /// Pointer/capacity fingerprint of the group-path buffers (everything
    /// [`DecodeWorkspace::allocation_fingerprint`] covers, plus the group
    /// bookkeeping and the per-frame histories). Building the vector
    /// allocates, so this is a test/debug aid, not a hot-path call.
    #[must_use]
    pub fn group_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp: Vec<(usize, usize)> = self.allocation_fingerprint().to_vec();
        fp.push((
            self.group_active.as_ptr() as usize,
            self.group_active.capacity(),
        ));
        fp.push((
            self.group_keep.as_ptr() as usize,
            self.group_keep.capacity(),
        ));
        fp.push((
            self.group_frame.as_ptr() as usize,
            self.group_frame.capacity(),
        ));
        fp.push((
            self.group_histories.as_ptr() as usize,
            self.group_histories.capacity(),
        ));
        fp.extend(
            self.group_histories
                .iter()
                .map(DecisionHistory::fingerprint),
        );
        fp
    }

    /// Pointer/capacity fingerprint of every buffer. Two equal fingerprints
    /// around a `decode_into` call prove the call performed no reallocation
    /// (and therefore no heap allocation, as the engine owns no other state).
    #[must_use]
    pub fn allocation_fingerprint(&self) -> [(usize, usize); 14] {
        // The flooding schedule swaps `lambda` and `lambda_alt` every
        // iteration; order the pair by address so the swap (which moves no
        // memory) does not change the fingerprint.
        let lambda = (self.lambda.as_ptr() as usize, self.lambda.capacity());
        let lambda_alt = (
            self.lambda_alt.as_ptr() as usize,
            self.lambda_alt.capacity(),
        );
        let (lo, hi) = if lambda <= lambda_alt {
            (lambda, lambda_alt)
        } else {
            (lambda_alt, lambda)
        };
        let scratch = self.lane_scratch.fingerprint();
        [
            (self.app.as_ptr() as usize, self.app.capacity()),
            (self.chan.as_ptr() as usize, self.chan.capacity()),
            lo,
            hi,
            (self.row_in.as_ptr() as usize, self.row_in.capacity()),
            (self.row_out.as_ptr() as usize, self.row_out.capacity()),
            (self.lane_in.as_ptr() as usize, self.lane_in.capacity()),
            (self.lane_out.as_ptr() as usize, self.lane_out.capacity()),
            scratch[0],
            scratch[1],
            scratch[2],
            (self.hard.as_ptr() as usize, self.hard.capacity()),
            (self.info_hard.as_ptr() as usize, self.info_hard.capacity()),
            self.history.fingerprint(),
        ]
    }
}

fn reserve_to<T>(buf: &mut Vec<T>, capacity: usize) {
    if buf.capacity() < capacity {
        buf.reserve_exact(capacity - buf.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn compiled() -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
            .compile()
    }

    #[test]
    fn for_code_is_ready_immediately() {
        let compiled = compiled();
        let ws = DecodeWorkspace::<f64>::for_code(&compiled);
        assert!(ws.is_ready_for(&compiled, false));
        assert!(ws.is_ready_for(&compiled, true));
    }

    #[test]
    fn empty_workspace_becomes_ready_after_prepare() {
        let compiled = compiled();
        let mut ws = DecodeWorkspace::<f64>::new();
        assert!(!ws.is_ready_for(&compiled, false));
        ws.prepare(&compiled, 0.0, false);
        assert!(ws.is_ready_for(&compiled, false));
        assert_eq!(ws.lambda.len(), compiled.num_edges());
        assert!(ws.lambda.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn prepare_is_allocation_free_once_ready() {
        let compiled = compiled();
        let mut ws = DecodeWorkspace::<f64>::for_code(&compiled);
        ws.prepare(&compiled, 0.0, true);
        let fp = ws.allocation_fingerprint();
        for _ in 0..3 {
            ws.prepare(&compiled, 0.0, true);
        }
        assert_eq!(fp, ws.allocation_fingerprint());
    }

    #[test]
    fn workspace_grows_across_codes() {
        let small = compiled();
        let big = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 2304)
            .build()
            .unwrap()
            .compile();
        let mut ws = DecodeWorkspace::<f64>::for_code(&small);
        assert!(!ws.is_ready_for(&big, false));
        ws.prepare(&big, 0.0, false);
        assert!(ws.is_ready_for(&big, false));
        // And it still serves the small code without shrinking.
        assert!(ws.is_ready_for(&small, false));
    }
}
