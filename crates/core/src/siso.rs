//! Behavioural models of the Radix-2 and Radix-4 SISO decoder cores
//! (Fig. 3 – Fig. 6 of the paper).
//!
//! A SISO (soft-input soft-output) core processes one check row serially:
//! during the first `d_m` cycles the incoming variable messages `λ_mn` stream
//! through the `f(·)` recursion to form the total sum `S_m`; during the next
//! `d_m` cycles the `g(·)` unit extracts the outgoing messages
//! `Λ_mn = S_m ⊟ λ_mn` (the λ values are replayed from a FIFO). The Radix-4
//! core applies a one-level look-ahead transform to the `f(·)` recursion so
//! that two messages are absorbed (and two extracted) per cycle, doubling the
//! throughput at the cost of roughly twice the combinational area (Table 2).
//!
//! These models are *functionally* bit-accurate (they reuse the same ⊞/⊟
//! arithmetic as the layered decoder) and *cycle-annotated* (they report how
//! many clock cycles each stage of the row computation occupies), which is
//! what the architecture-level pipeline model consumes.

use crate::arith::{DecoderArithmetic, FixedBpArithmetic, FloatBpArithmetic};

/// Check-recursion arithmetic: the pairwise ⊞/⊟ operators a SISO core is
/// built from. Implemented by the full-BP back-ends (the paper's SISO decoder
/// is a BP engine; Min-Sum does not use this structure).
pub trait BoxArithmetic: DecoderArithmetic {
    /// Pairwise ⊞ (`f` unit).
    fn box_plus(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;
    /// Pairwise ⊟ (`g` unit).
    fn box_minus(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;
}

impl BoxArithmetic for FloatBpArithmetic {
    fn box_plus(&self, a: f64, b: f64) -> f64 {
        crate::boxplus::boxplus(a, b)
    }

    fn box_minus(&self, a: f64, b: f64) -> f64 {
        crate::boxplus::boxminus(a, b)
    }
}

impl BoxArithmetic for FixedBpArithmetic {
    fn box_plus(&self, a: i32, b: i32) -> i32 {
        self.boxplus_codes(a, b)
    }

    fn box_minus(&self, a: i32, b: i32) -> i32 {
        self.boxminus_codes(a, b)
    }
}

/// Result of running one check row through a SISO core.
#[derive(Debug, Clone, PartialEq)]
pub struct SisoRowResult<M> {
    /// Outgoing check messages `Λ_mn`, in input order.
    pub check_messages: Vec<M>,
    /// Cycles spent in the `f(·)` accumulation stage.
    pub stage1_cycles: usize,
    /// Cycles spent in the `g(·)` extraction stage.
    pub stage2_cycles: usize,
}

impl<M> SisoRowResult<M> {
    /// Total latency of the row through the core (both stages, no pipelining).
    #[must_use]
    pub fn latency_cycles(&self) -> usize {
        self.stage1_cycles + self.stage2_cycles
    }

    /// Sustained per-row occupancy when consecutive rows are pipelined: the
    /// two stages overlap, so a new row can start every
    /// `max(stage1, stage2)` cycles.
    #[must_use]
    pub fn pipelined_cycles(&self) -> usize {
        self.stage1_cycles.max(self.stage2_cycles)
    }
}

/// The decoding radix of a SISO core: how many messages are absorbed and
/// produced per clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SisoRadix {
    /// One message per cycle (Fig. 3).
    Radix2,
    /// Two messages per cycle via the look-ahead transform (Fig. 5/6).
    Radix4,
}

impl SisoRadix {
    /// Messages absorbed per cycle.
    #[must_use]
    pub fn messages_per_cycle(self) -> usize {
        match self {
            SisoRadix::Radix2 => 1,
            SisoRadix::Radix4 => 2,
        }
    }

    /// Number of cycles one stage needs for a row of degree `degree`.
    #[must_use]
    pub fn stage_cycles(self, degree: usize) -> usize {
        degree.div_ceil(self.messages_per_cycle())
    }
}

/// Radix-2 SISO core: one `f(·)` unit followed by one `g(·)` unit (Fig. 3).
#[derive(Debug, Clone)]
pub struct R2Siso<A: BoxArithmetic> {
    arith: A,
}

impl<A: BoxArithmetic> R2Siso<A> {
    /// Creates a Radix-2 core from a ⊞/⊟ arithmetic.
    #[must_use]
    pub fn new(arith: A) -> Self {
        R2Siso { arith }
    }

    /// The arithmetic back-end.
    #[must_use]
    pub fn arithmetic(&self) -> &A {
        &self.arith
    }

    /// Processes one check row: `d_m` cycles of `f(·)` accumulation followed
    /// by `d_m` cycles of `g(·)` extraction.
    #[must_use]
    pub fn process_row(&self, lambdas: &[A::Msg]) -> SisoRowResult<A::Msg> {
        let degree = lambdas.len();
        let mut check_messages = Vec::with_capacity(degree);
        if degree > 0 {
            // Stage 1: serial f(·) recursion, one λ per cycle.
            let mut total = lambdas[0];
            for &l in &lambdas[1..] {
                total = self.arith.box_plus(total, l);
            }
            // Stage 2: serial g(·) extraction, one Λ per cycle.
            check_messages.extend(lambdas.iter().map(|&l| self.arith.box_minus(total, l)));
        }
        SisoRowResult {
            check_messages,
            stage1_cycles: SisoRadix::Radix2.stage_cycles(degree),
            stage2_cycles: SisoRadix::Radix2.stage_cycles(degree),
        }
    }
}

/// Radix-4 SISO core: the one-level look-ahead transform lets each cycle
/// absorb two λ messages (two cascaded `f(·)` units) and emit two Λ messages
/// (two parallel `g(·)` units), Fig. 5/6.
#[derive(Debug, Clone)]
pub struct R4Siso<A: BoxArithmetic> {
    arith: A,
}

impl<A: BoxArithmetic> R4Siso<A> {
    /// Creates a Radix-4 core from a ⊞/⊟ arithmetic.
    #[must_use]
    pub fn new(arith: A) -> Self {
        R4Siso { arith }
    }

    /// The arithmetic back-end.
    #[must_use]
    pub fn arithmetic(&self) -> &A {
        &self.arith
    }

    /// Processes one check row with two messages per cycle.
    #[must_use]
    pub fn process_row(&self, lambdas: &[A::Msg]) -> SisoRowResult<A::Msg> {
        let degree = lambdas.len();
        let mut check_messages = Vec::with_capacity(degree);
        if degree > 0 {
            // Stage 1: look-ahead f(·) recursion, two λ per cycle:
            // S ← f(S, f(λ_{2n}, λ_{2n+1})).
            let mut chunks = lambdas.chunks_exact(2);
            let mut total: Option<A::Msg> = None;
            for pair in &mut chunks {
                let combined = self.arith.box_plus(pair[0], pair[1]);
                total = Some(match total {
                    Some(t) => self.arith.box_plus(t, combined),
                    None => combined,
                });
            }
            if let Some(&last) = chunks.remainder().first() {
                total = Some(match total {
                    Some(t) => self.arith.box_plus(t, last),
                    None => last,
                });
            }
            let total = total.expect("degree > 0");
            // Stage 2: two g(·) units extract two Λ per cycle; functionally
            // identical to the Radix-2 extraction.
            check_messages.extend(lambdas.iter().map(|&l| self.arith.box_minus(total, l)));
        }
        SisoRowResult {
            check_messages,
            stage1_cycles: SisoRadix::Radix4.stage_cycles(degree),
            stage2_cycles: SisoRadix::Radix4.stage_cycles(degree),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::FixedFormat;

    #[test]
    fn radix_stage_cycles() {
        assert_eq!(SisoRadix::Radix2.stage_cycles(7), 7);
        assert_eq!(SisoRadix::Radix4.stage_cycles(7), 4);
        assert_eq!(SisoRadix::Radix4.stage_cycles(8), 4);
        assert_eq!(SisoRadix::Radix2.messages_per_cycle(), 1);
        assert_eq!(SisoRadix::Radix4.messages_per_cycle(), 2);
    }

    #[test]
    fn r2_float_matches_layered_check_node_update() {
        let arith = FloatBpArithmetic::default();
        let siso = R2Siso::new(arith);
        let lambdas = [1.2, -0.8, 2.5, -3.0, 0.4, 1.9, -2.2];
        let result = siso.process_row(&lambdas);
        let mut reference = Vec::new();
        arith.check_node_update(&lambdas, &mut reference);
        assert_eq!(result.check_messages, reference);
        assert_eq!(result.stage1_cycles, 7);
        assert_eq!(result.stage2_cycles, 7);
        assert_eq!(result.latency_cycles(), 14);
        assert_eq!(result.pipelined_cycles(), 7);
    }

    #[test]
    fn r2_fixed_is_bit_identical_to_layered_datapath() {
        let arith = FixedBpArithmetic::default();
        let siso = R2Siso::new(arith.clone());
        let lambdas = [5, -13, 22, -7, 3, 19, -28, 1];
        let result = siso.process_row(&lambdas);
        let mut reference = Vec::new();
        arith.check_node_update(&lambdas, &mut reference);
        assert_eq!(result.check_messages, reference);
    }

    #[test]
    fn r4_float_matches_r2_closely() {
        let arith = FloatBpArithmetic::default();
        let r2 = R2Siso::new(arith);
        let r4 = R4Siso::new(arith);
        for lambdas in [
            vec![1.5, -2.0, 0.7, 3.2, -1.1, 0.9],
            vec![4.0, -3.0, 2.0, -1.0, 0.5],
            vec![2.0, -2.0],
        ] {
            let out2 = r2.process_row(&lambdas);
            let out4 = r4.process_row(&lambdas);
            for (a, b) in out2.check_messages.iter().zip(&out4.check_messages) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "R4 must be functionally equivalent: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn r4_fixed_stays_within_quantization_of_r2() {
        let arith = FixedBpArithmetic::default();
        let r2 = R2Siso::new(arith.clone());
        let r4 = R4Siso::new(arith);
        let lambdas = [9, -14, 21, 6, -3, 30, -11, 4, 17];
        let out2 = r2.process_row(&lambdas);
        let out4 = r4.process_row(&lambdas);
        for (a, b) in out2.check_messages.iter().zip(&out4.check_messages) {
            // The look-ahead transform changes the association order of the
            // LUT-quantised f(·) recursion; a few LSBs of drift are expected.
            assert!((a - b).abs() <= 4, "R4 fixed drifted too far: {a} vs {b}");
        }
    }

    #[test]
    fn r4_halves_the_stage_cycles() {
        let arith = FloatBpArithmetic::default();
        let r2 = R2Siso::new(arith);
        let r4 = R4Siso::new(arith);
        let lambdas = vec![1.0; 20];
        let out2 = r2.process_row(&lambdas);
        let out4 = r4.process_row(&lambdas);
        assert_eq!(out2.pipelined_cycles(), 20);
        assert_eq!(out4.pipelined_cycles(), 10);
        assert_eq!(out2.latency_cycles(), 2 * out4.latency_cycles());
    }

    #[test]
    fn empty_row_takes_no_cycles() {
        let arith = FloatBpArithmetic::default();
        let out = R2Siso::new(arith).process_row(&[]);
        assert!(out.check_messages.is_empty());
        assert_eq!(out.latency_cycles(), 0);
        let out = R4Siso::new(arith).process_row(&[]);
        assert!(out.check_messages.is_empty());
        assert_eq!(out.latency_cycles(), 0);
    }

    #[test]
    fn odd_degree_r4_handles_the_leftover_message() {
        let arith = FixedBpArithmetic::new(FixedFormat::new(8, 2), 3);
        let r4 = R4Siso::new(arith);
        let lambdas = [10, -20, 30];
        let out = r4.process_row(&lambdas);
        assert_eq!(out.check_messages.len(), 3);
        assert_eq!(out.stage1_cycles, 2);
        // Sign structure of a 3-message row: each output sign is the product
        // of the other two.
        assert!(out.check_messages[0] < 0);
        assert!(out.check_messages[1] > 0);
        assert!(out.check_messages[2] < 0);
    }

    #[test]
    fn accessors_expose_arithmetic() {
        let r2 = R2Siso::new(FloatBpArithmetic::default());
        assert!(r2.arithmetic().name().contains("BP"));
        let r4 = R4Siso::new(FloatBpArithmetic::default());
        assert!(r4.arithmetic().name().contains("BP"));
    }
}
