//! Workspace pooling for the batched decode engine.
//!
//! `decode_batch` gives every worker thread its own [`DecodeWorkspace`];
//! before pooling, those workspaces were rebuilt on every call, so a serving
//! loop pushing batch after batch of the same mode paid one full L/Λ-memory
//! allocation per worker per batch. [`WorkspacePool`] keeps the workspaces
//! between calls, keyed by the compiled code's [`CodeSpec`] (the software
//! mode-ROM key): workers check a workspace out at batch start and back in at
//! batch end, so repeated batches of the same mode allocate nothing at all.
//!
//! Both decoder types own a pool behind an `Arc` — clones of a decoder share
//! it, matching how cloned handles to one mode's decoder should share its
//! memory banks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ldpc_codes::{CodeSpec, CompiledCode};

use crate::workspace::DecodeWorkspace;

/// A shelf of reusable [`DecodeWorkspace`]s per code spec.
///
/// Checkout prefers a pooled workspace already sized for the code and falls
/// back to building a fresh one ([`DecodeWorkspace::for_code`]); check-in
/// returns it for the next batch. Each shelf retains at most
/// [`WorkspacePool::DEFAULT_MAX_POOLED`] workspaces (configurable via
/// [`WorkspacePool::with_max_pooled`]): a caller that once ran a batch with
/// many workers would otherwise pin that worst-case worker count in memory
/// forever, for every mode it ever touched. Check-ins beyond the cap drop the
/// workspace instead of shelving it.
#[derive(Debug)]
pub struct WorkspacePool<M> {
    shelves: Mutex<HashMap<CodeSpec, Vec<DecodeWorkspace<M>>>>,
    created: AtomicUsize,
    dropped: AtomicUsize,
    max_pooled: usize,
}

impl<M: Copy> Default for WorkspacePool<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Copy> WorkspacePool<M> {
    /// Default cap on shelved workspaces per code spec. Matches a healthy
    /// worker count for one shard; steady-state serving with more concurrent
    /// workers can raise it with [`WorkspacePool::with_max_pooled`].
    pub const DEFAULT_MAX_POOLED: usize = 8;

    /// An empty pool with the default per-spec retention cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_pooled(Self::DEFAULT_MAX_POOLED)
    }

    /// An empty pool retaining at most `max_pooled` workspaces per spec
    /// (minimum 1, so check-in/checkout round trips always reuse).
    #[must_use]
    pub fn with_max_pooled(max_pooled: usize) -> Self {
        WorkspacePool {
            shelves: Mutex::new(HashMap::new()),
            created: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            max_pooled: max_pooled.max(1),
        }
    }

    /// The per-spec retention cap.
    #[must_use]
    pub fn max_pooled(&self) -> usize {
        self.max_pooled
    }

    /// Takes a workspace sized for `compiled`, reusing a pooled one for the
    /// same spec when available.
    #[must_use]
    pub fn checkout(&self, compiled: &CompiledCode) -> DecodeWorkspace<M> {
        let pooled = self
            .shelves
            .lock()
            .expect("workspace pool poisoned")
            .get_mut(compiled.spec())
            .and_then(Vec::pop);
        pooled.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            DecodeWorkspace::for_code(compiled)
        })
    }

    /// Returns a workspace to the shelf of `compiled`'s spec for reuse. If
    /// the shelf is already at the retention cap the workspace is dropped —
    /// transient worker spikes must not grow the pool without bound.
    pub fn checkin(&self, compiled: &CompiledCode, ws: DecodeWorkspace<M>) {
        let mut shelves = self.shelves.lock().expect("workspace pool poisoned");
        let shelf = shelves.entry(*compiled.spec()).or_default();
        if shelf.len() < self.max_pooled {
            shelf.push(ws);
        } else {
            drop(ws);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of workspaces currently shelved for `spec`.
    #[must_use]
    pub fn pooled(&self, spec: &CodeSpec) -> usize {
        self.shelves
            .lock()
            .expect("workspace pool poisoned")
            .get(spec)
            .map_or(0, Vec::len)
    }

    /// Total number of workspaces this pool has ever built. Stable across
    /// repeated same-mode batches — the observable form of "repeated batches
    /// allocate nothing".
    #[must_use]
    pub fn workspaces_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of check-ins discarded because the shelf was at the retention
    /// cap. A growing value under steady load means the cap is smaller than
    /// the real concurrent worker count.
    #[must_use]
    pub fn workspaces_dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn compiled(n: usize) -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, n)
            .build()
            .unwrap()
            .compile()
    }

    #[test]
    fn checkout_reuses_checked_in_workspaces() {
        let pool = WorkspacePool::<f64>::new();
        let code = compiled(576);
        let ws = pool.checkout(&code);
        assert_eq!(pool.workspaces_created(), 1);
        assert!(ws.is_ready_for(&code, true));
        let fp = ws.allocation_fingerprint();
        pool.checkin(&code, ws);
        assert_eq!(pool.pooled(code.spec()), 1);
        let ws = pool.checkout(&code);
        assert_eq!(ws.allocation_fingerprint(), fp, "same buffers came back");
        assert_eq!(pool.workspaces_created(), 1, "no rebuild on reuse");
        assert_eq!(pool.pooled(code.spec()), 0);
        pool.checkin(&code, ws);
    }

    #[test]
    fn shelves_are_keyed_by_spec() {
        let pool = WorkspacePool::<f64>::new();
        let small = compiled(576);
        let big = compiled(2304);
        pool.checkin(&small, pool.checkout(&small));
        assert_eq!(pool.pooled(small.spec()), 1);
        assert_eq!(pool.pooled(big.spec()), 0);
        // A different mode builds its own workspace instead of draining the
        // small shelf.
        let ws = pool.checkout(&big);
        assert!(ws.is_ready_for(&big, true));
        assert_eq!(pool.workspaces_created(), 2);
        assert_eq!(pool.pooled(small.spec()), 1);
    }

    #[test]
    fn checkin_is_capped_per_spec() {
        // Regression: a caller that once checked workspaces out under a large
        // worker count (varying batch sizes / thread counts) used to pin that
        // worst case on the shelf forever. Retention is now capped.
        let pool = WorkspacePool::<f64>::with_max_pooled(3);
        let code = compiled(576);
        let spike: Vec<_> = (0..10).map(|_| pool.checkout(&code)).collect();
        assert_eq!(pool.workspaces_created(), 10);
        for ws in spike {
            pool.checkin(&code, ws);
        }
        assert_eq!(pool.pooled(code.spec()), 3, "shelf capped at max_pooled");
        assert_eq!(pool.workspaces_dropped(), 7);
        // The cap is per spec: another mode still shelves its own workspaces.
        let big = compiled(2304);
        pool.checkin(&big, pool.checkout(&big));
        assert_eq!(pool.pooled(big.spec()), 1);
    }

    #[test]
    fn default_cap_is_sane_and_floor_is_one() {
        assert_eq!(
            WorkspacePool::<f64>::new().max_pooled(),
            WorkspacePool::<f64>::DEFAULT_MAX_POOLED
        );
        let pool = WorkspacePool::<f64>::with_max_pooled(0);
        assert_eq!(pool.max_pooled(), 1, "cap of zero would defeat pooling");
        let code = compiled(576);
        pool.checkin(&code, pool.checkout(&code));
        assert_eq!(pool.pooled(code.spec()), 1);
    }
}
