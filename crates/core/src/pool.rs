//! Workspace pooling for the batched decode engine.
//!
//! `decode_batch` gives every worker thread its own [`DecodeWorkspace`];
//! before pooling, those workspaces were rebuilt on every call, so a serving
//! loop pushing batch after batch of the same mode paid one full L/Λ-memory
//! allocation per worker per batch. [`WorkspacePool`] keeps the workspaces
//! between calls, keyed by the compiled code's [`CodeSpec`] (the software
//! mode-ROM key): workers check a workspace out at batch start and back in at
//! batch end, so repeated batches of the same mode allocate nothing at all.
//!
//! Both decoder types own a pool behind an `Arc` — clones of a decoder share
//! it, matching how cloned handles to one mode's decoder should share its
//! memory banks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ldpc_codes::{CodeSpec, CompiledCode};

use crate::workspace::DecodeWorkspace;

/// A shelf of reusable [`DecodeWorkspace`]s per code spec.
///
/// Checkout prefers a pooled workspace already sized for the code and falls
/// back to building a fresh one ([`DecodeWorkspace::for_code`]); check-in
/// returns it for the next batch. The pool never shrinks — like the silicon
/// memory banks it stands in for, capacity is provisioned once per mode and
/// then reused.
#[derive(Debug, Default)]
pub struct WorkspacePool<M> {
    shelves: Mutex<HashMap<CodeSpec, Vec<DecodeWorkspace<M>>>>,
    created: AtomicUsize,
}

impl<M: Copy> WorkspacePool<M> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        WorkspacePool {
            shelves: Mutex::new(HashMap::new()),
            created: AtomicUsize::new(0),
        }
    }

    /// Takes a workspace sized for `compiled`, reusing a pooled one for the
    /// same spec when available.
    #[must_use]
    pub fn checkout(&self, compiled: &CompiledCode) -> DecodeWorkspace<M> {
        let pooled = self
            .shelves
            .lock()
            .expect("workspace pool poisoned")
            .get_mut(compiled.spec())
            .and_then(Vec::pop);
        pooled.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            DecodeWorkspace::for_code(compiled)
        })
    }

    /// Returns a workspace to the shelf of `compiled`'s spec for reuse.
    pub fn checkin(&self, compiled: &CompiledCode, ws: DecodeWorkspace<M>) {
        self.shelves
            .lock()
            .expect("workspace pool poisoned")
            .entry(*compiled.spec())
            .or_default()
            .push(ws);
    }

    /// Number of workspaces currently shelved for `spec`.
    #[must_use]
    pub fn pooled(&self, spec: &CodeSpec) -> usize {
        self.shelves
            .lock()
            .expect("workspace pool poisoned")
            .get(spec)
            .map_or(0, Vec::len)
    }

    /// Total number of workspaces this pool has ever built. Stable across
    /// repeated same-mode batches — the observable form of "repeated batches
    /// allocate nothing".
    #[must_use]
    pub fn workspaces_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn compiled(n: usize) -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, n)
            .build()
            .unwrap()
            .compile()
    }

    #[test]
    fn checkout_reuses_checked_in_workspaces() {
        let pool = WorkspacePool::<f64>::new();
        let code = compiled(576);
        let ws = pool.checkout(&code);
        assert_eq!(pool.workspaces_created(), 1);
        assert!(ws.is_ready_for(&code, true));
        let fp = ws.allocation_fingerprint();
        pool.checkin(&code, ws);
        assert_eq!(pool.pooled(code.spec()), 1);
        let ws = pool.checkout(&code);
        assert_eq!(ws.allocation_fingerprint(), fp, "same buffers came back");
        assert_eq!(pool.workspaces_created(), 1, "no rebuild on reuse");
        assert_eq!(pool.pooled(code.spec()), 0);
        pool.checkin(&code, ws);
    }

    #[test]
    fn shelves_are_keyed_by_spec() {
        let pool = WorkspacePool::<f64>::new();
        let small = compiled(576);
        let big = compiled(2304);
        pool.checkin(&small, pool.checkout(&small));
        assert_eq!(pool.pooled(small.spec()), 1);
        assert_eq!(pool.pooled(big.spec()), 0);
        // A different mode builds its own workspace instead of draining the
        // small shelf.
        let ws = pool.checkout(&big);
        assert!(ws.is_ready_for(&big, true));
        assert_eq!(pool.workspaces_created(), 2);
        assert_eq!(pool.pooled(small.spec()), 1);
    }
}
