//! Workspace pooling for the batched decode engine.
//!
//! `decode_batch` gives every worker thread its own [`DecodeWorkspace`];
//! before pooling, those workspaces were rebuilt on every call, so a serving
//! loop pushing batch after batch of the same mode paid one full L/Λ-memory
//! allocation per worker per batch. [`WorkspacePool`] keeps the workspaces
//! between calls, keyed by the compiled code's [`CodeSpec`] (the software
//! mode-ROM key): workers check a workspace out at batch start and back in at
//! batch end, so repeated batches of the same mode allocate nothing at all.
//!
//! Both decoder types own a pool behind an `Arc` — clones of a decoder share
//! it, matching how cloned handles to one mode's decoder should share its
//! memory banks.
//!
//! # Striping
//!
//! With the persistent decode pool fanning batches across N threads (see
//! [`crate::threadpool`]), every worker used to checkout/checkin through one
//! global mutex — at small frame sizes the pool lock, not the decode, became
//! the scaling ceiling. Each spec's shelf is therefore split into
//! [`WorkspacePool::stripes`] independently locked stripes; a thread's home
//! stripe is derived from its thread id, so in steady state each worker
//! round-trips its workspace through its own stripe untouched by the others.
//! Checkout falls back in two steps: a lock-free-ish sweep that *tries* the
//! other stripes (stealing a shelved workspace beats building one), then an
//! authoritative all-stripes scan under every stripe lock, and only if that
//! still finds nothing is a new workspace built. Holding all stripe locks
//! before creating keeps the old single-mutex guarantee exact: concurrent
//! round-trips by N threads never build more than N workspaces, no matter
//! how the threads interleave (the contention regression test below pins
//! this).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use ldpc_codes::{CodeSpec, CompiledCode};

use crate::workspace::DecodeWorkspace;

/// One spec's shelf: striped stacks of reusable workspaces plus an
/// approximate retained-count used as a fast-path hint and for cap
/// enforcement. The counter is updated *after* the stripe operation
/// (push-then-add, pop-then-sub), so a workspace is always visible in a
/// stripe before the counter reflects it — that ordering is what makes the
/// all-stripes scan in checkout authoritative. The counter may therefore
/// transiently run one short (even negative), which only ever costs a wasted
/// sweep or a momentarily early cap drop, never correctness.
#[derive(Debug)]
struct SpecShelf<M> {
    stripes: Vec<Mutex<Vec<DecodeWorkspace<M>>>>,
    retained: AtomicIsize,
}

impl<M> SpecShelf<M> {
    fn new(stripes: usize) -> Self {
        SpecShelf {
            stripes: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
            retained: AtomicIsize::new(0),
        }
    }
}

/// The calling thread's home stripe: a stable hash of its thread id. Cheap,
/// deterministic per thread, and spread well enough that the decode pool's
/// workers land on distinct stripes with high probability.
fn home_stripe(stripes: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    (hasher.finish() as usize) % stripes
}

/// A striped shelf of reusable [`DecodeWorkspace`]s per code spec.
///
/// Checkout prefers a pooled workspace already sized for the code and falls
/// back to building a fresh one ([`DecodeWorkspace::for_code`]); check-in
/// returns it for the next batch. Each shelf retains at most
/// [`WorkspacePool::DEFAULT_MAX_POOLED`] workspaces (configurable via
/// [`WorkspacePool::with_max_pooled`]): a caller that once ran a batch with
/// many workers would otherwise pin that worst-case worker count in memory
/// forever, for every mode it ever touched. Check-ins beyond the cap drop the
/// workspace instead of shelving it (under concurrent check-ins the cap may
/// transiently overshoot by the number of racing threads — it bounds growth,
/// it is not an exact high-water mark).
#[derive(Debug)]
pub struct WorkspacePool<M> {
    shelves: RwLock<HashMap<CodeSpec, Arc<SpecShelf<M>>>>,
    created: AtomicUsize,
    dropped: AtomicUsize,
    max_pooled: usize,
    stripes: usize,
}

impl<M: Copy> Default for WorkspacePool<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Copy> WorkspacePool<M> {
    /// Default cap on shelved workspaces per code spec. Matches a healthy
    /// worker count for one shard; steady-state serving with more concurrent
    /// workers can raise it with [`WorkspacePool::with_max_pooled`].
    pub const DEFAULT_MAX_POOLED: usize = 8;

    /// An empty pool with the default per-spec retention cap and one stripe
    /// per detected core (capped at 16).
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_pooled(Self::DEFAULT_MAX_POOLED)
    }

    /// An empty pool retaining at most `max_pooled` workspaces per spec
    /// (minimum 1, so check-in/checkout round trips always reuse), with the
    /// default stripe count.
    #[must_use]
    pub fn with_max_pooled(max_pooled: usize) -> Self {
        Self::with_shape(max_pooled, crate::threadpool::detected_cores().min(16))
    }

    /// An empty pool with an explicit retention cap *and* stripe count
    /// (each floored at 1). Mostly for tests that want multi-stripe
    /// behaviour regardless of the host's core count.
    #[must_use]
    pub fn with_shape(max_pooled: usize, stripes: usize) -> Self {
        WorkspacePool {
            shelves: RwLock::new(HashMap::new()),
            created: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            max_pooled: max_pooled.max(1),
            stripes: stripes.max(1),
        }
    }

    /// The per-spec retention cap.
    #[must_use]
    pub fn max_pooled(&self) -> usize {
        self.max_pooled
    }

    /// Number of independently locked stripes per spec shelf.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// The shelf for `spec`, created on first use.
    fn shelf(&self, spec: &CodeSpec) -> Arc<SpecShelf<M>> {
        if let Some(shelf) = self
            .shelves
            .read()
            .expect("workspace pool poisoned")
            .get(spec)
        {
            return Arc::clone(shelf);
        }
        let mut shelves = self.shelves.write().expect("workspace pool poisoned");
        Arc::clone(
            shelves
                .entry(*spec)
                .or_insert_with(|| Arc::new(SpecShelf::new(self.stripes))),
        )
    }

    /// Takes a workspace sized for `compiled`, reusing a pooled one for the
    /// same spec when available.
    #[must_use]
    pub fn checkout(&self, compiled: &CompiledCode) -> DecodeWorkspace<M> {
        let shelf = self.shelf(compiled.spec());
        // Fast path: sweep from the home stripe, skipping stripes someone
        // else is busy with (`try_lock`) — a contended stripe's owner is in
        // the middle of its own round trip, and stalling on it defeats the
        // striping.
        if shelf.retained.load(Ordering::Relaxed) > 0 {
            let home = home_stripe(self.stripes);
            for k in 0..self.stripes {
                let stripe = &shelf.stripes[(home + k) % self.stripes];
                if let Some(ws) = stripe.try_lock().ok().and_then(|mut s| s.pop()) {
                    shelf.retained.fetch_sub(1, Ordering::Relaxed);
                    return ws;
                }
            }
        }
        // Authoritative pass: under *all* stripe locks, either some stripe
        // holds a workspace (steal it) or the shelf is provably empty and
        // building a fresh workspace is the only option. Taking every lock
        // in index order (check-in takes a single stripe lock, so no cycle)
        // makes the emptiness check race-free: a check-in pushes before it
        // publishes, so any workspace conceptually returned to the pool is
        // visible here.
        {
            let mut guards: Vec<MutexGuard<'_, Vec<DecodeWorkspace<M>>>> = shelf
                .stripes
                .iter()
                .map(|s| s.lock().expect("workspace pool stripe poisoned"))
                .collect();
            for guard in &mut guards {
                if let Some(ws) = guard.pop() {
                    drop(guards);
                    shelf.retained.fetch_sub(1, Ordering::Relaxed);
                    return ws;
                }
            }
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        DecodeWorkspace::for_code(compiled)
    }

    /// Returns a workspace to the shelf of `compiled`'s spec for reuse. If
    /// the shelf is already at the retention cap the workspace is dropped —
    /// transient worker spikes must not grow the pool without bound.
    pub fn checkin(&self, compiled: &CompiledCode, ws: DecodeWorkspace<M>) {
        let shelf = self.shelf(compiled.spec());
        if shelf.retained.load(Ordering::Relaxed) >= self.max_pooled as isize {
            drop(ws);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shelf.stripes[home_stripe(self.stripes)]
            .lock()
            .expect("workspace pool stripe poisoned")
            .push(ws);
        shelf.retained.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of workspaces currently shelved for `spec`. Exact when the
    /// pool is quiescent (the stripes are summed one lock at a time).
    #[must_use]
    pub fn pooled(&self, spec: &CodeSpec) -> usize {
        let Some(shelf) = self
            .shelves
            .read()
            .expect("workspace pool poisoned")
            .get(spec)
            .cloned()
        else {
            return 0;
        };
        shelf
            .stripes
            .iter()
            .map(|s| s.lock().expect("workspace pool stripe poisoned").len())
            .sum()
    }

    /// Total number of workspaces this pool has ever built. Stable across
    /// repeated same-mode batches — the observable form of "repeated batches
    /// allocate nothing".
    #[must_use]
    pub fn workspaces_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of check-ins discarded because the shelf was at the retention
    /// cap. A growing value under steady load means the cap is smaller than
    /// the real concurrent worker count.
    #[must_use]
    pub fn workspaces_dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeId, CodeRate, Standard};
    use std::sync::Barrier;

    fn compiled(n: usize) -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, n)
            .build()
            .unwrap()
            .compile()
    }

    #[test]
    fn checkout_reuses_checked_in_workspaces() {
        let pool = WorkspacePool::<f64>::new();
        let code = compiled(576);
        let ws = pool.checkout(&code);
        assert_eq!(pool.workspaces_created(), 1);
        assert!(ws.is_ready_for(&code, true));
        let fp = ws.allocation_fingerprint();
        pool.checkin(&code, ws);
        assert_eq!(pool.pooled(code.spec()), 1);
        let ws = pool.checkout(&code);
        assert_eq!(ws.allocation_fingerprint(), fp, "same buffers came back");
        assert_eq!(pool.workspaces_created(), 1, "no rebuild on reuse");
        assert_eq!(pool.pooled(code.spec()), 0);
        pool.checkin(&code, ws);
    }

    #[test]
    fn shelves_are_keyed_by_spec() {
        let pool = WorkspacePool::<f64>::new();
        let small = compiled(576);
        let big = compiled(2304);
        pool.checkin(&small, pool.checkout(&small));
        assert_eq!(pool.pooled(small.spec()), 1);
        assert_eq!(pool.pooled(big.spec()), 0);
        // A different mode builds its own workspace instead of draining the
        // small shelf.
        let ws = pool.checkout(&big);
        assert!(ws.is_ready_for(&big, true));
        assert_eq!(pool.workspaces_created(), 2);
        assert_eq!(pool.pooled(small.spec()), 1);
    }

    #[test]
    fn checkin_is_capped_per_spec() {
        // Regression: a caller that once checked workspaces out under a large
        // worker count (varying batch sizes / thread counts) used to pin that
        // worst case on the shelf forever. Retention is now capped.
        let pool = WorkspacePool::<f64>::with_max_pooled(3);
        let code = compiled(576);
        let spike: Vec<_> = (0..10).map(|_| pool.checkout(&code)).collect();
        assert_eq!(pool.workspaces_created(), 10);
        for ws in spike {
            pool.checkin(&code, ws);
        }
        assert_eq!(pool.pooled(code.spec()), 3, "shelf capped at max_pooled");
        assert_eq!(pool.workspaces_dropped(), 7);
        // The cap is per spec: another mode still shelves its own workspaces.
        let big = compiled(2304);
        pool.checkin(&big, pool.checkout(&big));
        assert_eq!(pool.pooled(big.spec()), 1);
    }

    #[test]
    fn default_cap_is_sane_and_floor_is_one() {
        assert_eq!(
            WorkspacePool::<f64>::new().max_pooled(),
            WorkspacePool::<f64>::DEFAULT_MAX_POOLED
        );
        assert!(WorkspacePool::<f64>::new().stripes() >= 1);
        let pool = WorkspacePool::<f64>::with_max_pooled(0);
        assert_eq!(pool.max_pooled(), 1, "cap of zero would defeat pooling");
        let code = compiled(576);
        pool.checkin(&code, pool.checkout(&code));
        assert_eq!(pool.pooled(code.spec()), 1);
    }

    #[test]
    fn cross_stripe_stealing_beats_building() {
        // A workspace shelved by one thread must be found by checkouts from
        // any other thread (whose home stripe almost certainly differs) —
        // stealing across stripes, not allocating, is the fallback.
        let pool = WorkspacePool::<f64>::with_shape(8, 8);
        let code = compiled(576);
        pool.checkin(&code, pool.checkout(&code));
        assert_eq!(pool.workspaces_created(), 1);
        for _ in 0..4 {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let ws = pool.checkout(&code);
                    pool.checkin(&code, ws);
                });
            });
        }
        assert_eq!(
            pool.workspaces_created(),
            1,
            "every thread must steal the shelved workspace, never rebuild"
        );
        assert_eq!(pool.pooled(code.spec()), 1);
    }

    #[test]
    fn concurrent_round_trips_keep_pool_hits_stable() {
        // Contention regression for the striped shelf: N threads hammering
        // checkout/checkin on one spec must never build more than N
        // workspaces, warm or cold. The bound is per *concurrent thread*,
        // not "no growth once warm": the all-stripes scan is not atomic, so
        // a shelved workspace can migrate (checkin by one thread, checkout
        // by another) from a not-yet-scanned stripe to an already-scanned
        // one mid-scan and be missed — a scan that instead serialised on
        // every stripe at once would be the contention this pool exists to
        // avoid. What must never happen is a thread building a workspace
        // while fewer than THREADS are checked out *and* none is in
        // transit, and the N-bound captures exactly that.
        const THREADS: usize = 4;
        const ROUNDS: usize = 300;
        let pool = WorkspacePool::<f64>::with_shape(8, 4);
        let code = compiled(576);

        let hammer = |pool: &WorkspacePool<f64>, code: &CompiledCode| {
            let barrier = Barrier::new(THREADS);
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| {
                        barrier.wait();
                        for _ in 0..ROUNDS {
                            let ws = pool.checkout(code);
                            pool.checkin(code, ws);
                        }
                    });
                }
            });
        };

        hammer(&pool, &code);
        let warm = pool.workspaces_created();
        assert!(
            warm <= THREADS,
            "at most one workspace per concurrent thread, got {warm}"
        );
        assert_eq!(pool.pooled(code.spec()), warm, "all returned to shelves");

        hammer(&pool, &code);
        let total = pool.workspaces_created();
        assert!(
            total <= THREADS,
            "a warm pool must stay within one workspace per concurrent \
             thread, got {total}"
        );
        assert_eq!(
            pool.pooled(code.spec()),
            total,
            "all returned to shelves after the second hammer"
        );
        assert_eq!(pool.workspaces_dropped(), 0, "cap never hit at N <= cap");
    }
}
