//! Frame-major SoA multi-frame decoding: the `FrameGroup` layout.
//!
//! The lane-major engine of PR 2 vectorises across the `z` rows of one layer
//! of **one** frame; at small `z` (WiFi modes go down to `z = 27`, WiMAX to
//! `z = 24`) the vectors run half-empty. A *frame group* adds a second vector
//! axis: `F` frames of the same code are interleaved **frame-innermost**, so
//! every per-message buffer grows by a factor of `F` and element `(i, f)` —
//! message slot `i` of frame `f` — lives at `buf[i · F + f]`:
//!
//! ```text
//!            slot 0          slot 1          slot 2
//!         ┌───────────┐   ┌───────────┐   ┌───────────┐
//!  app =  │f0 f1 … fF₋₁│  │f0 f1 … fF₋₁│  │f0 f1 … fF₋₁│ …
//!         └───────────┘   └───────────┘   └───────────┘
//! ```
//!
//! Because the interleave is innermost, every stride-1 span of the
//! single-frame layout stays a stride-1 span, just `F×` longer: the two-span
//! rotation gather/scatter contract of
//! [`CompiledCode`](ldpc_codes::CompiledCode) holds with all offsets
//! multiplied by `F`, and the [`LaneKernel`](crate::arith::LaneKernel) slice
//! kernels run unchanged over `z · F`-lane panels — full vectors even for
//! `z = 24`, with zero extra kernel code.
//!
//! **Per-frame early termination.** Frames of a group converge at different
//! iterations. Every kernel operation is element-wise per lane, so each
//! frame's message evolution is exactly what sequential
//! [`decode_into`](crate::engine::Decoder::decode_into) would produce — and a
//! converged frame can therefore be *compacted out* of the group (its columns
//! removed, the stride shrunk) without perturbing the bit-identity of the
//! others, while genuinely skipping its share of all remaining-iteration
//! work. `compact_columns` implements that in-place repack.
//!
//! See [`Decoder::decode_group_into`](crate::engine::Decoder::decode_group_into)
//! for the engine entry point and
//! [`group_width_for`] for how `F` is chosen.

/// Panel-width target of the group heuristic, in lanes. Wide enough that the
/// compute passes dwarf the per-panel loop overhead and small-`z` modes fill
/// the vector units; small enough that the per-layer working set
/// (≈ `(2·degree + 3) · z · F` messages for the deepest kernel) stays in L1.
pub const TARGET_PANEL_LANES: usize = 128;

/// Most frames ever packed into one group. Caps the APP/Λ working-set growth
/// (`F ×` the single-frame footprint) and the repack cost per convergence.
pub const MAX_GROUP_WIDTH: usize = 16;

/// Parses an `LDPC_GROUP_WIDTH` override. `None` (with a diagnostic on
/// stderr, once per process) for anything that is not a positive integer,
/// mirroring the `LDPC_DECODE_THREADS` parsing — a malformed value falls
/// back to the [`group_width_for`] heuristic instead of being silently
/// misread.
fn width_override(raw: Option<&str>) -> Option<usize> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(w) if w > 0 => Some(w),
        Ok(_) => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: LDPC_GROUP_WIDTH=0 is invalid (need a positive frame-group \
                     width); falling back to the group-width heuristic"
                );
            });
            None
        }
        Err(e) => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: ignoring unparseable LDPC_GROUP_WIDTH={raw:?} ({e}); \
                     falling back to the group-width heuristic"
                );
            });
            None
        }
    }
}

/// The group width `F` the engine prefers for a code with lifting factor `z`:
/// enough frames to bring the `z · F` panels up to [`TARGET_PANEL_LANES`],
/// clamped to `1..=`[`MAX_GROUP_WIDTH`]. Large-`z` codes already fill the
/// vectors and get small groups; `z = 24` WiFi/WiMAX modes get wide ones.
///
/// The `LDPC_GROUP_WIDTH` environment variable (a positive integer,
/// surrounding whitespace allowed) overrides the heuristic for every mode —
/// per-host tuning without a rebuild, since the cache-optimal `F` depends on
/// the machine's cache sizes as much as on `z`. The override is used as
/// given (not clamped to [`MAX_GROUP_WIDTH`]; the group buffers simply grow
/// by that factor); a malformed or zero value is diagnosed on stderr once
/// and ignored. Grouping only changes execution shape, never outputs, so
/// the knob trades speed and memory only.
#[must_use]
pub fn group_width_for(z: usize) -> usize {
    if z == 0 {
        return 1;
    }
    let raw = std::env::var("LDPC_GROUP_WIDTH").ok();
    if let Some(w) = width_override(raw.as_deref()) {
        return w;
    }
    TARGET_PANEL_LANES.div_ceil(z).clamp(1, MAX_GROUP_WIDTH)
}

/// In-place column compaction of a frame-major buffer: keeps only the packed
/// columns listed in `keep` (strictly increasing old column indices), shrinks
/// the stride from `old_width` to `keep.len()` and truncates the buffer to
/// `rows · keep.len()`.
///
/// Both the read and write cursors move strictly forward and the write never
/// overtakes the read, so the repack is safe in place and allocation-free.
///
/// # Panics
///
/// Debug-asserts that `buf` holds `rows · old_width` elements and that `keep`
/// is a strictly increasing subset of `0..old_width`.
pub(crate) fn compact_columns<M: Copy>(
    buf: &mut Vec<M>,
    rows: usize,
    old_width: usize,
    keep: &[u32],
) {
    debug_assert_eq!(buf.len(), rows * old_width);
    debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(keep.iter().all(|&s| (s as usize) < old_width));
    let new_width = keep.len();
    if new_width == old_width {
        return;
    }
    for row in 0..rows {
        for (a, &s) in keep.iter().enumerate() {
            buf[row * new_width + a] = buf[row * old_width + s as usize];
        }
    }
    buf.truncate(rows * new_width);
}

/// Copies packed column `col` of a frame-major buffer with stride `width`
/// into `out` (cleared first): the de-interleaved single-frame view used to
/// finish a converged frame's output.
pub(crate) fn extract_column<M: Copy>(buf: &[M], width: usize, col: usize, out: &mut Vec<M>) {
    debug_assert!(col < width && buf.len().is_multiple_of(width.max(1)));
    out.clear();
    out.extend(buf.iter().skip(col).step_by(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_override_accepts_positive_integers_only() {
        assert_eq!(width_override(None), None);
        assert_eq!(width_override(Some("4")), Some(4));
        assert_eq!(width_override(Some(" 12\n")), Some(12), "whitespace ok");
        // Not clamped: per-host tuning may exceed the heuristic cap.
        assert_eq!(width_override(Some("64")), Some(64));
        // Zero, negatives, garbage and overflow all fall back (with a
        // diagnostic) instead of being silently misread.
        assert_eq!(width_override(Some("0")), None);
        assert_eq!(width_override(Some("-2")), None);
        assert_eq!(width_override(Some("")), None);
        assert_eq!(width_override(Some("six")), None);
        assert_eq!(width_override(Some("8 frames")), None);
        assert_eq!(width_override(Some("999999999999999999999999")), None);
    }

    #[test]
    fn width_heuristic_fills_panels_and_clamps() {
        assert_eq!(group_width_for(0), 1);
        assert_eq!(group_width_for(24), 6, "z=24 WiFi mode gets wide groups");
        assert_eq!(group_width_for(27), 5);
        assert_eq!(group_width_for(96), 2);
        assert_eq!(group_width_for(128), 1);
        assert_eq!(group_width_for(512), 1);
        assert_eq!(group_width_for(1), MAX_GROUP_WIDTH, "capped");
        for z in 1..600 {
            let f = group_width_for(z);
            assert!((1..=MAX_GROUP_WIDTH).contains(&f));
        }
    }

    #[test]
    fn compact_columns_repacks_in_place() {
        // 3 rows × width 4, element (row, col) encoded as 10·row + col.
        let mut buf: Vec<i32> = (0..3)
            .flat_map(|r| (0..4).map(move |c| 10 * r + c))
            .collect();
        compact_columns(&mut buf, 3, 4, &[0, 2, 3]);
        assert_eq!(buf, vec![0, 2, 3, 10, 12, 13, 20, 22, 23]);
        compact_columns(&mut buf, 3, 3, &[1]);
        assert_eq!(buf, vec![2, 12, 22]);
        // Keeping everything is a no-op.
        let mut same = vec![1, 2, 3, 4];
        compact_columns(&mut same, 2, 2, &[0, 1]);
        assert_eq!(same, vec![1, 2, 3, 4]);
        // Dropping every column empties the buffer.
        compact_columns(&mut same, 2, 2, &[]);
        assert!(same.is_empty());
    }

    #[test]
    fn extract_column_deinterleaves() {
        let buf = vec![0, 100, 1, 101, 2, 102];
        let mut out = Vec::new();
        extract_column(&buf, 2, 0, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        extract_column(&buf, 2, 1, &mut out);
        assert_eq!(out, vec![100, 101, 102]);
        extract_column(&buf, 1, 0, &mut out);
        assert_eq!(out, buf);
    }
}
