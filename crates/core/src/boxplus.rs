//! The ⊞ (`f`) and ⊟ (`g`) check-node operations of the belief-propagation
//! decoder (Eq. 1–2 of the paper).
//!
//! Conventionally the check-node update uses `Ψ(x) = −log(tanh(|x/2|))`, but
//! that function is numerically fragile in fixed point. The paper instead
//! computes the check message with the pairwise recursions
//!
//! ```text
//! a ⊞ b = f(a, b) = log((1 + e^a·e^b) / (e^a + e^b))
//! a ⊟ b = g(a, b) = log((1 − e^a·e^b) / (e^a − e^b))
//! ```
//!
//! which expand to the hardware-friendly form of Eq. (2):
//!
//! ```text
//! f(a,b) = sign(a)·sign(b)·min(|a|,|b|) + log(1+e^−(|a|+|b|)) − log(1+e^−||a|−|b||)
//! g(a,b) = sign(a)·sign(b)·min(|a|,|b|) + log(1−e^−(|a|+|b|)) − log(1−e^−||a|−|b||)
//! ```
//!
//! `g` is the (left-)inverse of `f`: `g(f(a,b), b) = a`, which is what lets the
//! layered decoder form the total row sum once and then *extract* each
//! extrinsic message (Eq. 1). This module provides the exact floating-point
//! versions; the fixed-point LUT versions live in [`crate::lut`] and
//! [`crate::arith`].

/// Magnitude clamp applied to the floating-point operators. The true `g` is
/// unbounded when its operands have (nearly) equal magnitude; hardware
/// saturates, and the float reference mirrors that with a generous limit.
pub const FLOAT_CLAMP: f64 = 64.0;

/// The correction term `log(1 + e^{-x})` for `x ≥ 0` (the `f` LUT input).
#[must_use]
pub fn correction_plus(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    (-x).exp().ln_1p()
}

/// The correction term `−log(1 − e^{-x})` for `x > 0` (the `g` LUT input,
/// returned as a non-negative magnitude). Clamped at [`FLOAT_CLAMP`] as
/// `x → 0`.
#[must_use]
pub fn correction_minus(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    if x <= 0.0 {
        return FLOAT_CLAMP;
    }
    let v = -(-(-x).exp()).ln_1p();
    v.min(FLOAT_CLAMP)
}

/// Exact ⊞ operator (`f` in the paper), computed with the robust Eq. (2) form.
#[must_use]
pub fn boxplus(a: f64, b: f64) -> f64 {
    let sign = if (a < 0.0) ^ (b < 0.0) { -1.0 } else { 1.0 };
    let (aa, ab) = (a.abs(), b.abs());
    let magnitude = aa.min(ab) + correction_plus(aa + ab) - correction_plus((aa - ab).abs());
    (sign * magnitude).clamp(-FLOAT_CLAMP, FLOAT_CLAMP)
}

/// Exact ⊟ operator (`g` in the paper): removes contribution `b` from the
/// aggregate `a`, so that `boxminus(boxplus(x, b), b) ≈ x`.
#[must_use]
pub fn boxminus(a: f64, b: f64) -> f64 {
    let sign = if (a < 0.0) ^ (b < 0.0) { -1.0 } else { 1.0 };
    let (aa, ab) = (a.abs(), b.abs());
    let magnitude = aa.min(ab) - correction_minus(aa + ab) + correction_minus((aa - ab).abs());
    (sign * magnitude).clamp(-FLOAT_CLAMP, FLOAT_CLAMP)
}

/// Folds ⊞ over a slice (the total row sum `S_m` of the paper's decoding
/// schedule, Fig. 4), accumulating in element order exactly like the serial
/// `f(·)` recursion of the R2-SISO decoder.
#[must_use]
pub fn boxplus_all(values: &[f64]) -> f64 {
    let mut iter = values.iter();
    let Some(&first) = iter.next() else {
        return FLOAT_CLAMP; // identity of ⊞ is +∞ (certain parity satisfied)
    };
    iter.fold(first, |acc, &v| boxplus(acc, v))
}

/// Reference check-node update via the classic Ψ-function formulation,
/// `Λ_n = Π sign(λ_j) · Ψ(Σ Ψ(|λ_j|))` over `j ≠ n`. Used only to validate the
/// ⊞/⊟ implementation in tests; it is *not* what the hardware computes.
#[must_use]
pub fn reference_check_node(lambdas: &[f64], exclude: usize) -> f64 {
    fn psi(x: f64) -> f64 {
        // -ln(tanh(x/2)), guarded against x == 0.
        let x = x.max(1e-12);
        -((x / 2.0).tanh().ln())
    }
    let mut sign = 1.0;
    let mut sum = 0.0;
    for (j, &l) in lambdas.iter().enumerate() {
        if j == exclude {
            continue;
        }
        if l < 0.0 {
            sign = -sign;
        }
        sum += psi(l.abs());
    }
    (sign * psi(sum)).clamp(-FLOAT_CLAMP, FLOAT_CLAMP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxplus_direct(a: f64, b: f64) -> f64 {
        // log((1 + e^a e^b)/(e^a + e^b)) evaluated in a numerically safe way
        // for moderate arguments (used as ground truth for small values).
        ((1.0 + (a + b).exp()) / (a.exp() + b.exp())).ln()
    }

    #[test]
    fn boxplus_matches_direct_formula() {
        for &a in &[-6.0, -2.5, -0.5, 0.0, 0.3, 1.7, 4.0] {
            for &b in &[-5.0, -1.0, 0.0, 0.8, 2.2, 6.0] {
                let expected = boxplus_direct(a, b);
                let got = boxplus(a, b);
                assert!(
                    (expected - got).abs() < 1e-9,
                    "boxplus({a},{b}) = {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn boxplus_is_commutative_and_bounded_by_min() {
        for &a in &[-3.0, -0.7, 1.2, 5.0] {
            for &b in &[-4.0, 0.4, 2.0] {
                assert!((boxplus(a, b) - boxplus(b, a)).abs() < 1e-12);
                assert!(boxplus(a, b).abs() <= a.abs().min(b.abs()) + 1e-12);
            }
        }
    }

    #[test]
    fn boxplus_zero_annihilates() {
        for &b in &[-5.0, -0.5, 0.0, 1.0, 9.0] {
            assert!(boxplus(0.0, b).abs() < 1e-12);
        }
    }

    #[test]
    fn boxminus_inverts_boxplus() {
        for &a in &[-4.0, -1.5, 0.7, 2.0, 6.0] {
            for &b in &[-5.0, -2.0, 1.0, 3.5] {
                let s = boxplus(a, b);
                let recovered = boxminus(s, b);
                assert!(
                    (recovered - a).abs() < 1e-6,
                    "g(f({a},{b}),{b}) = {recovered}"
                );
            }
        }
    }

    #[test]
    fn boxminus_saturates_on_equal_magnitudes() {
        // Removing a message equal to the aggregate leaves "certainty": the
        // result saturates at the clamp instead of diverging.
        let v = boxminus(1.5, 1.5);
        assert!(v >= FLOAT_CLAMP - 1e-9);
        let v = boxminus(-1.5, 1.5);
        assert!(v <= -(FLOAT_CLAMP - 1e-9));
    }

    #[test]
    fn sign_rules() {
        assert!(boxplus(2.0, 3.0) > 0.0);
        assert!(boxplus(-2.0, 3.0) < 0.0);
        assert!(boxplus(-2.0, -3.0) > 0.0);
        assert!(boxminus(2.0, -3.0) < 0.0);
    }

    #[test]
    fn boxplus_all_matches_pairwise_fold() {
        let xs = [1.2, -0.7, 3.0, -2.2, 0.4];
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = boxplus(acc, x);
        }
        assert!((boxplus_all(&xs) - acc).abs() < 1e-12);
        // Identity element for the empty fold.
        assert!(boxplus_all(&[]) >= FLOAT_CLAMP - 1e-9);
        assert!((boxplus_all(&[2.5]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn extraction_matches_reference_check_node() {
        // The paper's Eq. (1): extracting λ_n from the total sum equals the
        // boxplus of all the *other* messages, i.e. the classic Ψ update.
        let rows: [&[f64]; 3] = [
            &[1.0, -2.0, 3.0, -0.5],
            &[4.0, 2.5, -1.5, 0.8, -3.0, 2.0],
            &[0.9, 1.1, -0.6],
        ];
        for lambdas in rows {
            let total = boxplus_all(lambdas);
            for (i, &l) in lambdas.iter().enumerate() {
                let extracted = boxminus(total, l);
                let reference = reference_check_node(lambdas, i);
                assert!(
                    (extracted - reference).abs() < 1e-5,
                    "row {lambdas:?} position {i}: extracted {extracted} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn correction_terms_are_positive_and_decreasing() {
        let mut prev_plus = f64::INFINITY;
        let mut prev_minus = f64::INFINITY;
        for i in 1..40 {
            let x = i as f64 * 0.2;
            let p = correction_plus(x);
            let m = correction_minus(x);
            assert!(p > 0.0 && p < prev_plus);
            assert!(m > 0.0 && m <= prev_minus);
            assert!(m >= p, "−log(1−e^−x) ≥ log(1+e^−x) for all x > 0");
            prev_plus = p;
            prev_minus = m;
        }
        assert!((correction_plus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(correction_minus(0.0) >= FLOAT_CLAMP);
    }
}
