//! Layer-ordering policies for the block-serial schedule.
//!
//! One full iteration of the layered decoder is split into `j` sub-iterations,
//! one per layer (Fig. 2). The order in which layers are visited does not
//! change the fixed point of the algorithm but does affect (a) convergence
//! speed slightly and (b) pipeline stalls when the decoding of consecutive
//! layers is overlapped (Fig. 4); the paper cites layer shuffling \[10\] as the
//! stall-avoidance mechanism.

use ldpc_codes::{LayerSchedule, QcCode};

/// How the decoder orders layers within an iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LayerOrderPolicy {
    /// Natural order `0, 1, …, j−1`.
    #[default]
    Natural,
    /// Greedy order minimizing the block-column overlap between consecutive
    /// layers (reduces pipeline stalls, §III-C).
    StallMinimizing,
    /// A caller-supplied explicit order.
    Custom(Vec<usize>),
}

impl LayerOrderPolicy {
    /// Resolves the policy into a concrete visit order for `code`.
    ///
    /// # Panics
    ///
    /// Panics if a custom order is not a permutation of `0..j`.
    #[must_use]
    pub fn resolve(&self, code: &QcCode) -> Vec<usize> {
        match self {
            LayerOrderPolicy::Natural => (0..code.block_rows()).collect(),
            LayerOrderPolicy::StallMinimizing => {
                LayerSchedule::stall_minimizing(code).order().to_vec()
            }
            LayerOrderPolicy::Custom(order) => {
                let schedule = LayerSchedule::from_order(order.clone());
                assert_eq!(
                    schedule.len(),
                    code.block_rows(),
                    "custom order must cover every layer"
                );
                schedule.order().to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn code() -> QcCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
    }

    #[test]
    fn natural_order() {
        let order = LayerOrderPolicy::Natural.resolve(&code());
        assert_eq!(order, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn stall_minimizing_is_permutation() {
        let order = LayerOrderPolicy::StallMinimizing.resolve(&code());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn custom_order_is_used_verbatim() {
        let custom: Vec<usize> = (0..12).rev().collect();
        let order = LayerOrderPolicy::Custom(custom.clone()).resolve(&code());
        assert_eq!(order, custom);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn custom_order_must_be_permutation() {
        let _ = LayerOrderPolicy::Custom(vec![0, 0, 1]).resolve(&code());
    }

    #[test]
    #[should_panic(expected = "cover every layer")]
    fn custom_order_must_cover_all_layers() {
        let _ = LayerOrderPolicy::Custom(vec![0, 1, 2]).resolve(&code());
    }

    #[test]
    fn default_is_natural() {
        assert_eq!(LayerOrderPolicy::default(), LayerOrderPolicy::Natural);
    }
}
