//! Floating-point full-BP arithmetic (algorithmic reference).
//!
//! This back-end evaluates the ⊞/⊟ recursions exactly (up to `f64` rounding)
//! and serves as the golden reference the fixed-point datapath is compared
//! against.

use super::DecoderArithmetic;
use crate::boxplus::{boxminus, boxplus, FLOAT_CLAMP};

/// Full belief-propagation check-node update in double precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatBpArithmetic {
    clamp: f64,
    app_clamp: f64,
}

impl Default for FloatBpArithmetic {
    fn default() -> Self {
        FloatBpArithmetic {
            clamp: FLOAT_CLAMP,
            app_clamp: 4.0 * FLOAT_CLAMP,
        }
    }
}

impl FloatBpArithmetic {
    /// Creates the reference arithmetic with a custom LLR clamp for the
    /// check messages; the a-posteriori values get 4× that headroom.
    ///
    /// # Panics
    ///
    /// Panics if `clamp` is not strictly positive.
    #[must_use]
    pub fn with_clamp(clamp: f64) -> Self {
        assert!(clamp > 0.0, "clamp must be positive");
        FloatBpArithmetic {
            clamp,
            app_clamp: 4.0 * clamp,
        }
    }

    /// The LLR magnitude clamp of the check-message datapath.
    #[must_use]
    pub fn clamp(&self) -> f64 {
        self.clamp
    }

    /// The (wider) LLR magnitude clamp of the a-posteriori values.
    #[must_use]
    pub fn app_clamp(&self) -> f64 {
        self.app_clamp
    }
}

impl DecoderArithmetic for FloatBpArithmetic {
    type Msg = f64;

    /// An exactly-zero channel LLR (possible when the input was pre-quantised)
    /// is nudged to a vanishingly small positive value: an exact zero is the
    /// absorbing element of ⊞ and would erase every check row it touches.
    fn from_channel(&self, llr: f64) -> f64 {
        let v = llr.clamp(-self.clamp, self.clamp);
        if v == 0.0 {
            1e-9
        } else {
            v
        }
    }

    fn to_llr(&self, m: f64) -> f64 {
        m
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn add(&self, a: f64, b: f64) -> f64 {
        (a + b).clamp(-self.app_clamp, self.app_clamp)
    }

    fn sub(&self, a: f64, b: f64) -> f64 {
        (a - b).clamp(-self.clamp, self.clamp)
    }

    fn check_node_update(&self, lambdas: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if lambdas.is_empty() {
            return;
        }
        // Total ⊞ sum S_m, accumulated serially like the f(·) recursion of the
        // R2-SISO core (Fig. 4, "decoding stage 1") …
        let mut total = lambdas[0];
        for &l in &lambdas[1..] {
            total = boxplus(total, l);
        }
        // … then extraction of each extrinsic message with the g(·) unit
        // ("decoding stage 2"), Eq. (1): Λ_mn = S_m ⊟ λ_mn.
        out.extend(
            lambdas
                .iter()
                .map(|&l| boxminus(total, l).clamp(-self.clamp, self.clamp)),
        );
    }

    fn name(&self) -> &'static str {
        "full-BP float64"
    }
}

/// Scalar-fallback lane kernels: the reference back-end keeps working
/// unchanged on the lane-major engine path (the fallback walks the lanes
/// row-serially, so it is bit-identical by construction).
impl super::lanes::LaneKernel for FloatBpArithmetic {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::test_support::check_basic_axioms;
    use crate::boxplus::reference_check_node;

    #[test]
    fn satisfies_basic_axioms() {
        check_basic_axioms(&FloatBpArithmetic::default());
    }

    #[test]
    fn check_node_matches_psi_reference() {
        let arith = FloatBpArithmetic::default();
        let lambdas = [1.3, -2.4, 0.8, 3.1, -0.2];
        let mut out = Vec::new();
        arith.check_node_update(&lambdas, &mut out);
        for (i, &v) in out.iter().enumerate() {
            let reference = reference_check_node(&lambdas, i);
            assert!((v - reference).abs() < 1e-5, "pos {i}: {v} vs {reference}");
        }
    }

    #[test]
    fn degree_two_row_swaps_messages() {
        let arith = FloatBpArithmetic::default();
        let mut out = Vec::new();
        arith.check_node_update(&[2.0, -3.0], &mut out);
        assert!((out[0] - (-3.0)).abs() < 1e-6);
        assert!((out[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn channel_values_are_clamped() {
        let arith = FloatBpArithmetic::with_clamp(10.0);
        assert_eq!(arith.from_channel(100.0), 10.0);
        assert_eq!(arith.from_channel(-100.0), -10.0);
        // λ = L − Λ saturates at the message clamp …
        assert_eq!(arith.sub(100.0, -100.0), 10.0);
        // … while the APP update gets 4× headroom.
        assert_eq!(arith.add(30.0, 30.0), 40.0);
        assert_eq!(arith.clamp(), 10.0);
        assert_eq!(arith.app_clamp(), 40.0);
    }

    #[test]
    fn empty_row_is_a_noop() {
        let arith = FloatBpArithmetic::default();
        let mut out = vec![1.0];
        arith.check_node_update(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn output_magnitudes_are_extrinsic() {
        // For a row whose messages all agree in sign, every output is positive
        // and no output exceeds the smallest *other* input magnitude... plus
        // correction; allow a small tolerance.
        let arith = FloatBpArithmetic::default();
        let lambdas = [4.0, 2.0, 3.0, 5.0];
        let mut out = Vec::new();
        arith.check_node_update(&lambdas, &mut out);
        for (i, &v) in out.iter().enumerate() {
            assert!(v > 0.0);
            let min_other = lambdas
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x)
                .fold(f64::INFINITY, f64::min);
            assert!(v <= min_other + 0.7, "pos {i}: {v} > min_other {min_other}");
        }
    }

    #[test]
    fn name_mentions_bp() {
        assert!(FloatBpArithmetic::default().name().contains("BP"));
    }
}
