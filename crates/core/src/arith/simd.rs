//! Explicit-SIMD panel kernels with once-per-process runtime dispatch.
//!
//! The [`LaneKernel`](super::LaneKernel) slice kernels process
//! `z · F`-lane panels through
//! branch-free scalar `i32` loops and rely on the compiler to auto-vectorise
//! them. This module is the tier below: hand-written `std::arch` intrinsics
//! for the fixed-point panel hot loops, selected **once per process** by
//! [`active_level`] (runtime CPU feature detection on stable Rust — no
//! nightly, no compile-time `-C target-cpu` requirement) and always
//! bit-identical to the scalar panel reference:
//!
//! * **AVX2** — 8-lane `i32` vectors, and the one thing auto-vectorisation
//!   can never produce from the scalar loops: true hardware gathers
//!   (`vpgatherdd`, [`_mm256_i32gather_epi32`]) through the dense
//!   [`CorrectionLut`] table. At this width the whole ⊞/⊟ operator *fuses*
//!   into a single register-resident pass ([`boxplus_panel`] /
//!   [`boxminus_panel`]): magnitude split, both LUT gathers and the
//!   sign/saturate combine with no round-trips through the `LaneScratch`
//!   panels.
//! * **SSE4.1** — 4-lane vectors for the split/combine/minima/`sub`/`add`
//!   passes. SSE has no gather, so the LUT pass stays the scalar
//!   clamped-index loop and the three-pass structure is kept.
//! * **Scalar** — the universal fallback: exactly the branch-free loops the
//!   auto-vectorised panel tier has always run (kept in [`mod@self`] as the
//!   bit-identity reference), used on non-x86 targets, on CPUs without
//!   SSE4.1, and whenever `LDPC_FORCE_SCALAR` is set.
//!
//! # Dispatch
//!
//! [`detected_level`] probes the CPU once (cached) via
//! `is_x86_feature_detected!`; [`active_level`] additionally honours the
//! `LDPC_FORCE_SCALAR` environment variable (read once per process, like
//! `LDPC_DECODE_THREADS`) as an escape hatch for A/B measurement and for
//! pinning CI legs to the fallback path. Every public kernel takes an
//! explicit [`SimdLevel`] so tests and benches can pin a tier per call; the
//! level is clamped to the detected capability
//! ([`SimdLevel::effective`]), which is what makes these functions *safe*:
//! an intrinsic path can only be reached on a CPU that reported the feature.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! lint is `deny(unsafe_code)`, relaxed for this module alone). Every
//! `unsafe` block is one of exactly two shapes, each individually justified
//! at the block:
//!
//! 1. **Feature-gated intrinsic calls** — `#[target_feature]` functions are
//!    only invoked after [`SimdLevel::effective`] capped the requested level
//!    at [`detected_level`], so the ISA extension is guaranteed present.
//! 2. **Raw-pointer panel loads/stores** — every kernel asserts all its
//!    slices share one length `n` on entry, and every pointer access is at
//!    offset `i + WIDTH ≤ n`; ragged tails (`n mod WIDTH`) are delegated to
//!    the safe scalar reference on sub-slices.
//!
//! The gather index vector is clamped with an **unsigned** min against
//! `dense.len() − 1` before every `vpgatherdd`, so each gathered address is
//! in-bounds for any `i32` input, exactly mirroring the scalar
//! `dense[(x as usize).min(last)]` (negative codes wrap to huge unsigned
//! values and clamp to the saturation entry on both paths).
//!
//! # Bit-identity contract
//!
//! Every kernel here produces, for every lane, exactly the bytes the scalar
//! panel reference produces — same clamps in the same order, same sign rule,
//! same tie semantics in the minima tracking. The contract is pinned by the
//! unit tests below, by `tests/integration_simd.rs` (exhaustive dense-LUT
//! domain sweep, boundary/saturation sweeps, ragged tails, full-decoder
//! bit-identity across levels) and by the `LDPC_FORCE_SCALAR=1` CI leg
//! running the whole suite on the fallback path.
//!
//! [`_mm256_i32gather_epi32`]: core::arch::x86_64::_mm256_i32gather_epi32
//! [`CorrectionLut`]: crate::lut::CorrectionLut

#![allow(clippy::too_many_arguments)]

use crate::lut::CorrectionLut;
use std::sync::OnceLock;

/// A kernel tier: which instruction-set extension the panel kernels run on.
///
/// Ordered by capability: `Scalar < Sse41 < Avx2`. Requesting a level the
/// CPU does not support silently degrades to the best supported one
/// ([`SimdLevel::effective`]), so any `SimdLevel` value is safe to pass
/// anywhere; on non-x86 targets every level degrades to `Scalar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdLevel {
    /// The branch-free scalar panel loops (auto-vectorised by the compiler).
    Scalar,
    /// 4-lane `i32` SSE4.1 kernels (scalar LUT gather — SSE has none).
    Sse41,
    /// 8-lane `i32` AVX2 kernels with `vpgatherdd` LUT gathers and fused
    /// ⊞/⊟ panels.
    Avx2,
}

impl SimdLevel {
    /// Short lower-case tier name, as printed by CI headers and baselines:
    /// `"avx2"`, `"sse4.1"` or `"scalar"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Sse41 => "sse4.1",
            SimdLevel::Scalar => "scalar",
        }
    }

    /// This level clamped to what the running CPU actually supports — the
    /// level whose kernels will really execute. Idempotent.
    #[must_use]
    pub fn effective(self) -> SimdLevel {
        self.min(detected_level())
    }
}

/// The best kernel tier the running CPU supports, probed once per process
/// (cached) via `is_x86_feature_detected!`. Ignores `LDPC_FORCE_SCALAR`;
/// see [`active_level`] for the tier the decode engine actually uses.
#[must_use]
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return SimdLevel::Sse41;
            }
        }
        SimdLevel::Scalar
    })
}

/// Whether a raw `LDPC_FORCE_SCALAR` value requests the scalar fallback.
///
/// Unset and the usual falsey spellings (`0`, `false`, `no`, `off`, empty —
/// trimmed, case-insensitive) leave SIMD dispatch on; the truthy spellings
/// (`1`, `true`, `yes`, `on`) force scalar. Any other value is diagnosed on
/// stderr once per process and treated as *forcing scalar* — the user
/// clearly asked for the fallback, and degrading performance is the safe
/// way to honour a garbled request.
fn force_scalar(raw: Option<&str>) -> bool {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let Some(raw) = raw else {
        return false;
    };
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "0" | "false" | "no" | "off" => false,
        "1" | "true" | "yes" | "on" => true,
        _ => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: unrecognised LDPC_FORCE_SCALAR={raw:?} (expected 0/1); \
                     treating it as set and forcing the scalar kernel tier"
                );
            });
            true
        }
    }
}

/// The kernel tier the decode engine dispatches to: [`detected_level`]
/// unless the `LDPC_FORCE_SCALAR` environment variable pins the scalar
/// fallback. Read once per process and cached — changing the variable after
/// the first decode has no effect.
#[must_use]
pub fn active_level() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if force_scalar(std::env::var("LDPC_FORCE_SCALAR").ok().as_deref()) {
            SimdLevel::Scalar
        } else {
            detected_level()
        }
    })
}

/// Asserts that every slice passed to a panel kernel shares one length.
/// Hard (release-mode) asserts: the intrinsic kernels turn these lengths
/// into raw-pointer bounds, so a mismatch must never reach them.
macro_rules! assert_same_len {
    ($first:expr $(, $rest:expr)+ $(,)?) => {
        let n = $first.len();
        $(assert_eq!($rest.len(), n, "panel kernel slice length mismatch");)+
    };
}

// ---------------------------------------------------------------------------
// Scalar reference implementations
// ---------------------------------------------------------------------------

/// The branch-free scalar panel loops — the bit-identity reference every
/// vector kernel is pinned against, and the universal dispatch fallback.
/// These are exactly the loops the auto-vectorised panel tier has always
/// run (moved here from `fixed_bp.rs`/`min_sum.rs` when the explicit-SIMD
/// tier landed).
pub(crate) mod scalar {
    /// Pass 1 of the ⊞/⊟ decomposition: per lane, the minimum, the
    /// format-saturated sum and the absolute difference of the two input
    /// magnitudes. Inputs are in-range message codes (`|x| ≤ max_code`), so
    /// `aa + ab` cannot overflow and the sum saturation reduces to a `min`.
    pub(crate) fn magnitude_split(
        max_code: i32,
        a: &[i32],
        b: &[i32],
        mins: &mut [i32],
        sums: &mut [i32],
        diffs: &mut [i32],
    ) {
        for ((((&a, &b), mn), sm), df) in a
            .iter()
            .zip(b)
            .zip(mins.iter_mut())
            .zip(sums.iter_mut())
            .zip(diffs.iter_mut())
        {
            let (aa, ab) = (a.abs(), b.abs());
            *mn = aa.min(ab);
            *sm = (aa + ab).min(max_code);
            *df = (aa - ab).abs();
        }
    }

    /// Pass 3 of the ⊞: combines the min lane with the LUT-corrected
    /// sum/diff lanes, magnitude floored at one LSB, sign applied as
    /// `((a ^ b) >> 31) | 1` (±1) — no per-element branch.
    pub(crate) fn combine_plus(
        max_code: i32,
        a: &[i32],
        b: &[i32],
        mins: &[i32],
        corr_sums: &[i32],
        corr_diffs: &[i32],
        out: &mut [i32],
    ) {
        for (((((&a, &b), &mn), &cs), &cd), o) in a
            .iter()
            .zip(b)
            .zip(mins)
            .zip(corr_sums)
            .zip(corr_diffs)
            .zip(out.iter_mut())
        {
            let magnitude = (mn + cs - cd).clamp(1, max_code);
            *o = (((a ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// In-place [`combine_plus`] for the running ⊞ accumulator
    /// (`acc = acc ⊞ b`; the sign still reads the pre-update `acc`).
    pub(crate) fn combine_plus_assign(
        max_code: i32,
        acc: &mut [i32],
        b: &[i32],
        mins: &[i32],
        corr_sums: &[i32],
        corr_diffs: &[i32],
    ) {
        for ((((acc, &b), &mn), &cs), &cd) in acc
            .iter_mut()
            .zip(b)
            .zip(mins)
            .zip(corr_sums)
            .zip(corr_diffs)
        {
            let magnitude = (mn + cs - cd).clamp(1, max_code);
            *acc = (((*acc ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// Pass 3 of the ⊟ (magnitude floored at 0, not 1).
    pub(crate) fn combine_minus(
        max_code: i32,
        a: &[i32],
        b: &[i32],
        mins: &[i32],
        corr_sums: &[i32],
        corr_diffs: &[i32],
        out: &mut [i32],
    ) {
        for (((((&a, &b), &mn), &cs), &cd), o) in a
            .iter()
            .zip(b)
            .zip(mins)
            .zip(corr_sums)
            .zip(corr_diffs)
            .zip(out.iter_mut())
        {
            let magnitude = (mn - cs + cd).clamp(0, max_code);
            *o = (((a ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// Dense-table LUT gather: `out[i] = dense[min(xs[i], last)]` with the
    /// index clamp in unsigned/`usize` space (negative codes clamp to the
    /// saturation entry).
    pub(crate) fn lut_gather_dense(dense: &[i32], xs: &[i32], out: &mut [i32]) {
        let last = dense.len() - 1;
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = dense[(x as usize).min(last)];
        }
    }

    /// In-place [`lut_gather_dense`].
    pub(crate) fn lut_map_dense(dense: &[i32], xs: &mut [i32]) {
        let last = dense.len() - 1;
        for x in xs.iter_mut() {
            *x = dense[(*x as usize).min(last)];
        }
    }

    /// Fused dense-LUT ⊞ over a panel — the scalar twin of the AVX2 gather
    /// kernel, used for its ragged tail. Bit-identical to
    /// `magnitude_split` + two `lut_gather_dense` + `combine_plus`.
    pub(crate) fn boxplus_dense(
        dense: &[i32],
        max_code: i32,
        a: &[i32],
        b: &[i32],
        out: &mut [i32],
    ) {
        let last = dense.len() - 1;
        for ((&a, &b), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let (aa, ab) = (a.abs(), b.abs());
            let mn = aa.min(ab);
            let sm = (aa + ab).min(max_code);
            let df = (aa - ab).abs();
            let magnitude = (mn + dense[(sm as usize).min(last)] - dense[(df as usize).min(last)])
                .clamp(1, max_code);
            *o = (((a ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// In-place fused dense-LUT ⊞ (`acc = acc ⊞ b`).
    pub(crate) fn boxplus_assign_dense(dense: &[i32], max_code: i32, acc: &mut [i32], b: &[i32]) {
        let last = dense.len() - 1;
        for (acc, &b) in acc.iter_mut().zip(b) {
            let a = *acc;
            let (aa, ab) = (a.abs(), b.abs());
            let mn = aa.min(ab);
            let sm = (aa + ab).min(max_code);
            let df = (aa - ab).abs();
            let magnitude = (mn + dense[(sm as usize).min(last)] - dense[(df as usize).min(last)])
                .clamp(1, max_code);
            *acc = (((a ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// Fused dense-LUT ⊟ over a panel (corrections swapped, floor 0).
    pub(crate) fn boxminus_dense(
        dense: &[i32],
        max_code: i32,
        a: &[i32],
        b: &[i32],
        out: &mut [i32],
    ) {
        let last = dense.len() - 1;
        for ((&a, &b), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let (aa, ab) = (a.abs(), b.abs());
            let mn = aa.min(ab);
            let sm = (aa + ab).min(max_code);
            let df = (aa - ab).abs();
            let magnitude = (mn - dense[(sm as usize).min(last)] + dense[(df as usize).min(last)])
                .clamp(0, max_code);
            *o = (((a ^ b) >> 31) | 1) * magnitude;
        }
    }

    /// `λ = L − Λ` clamp with the fixed-BP ±1-LSB zero remap in select form.
    pub(crate) fn sub_lanes_remap(lo: i32, hi: i32, app: &[i32], lambda: &[i32], out: &mut [i32]) {
        for ((o, &a), &b) in out.iter_mut().zip(app).zip(lambda) {
            let r = (a - b).clamp(lo, hi);
            let zero_remap = (a >> 31) | 1;
            *o = if r == 0 { zero_remap } else { r };
        }
    }

    /// Plain `λ = L − Λ` clamp (fixed Min-Sum).
    pub(crate) fn sub_lanes_clamp(lo: i32, hi: i32, app: &[i32], lambda: &[i32], out: &mut [i32]) {
        for ((o, &a), &b) in out.iter_mut().zip(app).zip(lambda) {
            *o = (a - b).clamp(lo, hi);
        }
    }

    /// `L = λ + Λ′` clamp to the (wider) APP range.
    pub(crate) fn add_lanes_clamp(lo: i32, hi: i32, lam: &[i32], upd: &[i32], out: &mut [i32]) {
        for ((o, &a), &b) in out.iter_mut().zip(lam).zip(upd) {
            *o = (a + b).clamp(lo, hi);
        }
    }

    /// One slot of the two-minima tracking pass, in select form: same
    /// first-wins tie semantics as the row-serial reference (`a == m1`
    /// keeps the earlier argmin), no branches.
    pub(crate) fn min_sum_track(
        slot: i32,
        inc: &[i32],
        min1: &mut [i32],
        min2: &mut [i32],
        argmin: &mut [i32],
        parity: &mut [i32],
    ) {
        for ((((&l, m1), m2), am), p) in inc
            .iter()
            .zip(min1.iter_mut())
            .zip(min2.iter_mut())
            .zip(argmin.iter_mut())
            .zip(parity.iter_mut())
        {
            let a = l.abs();
            let displaces = a < *m1;
            *m2 = if displaces { *m1 } else { a.min(*m2) };
            *am = if displaces { slot } else { *am };
            *m1 = a.min(*m1);
            *p ^= i32::from(l < 0);
        }
    }

    /// One slot of the Min-Sum output pass: second minimum at the argmin,
    /// first minimum elsewhere, saturated, normalised with the hardware
    /// `α = 0.75` shift-and-subtract (`x − (x >> 2)`, matching
    /// `FixedMinSumArithmetic::normalize`), sign = row parity ⊕ own sign.
    pub(crate) fn min_sum_emit(
        slot: i32,
        max_code: i32,
        inc: &[i32],
        min1: &[i32],
        min2: &[i32],
        argmin: &[i32],
        parity: &[i32],
        out: &mut [i32],
    ) {
        for (((((o, &l), &m1), &m2), &am), &p) in out
            .iter_mut()
            .zip(inc)
            .zip(min1)
            .zip(min2)
            .zip(argmin)
            .zip(parity)
        {
            let raw = if am == slot { m2 } else { m1 };
            let mag0 = raw.min(max_code);
            let mag = mag0 - (mag0 >> 2);
            *o = if (p ^ i32::from(l < 0)) != 0 {
                -mag
            } else {
                mag
            };
        }
    }
}

// ---------------------------------------------------------------------------
// x86 intrinsic kernels (AVX2 + SSE4.1, one macro instantiation per width)
// ---------------------------------------------------------------------------

/// Stamps out one width-specific x86 kernel module. Every function carries
/// `#[target_feature(enable = …)]` and is `unsafe` with the single safety
/// requirement *"the CPU supports this feature"*: all slice lengths are
/// hard-asserted equal on entry, every raw-pointer access is bounded by
/// `i + WIDTH ≤ n`, and ragged tails go through the safe scalar reference.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_panel_kernels {
    (
        $modname:ident, $feature:literal, $vec:ty, $width:expr,
        $loadu:ident, $storeu:ident, $set1:ident, $setzero:ident,
        $abs:ident, $min:ident, $max:ident,
        $add:ident, $sub:ident, $xor:ident, $or:ident,
        $srli:ident, $srai:ident, $cmpeq:ident, $cmpgt:ident,
        $blendv:ident, $sign:ident
    ) => {
        mod $modname {
            use super::scalar;
            use core::arch::x86_64::*;

            pub(super) const WIDTH: usize = $width;

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn magnitude_split(
                max_code: i32,
                a: &[i32],
                b: &[i32],
                mins: &mut [i32],
                sums: &mut [i32],
                diffs: &mut [i32],
            ) {
                assert_same_len!(a, b, mins, sums, diffs);
                let n = a.len();
                let vmax = $set1(max_code);
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(a.as_ptr().add(i).cast());
                    let vb = $loadu(b.as_ptr().add(i).cast());
                    let aa = $abs(va);
                    let ab = $abs(vb);
                    $storeu(mins.as_mut_ptr().add(i).cast(), $min(aa, ab));
                    $storeu(sums.as_mut_ptr().add(i).cast(), $min($add(aa, ab), vmax));
                    $storeu(diffs.as_mut_ptr().add(i).cast(), $abs($sub(aa, ab)));
                    i += WIDTH;
                }
                scalar::magnitude_split(
                    max_code,
                    &a[i..],
                    &b[i..],
                    &mut mins[i..],
                    &mut sums[i..],
                    &mut diffs[i..],
                );
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn combine_plus(
                max_code: i32,
                a: &[i32],
                b: &[i32],
                mins: &[i32],
                corr_sums: &[i32],
                corr_diffs: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(a, b, mins, corr_sums, corr_diffs, out);
                let n = a.len();
                let vmax = $set1(max_code);
                let vone = $set1(1);
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(a.as_ptr().add(i).cast());
                    let vb = $loadu(b.as_ptr().add(i).cast());
                    let mn = $loadu(mins.as_ptr().add(i).cast());
                    let cs = $loadu(corr_sums.as_ptr().add(i).cast());
                    let cd = $loadu(corr_diffs.as_ptr().add(i).cast());
                    let mag = $max($min($sub($add(mn, cs), cd), vmax), vone);
                    // `(a ^ b) | 1` is never zero and carries the sign of
                    // `a ^ b`, so the sign-select reproduces
                    // `(((a ^ b) >> 31) | 1) * mag` exactly.
                    let s = $or($xor(va, vb), vone);
                    $storeu(out.as_mut_ptr().add(i).cast(), $sign(mag, s));
                    i += WIDTH;
                }
                scalar::combine_plus(
                    max_code,
                    &a[i..],
                    &b[i..],
                    &mins[i..],
                    &corr_sums[i..],
                    &corr_diffs[i..],
                    &mut out[i..],
                );
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn combine_plus_assign(
                max_code: i32,
                acc: &mut [i32],
                b: &[i32],
                mins: &[i32],
                corr_sums: &[i32],
                corr_diffs: &[i32],
            ) {
                assert_same_len!(acc, b, mins, corr_sums, corr_diffs);
                let n = acc.len();
                let vmax = $set1(max_code);
                let vone = $set1(1);
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n; the load of `acc` happens
                    // before the store to the same span.
                    let va = $loadu(acc.as_ptr().add(i).cast());
                    let vb = $loadu(b.as_ptr().add(i).cast());
                    let mn = $loadu(mins.as_ptr().add(i).cast());
                    let cs = $loadu(corr_sums.as_ptr().add(i).cast());
                    let cd = $loadu(corr_diffs.as_ptr().add(i).cast());
                    let mag = $max($min($sub($add(mn, cs), cd), vmax), vone);
                    let s = $or($xor(va, vb), vone);
                    $storeu(acc.as_mut_ptr().add(i).cast(), $sign(mag, s));
                    i += WIDTH;
                }
                scalar::combine_plus_assign(
                    max_code,
                    &mut acc[i..],
                    &b[i..],
                    &mins[i..],
                    &corr_sums[i..],
                    &corr_diffs[i..],
                );
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn combine_minus(
                max_code: i32,
                a: &[i32],
                b: &[i32],
                mins: &[i32],
                corr_sums: &[i32],
                corr_diffs: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(a, b, mins, corr_sums, corr_diffs, out);
                let n = a.len();
                let vmax = $set1(max_code);
                let vone = $set1(1);
                let vzero = $setzero();
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(a.as_ptr().add(i).cast());
                    let vb = $loadu(b.as_ptr().add(i).cast());
                    let mn = $loadu(mins.as_ptr().add(i).cast());
                    let cs = $loadu(corr_sums.as_ptr().add(i).cast());
                    let cd = $loadu(corr_diffs.as_ptr().add(i).cast());
                    let mag = $max($min($add($sub(mn, cs), cd), vmax), vzero);
                    let s = $or($xor(va, vb), vone);
                    $storeu(out.as_mut_ptr().add(i).cast(), $sign(mag, s));
                    i += WIDTH;
                }
                scalar::combine_minus(
                    max_code,
                    &a[i..],
                    &b[i..],
                    &mins[i..],
                    &corr_sums[i..],
                    &corr_diffs[i..],
                    &mut out[i..],
                );
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sub_lanes_remap(
                lo: i32,
                hi: i32,
                app: &[i32],
                lambda: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(app, lambda, out);
                let n = app.len();
                let (vlo, vhi) = ($set1(lo), $set1(hi));
                let vone = $set1(1);
                let vzero = $setzero();
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(app.as_ptr().add(i).cast());
                    let vb = $loadu(lambda.as_ptr().add(i).cast());
                    let r = $min($max($sub(va, vb), vlo), vhi);
                    let zero_remap = $or($srai::<31>(va), vone);
                    let is_zero = $cmpeq(r, vzero);
                    $storeu(
                        out.as_mut_ptr().add(i).cast(),
                        $blendv(r, zero_remap, is_zero),
                    );
                    i += WIDTH;
                }
                scalar::sub_lanes_remap(lo, hi, &app[i..], &lambda[i..], &mut out[i..]);
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sub_lanes_clamp(
                lo: i32,
                hi: i32,
                app: &[i32],
                lambda: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(app, lambda, out);
                let n = app.len();
                let (vlo, vhi) = ($set1(lo), $set1(hi));
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(app.as_ptr().add(i).cast());
                    let vb = $loadu(lambda.as_ptr().add(i).cast());
                    let r = $min($max($sub(va, vb), vlo), vhi);
                    $storeu(out.as_mut_ptr().add(i).cast(), r);
                    i += WIDTH;
                }
                scalar::sub_lanes_clamp(lo, hi, &app[i..], &lambda[i..], &mut out[i..]);
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add_lanes_clamp(
                lo: i32,
                hi: i32,
                lam: &[i32],
                upd: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(lam, upd, out);
                let n = lam.len();
                let (vlo, vhi) = ($set1(lo), $set1(hi));
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let va = $loadu(lam.as_ptr().add(i).cast());
                    let vb = $loadu(upd.as_ptr().add(i).cast());
                    let r = $min($max($add(va, vb), vlo), vhi);
                    $storeu(out.as_mut_ptr().add(i).cast(), r);
                    i += WIDTH;
                }
                scalar::add_lanes_clamp(lo, hi, &lam[i..], &upd[i..], &mut out[i..]);
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn min_sum_track(
                slot: i32,
                inc: &[i32],
                min1: &mut [i32],
                min2: &mut [i32],
                argmin: &mut [i32],
                parity: &mut [i32],
            ) {
                assert_same_len!(inc, min1, min2, argmin, parity);
                let n = inc.len();
                let vslot = $set1(slot);
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let l = $loadu(inc.as_ptr().add(i).cast());
                    let a = $abs(l);
                    let m1 = $loadu(min1.as_ptr().add(i).cast());
                    let m2 = $loadu(min2.as_ptr().add(i).cast());
                    let am = $loadu(argmin.as_ptr().add(i).cast());
                    let p = $loadu(parity.as_ptr().add(i).cast());
                    // `a < m1` in select form; ties keep the earlier argmin,
                    // exactly like the scalar reference.
                    let displaces = $cmpgt(m1, a);
                    $storeu(
                        min2.as_mut_ptr().add(i).cast(),
                        $blendv($min(a, m2), m1, displaces),
                    );
                    $storeu(
                        argmin.as_mut_ptr().add(i).cast(),
                        $blendv(am, vslot, displaces),
                    );
                    $storeu(min1.as_mut_ptr().add(i).cast(), $min(a, m1));
                    $storeu(parity.as_mut_ptr().add(i).cast(), $xor(p, $srli::<31>(l)));
                    i += WIDTH;
                }
                scalar::min_sum_track(
                    slot,
                    &inc[i..],
                    &mut min1[i..],
                    &mut min2[i..],
                    &mut argmin[i..],
                    &mut parity[i..],
                );
            }

            /// # Safety
            /// The CPU must support the module's target feature.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn min_sum_emit(
                slot: i32,
                max_code: i32,
                inc: &[i32],
                min1: &[i32],
                min2: &[i32],
                argmin: &[i32],
                parity: &[i32],
                out: &mut [i32],
            ) {
                assert_same_len!(inc, min1, min2, argmin, parity, out);
                let n = inc.len();
                let vslot = $set1(slot);
                let vmax = $set1(max_code);
                let vzero = $setzero();
                let mut i = 0;
                while i + WIDTH <= n {
                    // SAFETY: i + WIDTH ≤ n and all slices have length n.
                    let l = $loadu(inc.as_ptr().add(i).cast());
                    let m1 = $loadu(min1.as_ptr().add(i).cast());
                    let m2 = $loadu(min2.as_ptr().add(i).cast());
                    let am = $loadu(argmin.as_ptr().add(i).cast());
                    let p = $loadu(parity.as_ptr().add(i).cast());
                    let raw = $blendv(m1, m2, $cmpeq(am, vslot));
                    // Saturate then normalise `x − (x >> 2)`; the magnitude
                    // is non-negative so the arithmetic shift is exact.
                    let sat = $min(raw, vmax);
                    let mag = $sub(sat, $srai::<2>(sat));
                    // Negate where parity ⊕ own-sign is 1.
                    let s = $xor(p, $srli::<31>(l));
                    let neg = $cmpgt(s, vzero);
                    $storeu(
                        out.as_mut_ptr().add(i).cast(),
                        $blendv(mag, $sub(vzero, mag), neg),
                    );
                    i += WIDTH;
                }
                scalar::min_sum_emit(
                    slot,
                    max_code,
                    &inc[i..],
                    &min1[i..],
                    &min2[i..],
                    &argmin[i..],
                    &parity[i..],
                    &mut out[i..],
                );
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_panel_kernels!(
    avx2,
    "avx2",
    __m256i,
    8,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    _mm256_set1_epi32,
    _mm256_setzero_si256,
    _mm256_abs_epi32,
    _mm256_min_epi32,
    _mm256_max_epi32,
    _mm256_add_epi32,
    _mm256_sub_epi32,
    _mm256_xor_si256,
    _mm256_or_si256,
    _mm256_srli_epi32,
    _mm256_srai_epi32,
    _mm256_cmpeq_epi32,
    _mm256_cmpgt_epi32,
    _mm256_blendv_epi8,
    _mm256_sign_epi32
);

#[cfg(target_arch = "x86_64")]
x86_panel_kernels!(
    sse41,
    "sse4.1",
    __m128i,
    4,
    _mm_loadu_si128,
    _mm_storeu_si128,
    _mm_set1_epi32,
    _mm_setzero_si128,
    _mm_abs_epi32,
    _mm_min_epi32,
    _mm_max_epi32,
    _mm_add_epi32,
    _mm_sub_epi32,
    _mm_xor_si128,
    _mm_or_si128,
    _mm_srli_epi32,
    _mm_srai_epi32,
    _mm_cmpeq_epi32,
    _mm_cmpgt_epi32,
    _mm_blendv_epi8,
    _mm_sign_epi32
);

/// AVX2-only kernels: the hardware LUT gathers (`vpgatherdd`) and the fused
/// ⊞/⊟ panels built on them. SSE4.1 has no gather instruction, so these
/// have no 128-bit twin — the SSE tier keeps the three-pass structure with
/// a scalar gather.
#[cfg(target_arch = "x86_64")]
mod avx2_gather {
    use super::scalar;
    use core::arch::x86_64::*;

    /// Clamps gather indices into `[0, last]` with an **unsigned** min, so
    /// any `i32` input (including negative codes, which wrap to huge
    /// unsigned values) lands in-bounds — the vector twin of the scalar
    /// `(x as usize).min(last)`.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn clamp_index(x: __m256i, vlast: __m256i) -> __m256i {
        _mm256_min_epu32(x, vlast)
    }

    /// # Safety
    /// The CPU must support AVX2. `dense` must be non-empty (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_gather_dense(dense: &[i32], xs: &[i32], out: &mut [i32]) {
        assert_same_len!(xs, out);
        assert!(!dense.is_empty());
        let n = xs.len();
        let vlast = _mm256_set1_epi32((dense.len() - 1) as i32);
        let base = dense.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 ≤ n; every gather index is clamped into
            // [0, dense.len() − 1], so all eight loads are in-bounds.
            let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
            let idx = clamp_index(x, vlast);
            let g = _mm256_i32gather_epi32::<4>(base, idx);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), g);
            i += 8;
        }
        scalar::lut_gather_dense(dense, &xs[i..], &mut out[i..]);
    }

    /// # Safety
    /// The CPU must support AVX2. `dense` must be non-empty (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_map_dense(dense: &[i32], xs: &mut [i32]) {
        assert!(!dense.is_empty());
        let n = xs.len();
        let vlast = _mm256_set1_epi32((dense.len() - 1) as i32);
        let base = dense.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 ≤ n; gather indices clamped in-bounds; the
            // load happens before the store to the same span.
            let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
            let idx = clamp_index(x, vlast);
            let g = _mm256_i32gather_epi32::<4>(base, idx);
            _mm256_storeu_si256(xs.as_mut_ptr().add(i).cast(), g);
            i += 8;
        }
        scalar::lut_map_dense(dense, &mut xs[i..]);
    }

    /// The fused ⊞/⊟ core on loaded vectors: magnitude split, both dense
    /// gathers and the sign/saturate combine, entirely in registers.
    /// `MINUS` selects the ⊟ variant (corrections swapped, floor 0).
    ///
    /// # Safety
    /// The CPU must support AVX2; every gather index is clamped into
    /// `[0, dense.len() − 1]` before the `vpgatherdd`.
    #[target_feature(enable = "avx2")]
    unsafe fn box_core<const MINUS: bool>(
        base: *const i32,
        vlast: __m256i,
        vmax: __m256i,
        va: __m256i,
        vb: __m256i,
    ) -> __m256i {
        let vone = _mm256_set1_epi32(1);
        let aa = _mm256_abs_epi32(va);
        let ab = _mm256_abs_epi32(vb);
        let mn = _mm256_min_epi32(aa, ab);
        let sm = _mm256_min_epi32(_mm256_add_epi32(aa, ab), vmax);
        let df = _mm256_abs_epi32(_mm256_sub_epi32(aa, ab));
        // SAFETY: indices clamped in-bounds (see clamp_index).
        let cs = _mm256_i32gather_epi32::<4>(base, clamp_index(sm, vlast));
        let cd = _mm256_i32gather_epi32::<4>(base, clamp_index(df, vlast));
        let (raw, floor) = if MINUS {
            (
                _mm256_add_epi32(_mm256_sub_epi32(mn, cs), cd),
                _mm256_setzero_si256(),
            )
        } else {
            (_mm256_sub_epi32(_mm256_add_epi32(mn, cs), cd), vone)
        };
        let mag = _mm256_max_epi32(_mm256_min_epi32(raw, vmax), floor);
        // `(a ^ b) | 1` is never zero and carries the sign of `a ^ b`.
        let s = _mm256_or_si256(_mm256_xor_si256(va, vb), vone);
        _mm256_sign_epi32(mag, s)
    }

    /// Fused dense-LUT ⊞ panel: `out = a ⊞ b`.
    ///
    /// # Safety
    /// The CPU must support AVX2. `dense` must be non-empty (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn boxplus_fused(
        dense: &[i32],
        max_code: i32,
        a: &[i32],
        b: &[i32],
        out: &mut [i32],
    ) {
        assert_same_len!(a, b, out);
        assert!(!dense.is_empty());
        let n = a.len();
        let vlast = _mm256_set1_epi32((dense.len() - 1) as i32);
        let vmax = _mm256_set1_epi32(max_code);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 ≤ n and all slices have length n.
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let r = box_core::<false>(dense.as_ptr(), vlast, vmax, va, vb);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), r);
            i += 8;
        }
        scalar::boxplus_dense(dense, max_code, &a[i..], &b[i..], &mut out[i..]);
    }

    /// Fused dense-LUT ⊞ accumulator panel: `acc = acc ⊞ b`.
    ///
    /// # Safety
    /// The CPU must support AVX2. `dense` must be non-empty (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn boxplus_assign_fused(
        dense: &[i32],
        max_code: i32,
        acc: &mut [i32],
        b: &[i32],
    ) {
        assert_same_len!(acc, b);
        assert!(!dense.is_empty());
        let n = acc.len();
        let vlast = _mm256_set1_epi32((dense.len() - 1) as i32);
        let vmax = _mm256_set1_epi32(max_code);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 ≤ n; `acc` is loaded before the store to the
            // same span.
            let va = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let r = box_core::<false>(dense.as_ptr(), vlast, vmax, va, vb);
            _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), r);
            i += 8;
        }
        scalar::boxplus_assign_dense(dense, max_code, &mut acc[i..], &b[i..]);
    }

    /// Fused dense-LUT ⊟ panel: `out = a ⊟ b`.
    ///
    /// # Safety
    /// The CPU must support AVX2. `dense` must be non-empty (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn boxminus_fused(
        dense: &[i32],
        max_code: i32,
        a: &[i32],
        b: &[i32],
        out: &mut [i32],
    ) {
        assert_same_len!(a, b, out);
        assert!(!dense.is_empty());
        let n = a.len();
        let vlast = _mm256_set1_epi32((dense.len() - 1) as i32);
        let vmax = _mm256_set1_epi32(max_code);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 ≤ n and all slices have length n.
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let r = box_core::<true>(dense.as_ptr(), vlast, vmax, va, vb);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), r);
            i += 8;
        }
        scalar::boxminus_dense(dense, max_code, &a[i..], &b[i..], &mut out[i..]);
    }
}

// ---------------------------------------------------------------------------
// Safe dispatch wrappers
// ---------------------------------------------------------------------------

/// Dispatches one op to the requested tier (clamped to the detected CPU
/// capability) with the scalar reference as the universal `_` arm.
macro_rules! dispatch {
    ($level:expr, $op:ident ( $($arg:expr),* $(,)? )) => {{
        match $level.effective() {
            // SAFETY: `effective()` caps the level at `detected_level()`,
            // so this arm is only reached on a CPU that reported AVX2.
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { avx2::$op($($arg),*) },
            // SAFETY: as above, for SSE4.1.
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse41 => unsafe { sse41::$op($($arg),*) },
            _ => scalar::$op($($arg),*),
        }
    }};
}

/// Pass 1 of the ⊞/⊟ lane decomposition over a panel: per lane, the
/// minimum, the format-saturated sum and the absolute difference of the two
/// input magnitudes.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn magnitude_split(
    level: SimdLevel,
    max_code: i32,
    a: &[i32],
    b: &[i32],
    mins: &mut [i32],
    sums: &mut [i32],
    diffs: &mut [i32],
) {
    assert_same_len!(a, b, mins, sums, diffs);
    dispatch!(level, magnitude_split(max_code, a, b, mins, sums, diffs))
}

/// Pass 3 of the ⊞ over a panel: `out = a ⊞ b` from the pre-split and
/// LUT-corrected lanes, bit-identical to the scalar `boxplus_codes`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn combine_plus(
    level: SimdLevel,
    max_code: i32,
    a: &[i32],
    b: &[i32],
    mins: &[i32],
    corr_sums: &[i32],
    corr_diffs: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(a, b, mins, corr_sums, corr_diffs, out);
    dispatch!(
        level,
        combine_plus(max_code, a, b, mins, corr_sums, corr_diffs, out)
    )
}

/// In-place [`combine_plus`] for the running ⊞ accumulator (`acc = acc ⊞ b`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn combine_plus_assign(
    level: SimdLevel,
    max_code: i32,
    acc: &mut [i32],
    b: &[i32],
    mins: &[i32],
    corr_sums: &[i32],
    corr_diffs: &[i32],
) {
    assert_same_len!(acc, b, mins, corr_sums, corr_diffs);
    dispatch!(
        level,
        combine_plus_assign(max_code, acc, b, mins, corr_sums, corr_diffs)
    )
}

/// Pass 3 of the ⊟ over a panel (magnitude floored at 0, not 1).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn combine_minus(
    level: SimdLevel,
    max_code: i32,
    a: &[i32],
    b: &[i32],
    mins: &[i32],
    corr_sums: &[i32],
    corr_diffs: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(a, b, mins, corr_sums, corr_diffs, out);
    dispatch!(
        level,
        combine_minus(max_code, a, b, mins, corr_sums, corr_diffs, out)
    )
}

/// Dense-table LUT gather over a panel:
/// `out[i] = dense[min(xs[i], dense.len() − 1)]` with the clamp in unsigned
/// index space. On AVX2 this is a true hardware gather (`vpgatherdd`);
/// SSE4.1 has no gather, so lower tiers run the scalar clamped-index loop.
///
/// # Panics
///
/// Panics if `dense` is empty or the slices differ in length.
pub fn lut_gather_dense(level: SimdLevel, dense: &[i32], xs: &[i32], out: &mut [i32]) {
    assert!(!dense.is_empty(), "dense LUT gather needs a table");
    assert_same_len!(xs, out);
    match level.effective() {
        // SAFETY: `effective()` caps the level at `detected_level()`.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2_gather::lut_gather_dense(dense, xs, out) },
        _ => scalar::lut_gather_dense(dense, xs, out),
    }
}

/// In-place [`lut_gather_dense`]: `xs[i] = dense[min(xs[i], last)]`.
///
/// # Panics
///
/// Panics if `dense` is empty.
pub fn lut_map_dense(level: SimdLevel, dense: &[i32], xs: &mut [i32]) {
    assert!(!dense.is_empty(), "dense LUT gather needs a table");
    match level.effective() {
        // SAFETY: `effective()` caps the level at `detected_level()`.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2_gather::lut_map_dense(dense, xs) },
        _ => scalar::lut_map_dense(dense, xs),
    }
}

/// Whether [`boxplus_panel`]/[`boxminus_panel`] take the fused single-pass
/// gather path at this level for this LUT (AVX2 + a dense table). Exposed
/// so callers can size their scratch expectations; the result is identical
/// either way.
#[must_use]
pub fn fuses_box_panels(level: SimdLevel, lut: &CorrectionLut) -> bool {
    // `detected_level()` never reports Avx2 off x86-64, so the `cfg!` is
    // belt-and-braces for the `#[cfg]`-gated fused call sites.
    cfg!(target_arch = "x86_64")
        && level.effective() == SimdLevel::Avx2
        && !lut.dense_table().is_empty()
}

/// One full ⊞ step over a panel: `out = a ⊞ b` with `lut`'s corrections,
/// bit-identical to the three-pass scalar decomposition (magnitude split →
/// LUT gather → sign/saturate combine). On AVX2 with a dense LUT the whole
/// operator fuses into one register-resident pass with two hardware
/// gathers and never touches `mins`/`sums`/`diffs`; every other tier runs
/// the three passes through that scratch at its own vector width.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn boxplus_panel(
    level: SimdLevel,
    lut: &CorrectionLut,
    max_code: i32,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
    mins: &mut [i32],
    sums: &mut [i32],
    diffs: &mut [i32],
) {
    if fuses_box_panels(level, lut) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `fuses_box_panels` is only true when the *detected*
        // level is AVX2 (and the dense table exists).
        unsafe {
            avx2_gather::boxplus_fused(lut.dense_table(), max_code, a, b, out)
        }
    } else {
        magnitude_split(level, max_code, a, b, mins, sums, diffs);
        lut.map_slice_with(level, sums);
        lut.map_slice_with(level, diffs);
        combine_plus(level, max_code, a, b, mins, sums, diffs, out);
    }
}

/// One full in-place ⊞ accumulator step over a panel: `acc = acc ⊞ b`.
/// Same tiering as [`boxplus_panel`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn boxplus_assign_panel(
    level: SimdLevel,
    lut: &CorrectionLut,
    max_code: i32,
    acc: &mut [i32],
    b: &[i32],
    mins: &mut [i32],
    sums: &mut [i32],
    diffs: &mut [i32],
) {
    if fuses_box_panels(level, lut) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `fuses_box_panels` is only true when the *detected*
        // level is AVX2 (and the dense table exists).
        unsafe {
            avx2_gather::boxplus_assign_fused(lut.dense_table(), max_code, acc, b)
        }
    } else {
        magnitude_split(level, max_code, acc, b, mins, sums, diffs);
        lut.map_slice_with(level, sums);
        lut.map_slice_with(level, diffs);
        combine_plus_assign(level, max_code, acc, b, mins, sums, diffs);
    }
}

/// One full ⊟ step over a panel: `out = a ⊟ b` with `lut`'s corrections.
/// Same tiering as [`boxplus_panel`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn boxminus_panel(
    level: SimdLevel,
    lut: &CorrectionLut,
    max_code: i32,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
    mins: &mut [i32],
    sums: &mut [i32],
    diffs: &mut [i32],
) {
    if fuses_box_panels(level, lut) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `fuses_box_panels` is only true when the *detected*
        // level is AVX2 (and the dense table exists).
        unsafe {
            avx2_gather::boxminus_fused(lut.dense_table(), max_code, a, b, out)
        }
    } else {
        magnitude_split(level, max_code, a, b, mins, sums, diffs);
        lut.map_slice_with(level, sums);
        lut.map_slice_with(level, diffs);
        combine_minus(level, max_code, a, b, mins, sums, diffs, out);
    }
}

/// `λ = L − Λ` over a panel with the fixed-BP ±1-LSB zero remap
/// (`out = clamp(a − b, lo, hi)`, zeros remapped to `sign(a)·1`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_lanes_remap(
    level: SimdLevel,
    lo: i32,
    hi: i32,
    app: &[i32],
    lambda: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(app, lambda, out);
    dispatch!(level, sub_lanes_remap(lo, hi, app, lambda, out))
}

/// Plain `λ = L − Λ` clamp over a panel (fixed Min-Sum).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_lanes_clamp(
    level: SimdLevel,
    lo: i32,
    hi: i32,
    app: &[i32],
    lambda: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(app, lambda, out);
    dispatch!(level, sub_lanes_clamp(lo, hi, app, lambda, out))
}

/// `L = λ + Λ′` over a panel, clamped to the (wider) APP range.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_lanes_clamp(
    level: SimdLevel,
    lo: i32,
    hi: i32,
    lam: &[i32],
    upd: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(lam, upd, out);
    dispatch!(level, add_lanes_clamp(lo, hi, lam, upd, out))
}

/// One slot of the Min-Sum two-minima tracking pass over a panel, in select
/// form with first-wins tie semantics.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn min_sum_track(
    level: SimdLevel,
    slot: i32,
    inc: &[i32],
    min1: &mut [i32],
    min2: &mut [i32],
    argmin: &mut [i32],
    parity: &mut [i32],
) {
    assert_same_len!(inc, min1, min2, argmin, parity);
    dispatch!(level, min_sum_track(slot, inc, min1, min2, argmin, parity))
}

/// One slot of the Min-Sum output pass over a panel: second minimum at the
/// argmin, first minimum elsewhere, saturated and `α = 0.75`-normalised,
/// sign = row parity ⊕ own sign.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn min_sum_emit(
    level: SimdLevel,
    slot: i32,
    max_code: i32,
    inc: &[i32],
    min1: &[i32],
    min2: &[i32],
    argmin: &[i32],
    parity: &[i32],
    out: &mut [i32],
) {
    assert_same_len!(inc, min1, min2, argmin, parity, out);
    dispatch!(
        level,
        min_sum_emit(slot, max_code, inc, min1, min2, argmin, parity, out)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::FixedFormat;
    use crate::lut::CorrectionKind;

    #[test]
    fn force_scalar_parses_like_a_boolean_knob() {
        assert!(!force_scalar(None));
        for falsey in ["", "0", "false", "no", "off", " 0 ", "FALSE"] {
            assert!(!force_scalar(Some(falsey)), "{falsey:?}");
        }
        for truthy in ["1", "true", "yes", "on", " 1\n", "TRUE"] {
            assert!(force_scalar(Some(truthy)), "{truthy:?}");
        }
        // Garbled values force the fallback (and diagnose once on stderr).
        assert!(force_scalar(Some("maybe")));
        assert!(force_scalar(Some("2")));
    }

    #[test]
    fn effective_never_exceeds_detected_and_is_idempotent() {
        let det = detected_level();
        for lvl in [SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2] {
            let eff = lvl.effective();
            assert!(eff <= det);
            assert!(eff <= lvl);
            assert_eq!(eff.effective(), eff);
        }
        assert_eq!(SimdLevel::Scalar.effective(), SimdLevel::Scalar);
        assert!(active_level() <= det);
    }

    #[test]
    fn level_names_are_the_ci_spellings() {
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Sse41.name(), "sse4.1");
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
    }

    /// Deterministic panel covering saturation, zeros and sign changes.
    fn panel(n: usize, seed: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let v = ((i.wrapping_mul(2654435761).wrapping_add(seed * 97)) % 255) as i32 - 127;
                if i % 17 == 0 {
                    v.signum() * 127
                } else {
                    v
                }
            })
            .collect()
    }

    /// Every level must match the scalar reference on every op, including
    /// ragged tails (lengths straddling both vector widths).
    #[test]
    fn all_levels_match_scalar_on_every_op() {
        let max_code = 127;
        let (lo, hi) = (-127, 127);
        let lut = CorrectionLut::new(CorrectionKind::Plus, FixedFormat::default(), 3);
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 23, 96, 101] {
            let a = panel(n, 1);
            let b = panel(n, 2);
            let mags: Vec<i32> = a.iter().map(|x| x.abs()).collect();
            for level in [SimdLevel::Sse41, SimdLevel::Avx2] {
                // magnitude_split
                let (mut m1, mut s1, mut d1) = (vec![0; n], vec![0; n], vec![0; n]);
                let (mut m2, mut s2, mut d2) = (vec![0; n], vec![0; n], vec![0; n]);
                scalar::magnitude_split(max_code, &a, &b, &mut m1, &mut s1, &mut d1);
                magnitude_split(level, max_code, &a, &b, &mut m2, &mut s2, &mut d2);
                assert_eq!((&m1, &s1, &d1), (&m2, &s2, &d2), "{level:?} n={n}");

                // combines (reuse the split lanes as plausible corrections)
                let (mut o1, mut o2) = (vec![0; n], vec![0; n]);
                scalar::combine_plus(max_code, &a, &b, &m1, &s1, &d1, &mut o1);
                combine_plus(level, max_code, &a, &b, &m1, &s1, &d1, &mut o2);
                assert_eq!(o1, o2, "combine_plus {level:?} n={n}");
                scalar::combine_minus(max_code, &a, &b, &m1, &s1, &d1, &mut o1);
                combine_minus(level, max_code, &a, &b, &m1, &s1, &d1, &mut o2);
                assert_eq!(o1, o2, "combine_minus {level:?} n={n}");
                let (mut acc1, mut acc2) = (a.clone(), a.clone());
                scalar::combine_plus_assign(max_code, &mut acc1, &b, &m1, &s1, &d1);
                combine_plus_assign(level, max_code, &mut acc2, &b, &m1, &s1, &d1);
                assert_eq!(acc1, acc2, "combine_plus_assign {level:?} n={n}");

                // LUT gathers
                scalar::lut_gather_dense(lut.dense_table(), &mags, &mut o1);
                lut_gather_dense(level, lut.dense_table(), &mags, &mut o2);
                assert_eq!(o1, o2, "lut_gather {level:?} n={n}");
                let (mut x1, mut x2) = (mags.clone(), mags.clone());
                scalar::lut_map_dense(lut.dense_table(), &mut x1);
                lut_map_dense(level, lut.dense_table(), &mut x2);
                assert_eq!(x1, x2, "lut_map {level:?} n={n}");

                // Fused box panels vs the three-pass scalar reference.
                let mut scratch = (vec![0; n], vec![0; n], vec![0; n]);
                scalar::magnitude_split(max_code, &a, &b, &mut m1, &mut s1, &mut d1);
                scalar::lut_map_dense(lut.dense_table(), &mut s1);
                scalar::lut_map_dense(lut.dense_table(), &mut d1);
                scalar::combine_plus(max_code, &a, &b, &m1, &s1, &d1, &mut o1);
                boxplus_panel(
                    level,
                    &lut,
                    max_code,
                    &a,
                    &b,
                    &mut o2,
                    &mut scratch.0,
                    &mut scratch.1,
                    &mut scratch.2,
                );
                assert_eq!(o1, o2, "boxplus_panel {level:?} n={n}");
                scalar::magnitude_split(max_code, &a, &b, &mut m1, &mut s1, &mut d1);
                scalar::lut_map_dense(lut.dense_table(), &mut s1);
                scalar::lut_map_dense(lut.dense_table(), &mut d1);
                scalar::combine_minus(max_code, &a, &b, &m1, &s1, &d1, &mut o1);
                boxminus_panel(
                    level,
                    &lut,
                    max_code,
                    &a,
                    &b,
                    &mut o2,
                    &mut scratch.0,
                    &mut scratch.1,
                    &mut scratch.2,
                );
                assert_eq!(o1, o2, "boxminus_panel {level:?} n={n}");
                acc1.copy_from_slice(&a);
                acc2.copy_from_slice(&a);
                scalar::boxplus_assign_dense(lut.dense_table(), max_code, &mut acc1, &b);
                boxplus_assign_panel(
                    level,
                    &lut,
                    max_code,
                    &mut acc2,
                    &b,
                    &mut scratch.0,
                    &mut scratch.1,
                    &mut scratch.2,
                );
                assert_eq!(acc1, acc2, "boxplus_assign_panel {level:?} n={n}");

                // sub/add lanes
                scalar::sub_lanes_remap(lo, hi, &a, &b, &mut o1);
                sub_lanes_remap(level, lo, hi, &a, &b, &mut o2);
                assert_eq!(o1, o2, "sub_remap {level:?} n={n}");
                scalar::sub_lanes_clamp(lo, hi, &a, &b, &mut o1);
                sub_lanes_clamp(level, lo, hi, &a, &b, &mut o2);
                assert_eq!(o1, o2, "sub_clamp {level:?} n={n}");
                scalar::add_lanes_clamp(4 * lo, 4 * hi, &a, &b, &mut o1);
                add_lanes_clamp(level, 4 * lo, 4 * hi, &a, &b, &mut o2);
                assert_eq!(o1, o2, "add_clamp {level:?} n={n}");

                // min-sum track + emit across three slots (covers ties,
                // displacement and the sentinel).
                let mut st1 = (vec![i32::MAX; n], vec![i32::MAX; n], vec![0; n], vec![0; n]);
                let mut st2 = st1.clone();
                for (slot, inc) in [&a, &b, &mags].into_iter().enumerate() {
                    scalar::min_sum_track(
                        slot as i32,
                        inc,
                        &mut st1.0,
                        &mut st1.1,
                        &mut st1.2,
                        &mut st1.3,
                    );
                    min_sum_track(
                        level,
                        slot as i32,
                        inc,
                        &mut st2.0,
                        &mut st2.1,
                        &mut st2.2,
                        &mut st2.3,
                    );
                    assert_eq!(st1, st2, "min_sum_track slot {slot} {level:?} n={n}");
                }
                for (slot, inc) in [&a, &b, &mags].into_iter().enumerate() {
                    scalar::min_sum_emit(
                        slot as i32,
                        max_code,
                        inc,
                        &st1.0,
                        &st1.1,
                        &st1.2,
                        &st1.3,
                        &mut o1,
                    );
                    min_sum_emit(
                        level,
                        slot as i32,
                        max_code,
                        inc,
                        &st2.0,
                        &st2.1,
                        &st2.2,
                        &st2.3,
                        &mut o2,
                    );
                    assert_eq!(o1, o2, "min_sum_emit slot {slot} {level:?} n={n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrappers_reject_mismatched_lengths() {
        let mut out = vec![0; 4];
        sub_lanes_clamp(SimdLevel::Scalar, -10, 10, &[1, 2, 3], &[1, 2, 3], &mut out);
    }
}
