//! Lane-parallel SISO kernels: slice operations over the `z` rows of a layer.
//!
//! The paper's architecture reaches its throughput by running `z` identical
//! SISO units over the `z` independent rows of one layer in lock-step. The
//! software analogue is *lane-major* processing: instead of walking the rows
//! one at a time through scalar [`DecoderArithmetic`] calls, the layered
//! engine lays the layer's messages out slot-major/lane-contiguous
//! (`lanes[slot · z + r]` is the message of block-column slot `slot`, row `r`)
//! and the arithmetic back-end processes whole `z`-length slices at once.
//!
//! [`LaneKernel`] is that extension of [`DecoderArithmetic`]. Every method has
//! a provided scalar fallback (bit-identical by construction, so float
//! back-ends keep working unchanged); the fixed-point back-ends override
//! [`LaneKernel::check_node_update_lanes`] with hand-written slice kernels
//! whose inner loops are stride-1 over the lanes — the
//! autovectorisation-friendly shape — and which run out of [`LaneScratch`]
//! instead of allocating per row (the scalar forward/backward and Min-Sum
//! updates allocate transient row buffers on every call; the lane kernels
//! allocate nothing in steady state).
//!
//! Underneath the slice kernels sits a third tier: the fixed-point
//! overrides dispatch their panel passes through
//! [`crate::arith::simd`] — explicit AVX2/SSE4.1 intrinsics (with hardware
//! LUT gathers and fused ⊞/⊟ on AVX2) selected once per process at
//! runtime, with these scalar panel loops as the universal, bit-identical
//! fallback (`LDPC_FORCE_SCALAR=1` pins it). The row-serial fallback in
//! this module remains the reference above both.
//!
//! Layout invariant: `lanes_in` and `lanes_out` hold `degree · z` messages,
//! slot-major. Lane `r` of the layer is the strided row
//! `lanes[r], lanes[z + r], …, lanes[(degree−1)·z + r]`, and the kernel must
//! produce, for every lane, exactly what
//! [`DecoderArithmetic::check_node_update`] produces for that row — the
//! engine's lane path is required to stay bit-identical to the row-serial
//! reference for every back-end.

use super::DecoderArithmetic;

/// Reusable scratch for [`LaneKernel`] implementations, owned by the decode
/// workspace so lane kernels are allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct LaneScratch<M> {
    /// Strided-row gather buffer of the scalar fallback (capacity = degree).
    pub(crate) row_in: Vec<M>,
    /// Row output buffer of the scalar fallback (capacity = degree).
    pub(crate) row_out: Vec<M>,
    /// Lane workspace of the vector kernels (capacity ≥ `lane_factor · z`,
    /// see [`LaneScratch::reserve`]).
    pub(crate) lanes: Vec<M>,
}

impl<M: Copy> LaneScratch<M> {
    /// How many `z`-length lanes of scratch the provided kernels may ask for,
    /// as a function of the maximum check-node degree: the forward/backward
    /// fixed-BP kernel needs `2 · degree` lanes (prefix and suffix ⊞ sums)
    /// plus 3 transient panels for the branch-free ⊞ decomposition
    /// (min/sum/diff magnitudes feeding the LUT gather); the Min-Sum kernel
    /// needs 4 (min1/min2/argmin/parity), covered by the same bound.
    #[must_use]
    pub fn lane_factor(max_degree: usize) -> usize {
        2 * max_degree + 3
    }

    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        LaneScratch {
            row_in: Vec::new(),
            row_out: Vec::new(),
            lanes: Vec::new(),
        }
    }

    /// Grows the buffers to what a code with `max_degree`-row layers of `z`
    /// lanes needs, so subsequent kernel calls are allocation-free.
    pub fn reserve(&mut self, max_degree: usize, z: usize) {
        reserve_to(&mut self.row_in, max_degree);
        reserve_to(&mut self.row_out, max_degree);
        reserve_to(&mut self.lanes, Self::lane_factor(max_degree) * z);
    }

    /// Whether [`LaneScratch::reserve`] with these parameters would allocate.
    #[must_use]
    pub fn is_ready(&self, max_degree: usize, z: usize) -> bool {
        self.row_in.capacity() >= max_degree
            && self.row_out.capacity() >= max_degree
            && self.lanes.capacity() >= Self::lane_factor(max_degree) * z
    }

    /// Pointer/capacity fingerprint (see
    /// [`DecodeWorkspace::allocation_fingerprint`](crate::workspace::DecodeWorkspace::allocation_fingerprint)).
    #[must_use]
    pub fn fingerprint(&self) -> [(usize, usize); 3] {
        [
            (self.row_in.as_ptr() as usize, self.row_in.capacity()),
            (self.row_out.as_ptr() as usize, self.row_out.capacity()),
            (self.lanes.as_ptr() as usize, self.lanes.capacity()),
        ]
    }

    /// A zero-copy `len`-element view of the lane workspace, filled with
    /// `fill`. Resizing within the reserved capacity never reallocates.
    pub(crate) fn lanes_mut(&mut self, len: usize, fill: M) -> &mut [M] {
        self.lanes.clear();
        self.lanes.resize(len, fill);
        &mut self.lanes
    }
}

fn reserve_to<T>(buf: &mut Vec<T>, capacity: usize) {
    if buf.capacity() < capacity {
        buf.reserve_exact(capacity - buf.len());
    }
}

/// Lane-parallel extension of [`DecoderArithmetic`]: the same message algebra
/// applied to whole `z`-length slices (one element per SISO lane).
///
/// All methods have scalar fallbacks that apply the element operations
/// lane-by-lane, so implementing the marker `impl LaneKernel for T {}` is
/// enough for correctness; back-ends override methods with vector kernels
/// where it pays. **Contract:** every override must be bit-identical to its
/// fallback (the engine's lane path is tested against the row-serial
/// reference for every back-end).
///
/// # Frame-major panels
///
/// Nothing in the contract ties the lane count to one code's `z`: every
/// method is element-wise per lane, so the frame-major multi-frame engine
/// (see [`crate::group`]) calls the same kernels with `z · F` lanes — the
/// `z` rows of a layer across `F` interleaved frames, one contiguous panel.
/// Kernels written against this trait vectorise across both axes for free.
pub trait LaneKernel: DecoderArithmetic {
    /// Whether the batch engine should pack frames of this back-end into
    /// frame-major groups (see
    /// [`Decoder::decode_group_into`](crate::engine::Decoder::decode_group_into)).
    /// `true` for back-ends whose vector kernels get faster with wider
    /// panels (the fixed-point back-ends); the float back-ends use the
    /// scalar fallback kernels, for which grouping only adds interleaving
    /// overhead, and stay frame-serial.
    fn prefers_frame_groups(&self) -> bool {
        false
    }

    /// Element-wise `λ = L − Λ` over lanes: `out[i] = sub(app[i], lambda[i])`.
    ///
    /// # Panics
    ///
    /// May panic if the three slices differ in length.
    fn sub_lanes(&self, app: &[Self::Msg], lambda: &[Self::Msg], out: &mut [Self::Msg]) {
        debug_assert!(app.len() == lambda.len() && lambda.len() == out.len());
        for ((o, &a), &b) in out.iter_mut().zip(app).zip(lambda) {
            *o = self.sub(a, b);
        }
    }

    /// Element-wise `L = λ + Λ′` over lanes: `out[i] = add(lam[i], upd[i])`.
    ///
    /// # Panics
    ///
    /// May panic if the three slices differ in length.
    fn add_lanes(&self, lam: &[Self::Msg], upd: &[Self::Msg], out: &mut [Self::Msg]) {
        debug_assert!(lam.len() == upd.len() && upd.len() == out.len());
        for ((o, &a), &b) in out.iter_mut().zip(lam).zip(upd) {
            *o = self.add(a, b);
        }
    }

    /// Check-node update of all `z` lanes of one layer at once.
    ///
    /// `lanes_in` and `lanes_out` hold `degree · z` messages, slot-major
    /// (`lanes[slot · z + r]`); for every lane `r` the strided row across the
    /// slots is updated exactly as [`DecoderArithmetic::check_node_update`]
    /// would update it. `scratch` provides all transient storage, so the call
    /// is allocation-free once the scratch is sized for the code.
    ///
    /// # Panics
    ///
    /// May panic if `lanes_in.len() != lanes_out.len()`, or if the lengths are
    /// not a multiple of `z`.
    fn check_node_update_lanes(
        &self,
        z: usize,
        lanes_in: &[Self::Msg],
        lanes_out: &mut [Self::Msg],
        scratch: &mut LaneScratch<Self::Msg>,
    ) {
        debug_assert_eq!(lanes_in.len(), lanes_out.len());
        debug_assert!(z > 0 && lanes_in.len().is_multiple_of(z));
        let degree = lanes_in.len() / z;
        for r in 0..z {
            scratch.row_in.clear();
            scratch
                .row_in
                .extend((0..degree).map(|slot| lanes_in[slot * z + r]));
            self.check_node_update(&scratch.row_in, &mut scratch.row_out);
            for (slot, &m) in scratch.row_out.iter().enumerate() {
                lanes_out[slot * z + r] = m;
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Asserts the lane methods of `arith` are bit-identical to the scalar
    /// fallback semantics on a deterministic slot-major message block.
    pub(crate) fn check_lane_axioms<A, F>(arith: &A, z: usize, degree: usize, msg_at: F)
    where
        A: LaneKernel,
        F: Fn(usize) -> A::Msg,
    {
        let lanes_in: Vec<A::Msg> = (0..degree * z).map(&msg_at).collect();
        // Reference: row-serial scalar updates on the strided rows.
        let mut expected = vec![arith.zero(); degree * z];
        let mut row_out = Vec::new();
        for r in 0..z {
            let row: Vec<A::Msg> = (0..degree).map(|s| lanes_in[s * z + r]).collect();
            arith.check_node_update(&row, &mut row_out);
            assert_eq!(row_out.len(), degree);
            for (s, &m) in row_out.iter().enumerate() {
                expected[s * z + r] = m;
            }
        }
        // Lane path, scratch deliberately undersized to prove it grows.
        let mut scratch = LaneScratch::new();
        scratch.reserve(degree, z);
        let mut lanes_out = vec![arith.zero(); degree * z];
        arith.check_node_update_lanes(z, &lanes_in, &mut lanes_out, &mut scratch);
        assert_eq!(lanes_out, expected, "lane kernel diverged from scalar");

        // add/sub lanes agree with the element operations.
        let a: Vec<A::Msg> = (0..z).map(&msg_at).collect();
        let b: Vec<A::Msg> = (0..z).map(|i| msg_at(i + z)).collect();
        let mut out = vec![arith.zero(); z];
        arith.sub_lanes(&a, &b, &mut out);
        for i in 0..z {
            assert_eq!(out[i], arith.sub(a[i], b[i]));
        }
        arith.add_lanes(&a, &b, &mut out);
        for i in 0..z {
            assert_eq!(out[i], arith.add(a[i], b[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reserve_and_fingerprint() {
        let mut s = LaneScratch::<i32>::new();
        assert!(!s.is_ready(7, 96));
        s.reserve(7, 96);
        assert!(s.is_ready(7, 96));
        assert!(s.is_ready(3, 24));
        let fp = s.fingerprint();
        s.reserve(7, 96);
        let _ = s.lanes_mut(LaneScratch::<i32>::lane_factor(7) * 96, 0);
        assert_eq!(fp, s.fingerprint(), "sized scratch must not reallocate");
    }

    #[test]
    fn lane_factor_covers_min_sum_and_fwd_bwd() {
        // Every provided kernel fits: fwd/bwd needs 2d + 3 panels, sum-extract
        // needs 4 (total + min/sum/diff), min-sum needs 4.
        assert_eq!(LaneScratch::<i32>::lane_factor(1), 5);
        assert_eq!(LaneScratch::<i32>::lane_factor(2), 7);
        assert_eq!(LaneScratch::<i32>::lane_factor(7), 17);
        assert!((1..=24).all(|d| LaneScratch::<i32>::lane_factor(d) >= 4));
    }
}
