//! Min-Sum baseline arithmetic.
//!
//! The paper explicitly chooses *not* to use the "sub-optimal Min-Sum
//! algorithm" and instead implements full BP with the ⊞/⊟ recursions. To make
//! that comparison reproducible, this module implements the standard layered
//! normalized Min-Sum check-node update (the algorithm used, e.g., by the
//! WiMax decoder of reference [3]):
//!
//! ```text
//! Λ_mn = α · Π_{j≠n} sign(λ_mj) · min_{j≠n} |λ_mj|
//! ```
//!
//! with normalization factor `α` (default 0.75, realised as `x − x/4` in
//! hardware).

use super::lanes::{LaneKernel, LaneScratch};
use super::simd::{self, SimdLevel};
use super::DecoderArithmetic;
use crate::boxplus::FLOAT_CLAMP;
use crate::fixedpoint::FixedFormat;

/// Computes, for each position, the minimum magnitude of the *other* entries
/// and the product of the *other* signs, using the two-minima trick.
fn min_sum_core<T, FAbs, FNeg>(lambdas: &[T], abs: FAbs, is_neg: FNeg) -> (Vec<(f64, bool)>, usize)
where
    T: Copy,
    FAbs: Fn(T) -> f64,
    FNeg: Fn(T) -> bool,
{
    let mut min1 = f64::INFINITY;
    let mut min2 = f64::INFINITY;
    let mut argmin = 0usize;
    let mut neg_parity = false;
    for (i, &l) in lambdas.iter().enumerate() {
        let a = abs(l);
        if a < min1 {
            min2 = min1;
            min1 = a;
            argmin = i;
        } else if a < min2 {
            min2 = a;
        }
        if is_neg(l) {
            neg_parity = !neg_parity;
        }
    }
    let out = lambdas
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let magnitude = if i == argmin { min2 } else { min1 };
            let sign_neg = neg_parity ^ is_neg(l);
            (magnitude, sign_neg)
        })
        .collect();
    (out, argmin)
}

/// Floating-point normalized Min-Sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatMinSumArithmetic {
    alpha: f64,
    clamp: f64,
    app_clamp: f64,
}

impl Default for FloatMinSumArithmetic {
    /// Normalization factor 0.75, the common hardware choice.
    fn default() -> Self {
        FloatMinSumArithmetic {
            alpha: 0.75,
            clamp: FLOAT_CLAMP,
            app_clamp: 4.0 * FLOAT_CLAMP,
        }
    }
}

impl FloatMinSumArithmetic {
    /// Creates a normalized Min-Sum arithmetic with scaling factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        FloatMinSumArithmetic {
            alpha,
            clamp: FLOAT_CLAMP,
            app_clamp: 4.0 * FLOAT_CLAMP,
        }
    }

    /// The normalization factor α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DecoderArithmetic for FloatMinSumArithmetic {
    type Msg = f64;

    fn from_channel(&self, llr: f64) -> f64 {
        llr.clamp(-self.clamp, self.clamp)
    }

    fn to_llr(&self, m: f64) -> f64 {
        m
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn add(&self, a: f64, b: f64) -> f64 {
        (a + b).clamp(-self.app_clamp, self.app_clamp)
    }

    fn sub(&self, a: f64, b: f64) -> f64 {
        (a - b).clamp(-self.clamp, self.clamp)
    }

    fn check_node_update(&self, lambdas: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if lambdas.is_empty() {
            return;
        }
        let (core, _) = min_sum_core(lambdas, f64::abs, |x| x < 0.0);
        out.extend(core.into_iter().map(|(mag, neg)| {
            let v = (self.alpha * mag).min(self.clamp);
            if neg {
                -v
            } else {
                v
            }
        }));
    }

    fn name(&self) -> &'static str {
        "normalized Min-Sum float64"
    }
}

/// Scalar-fallback lane kernels (the float baseline stays unchanged).
impl LaneKernel for FloatMinSumArithmetic {}

/// Fixed-point normalized Min-Sum (the hardware baseline the paper compares
/// against, e.g. reference \[3\]). The normalization `α = 0.75` is realised as
/// `x − (x >> 2)`, exactly as a shift-and-subtract datapath would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMinSumArithmetic {
    format: FixedFormat,
    /// Wider a-posteriori format (2 extra integer bits), see
    /// [`FixedBpArithmetic`](super::FixedBpArithmetic).
    app_format: FixedFormat,
    /// Kernel-tier pin for the panel kernels: `None` follows the
    /// process-wide [`simd::active_level`]. Outputs are identical either
    /// way.
    simd: Option<SimdLevel>,
}

impl Default for FixedMinSumArithmetic {
    fn default() -> Self {
        FixedMinSumArithmetic::new(FixedFormat::default())
    }
}

impl FixedMinSumArithmetic {
    /// Creates the arithmetic for a given message format.
    #[must_use]
    pub fn new(format: FixedFormat) -> Self {
        FixedMinSumArithmetic {
            format,
            app_format: FixedFormat::new((format.word_bits() + 2).min(24), format.frac_bits()),
            simd: None,
        }
    }

    /// Pins this instance's panel kernels to an explicit SIMD tier (clamped
    /// to the detected CPU capability) instead of the process-wide
    /// [`simd::active_level`]. Decode outputs are bit-identical across
    /// tiers; this exists for A/B benchmarking and the bit-identity sweeps.
    #[must_use]
    pub fn with_simd_level(mut self, level: SimdLevel) -> Self {
        self.simd = Some(level);
        self
    }

    /// The kernel tier this instance's panel kernels dispatch to.
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.simd.unwrap_or_else(simd::active_level)
    }

    /// The check-message format.
    #[must_use]
    pub fn format(&self) -> FixedFormat {
        self.format
    }

    /// The (wider) a-posteriori memory format.
    #[must_use]
    pub fn app_format(&self) -> FixedFormat {
        self.app_format
    }

    fn normalize(&self, magnitude: i32) -> i32 {
        // α = 0.75 as shift-and-subtract. The panel kernels inline this
        // exact formula (`simd::min_sum_emit` and its vector twins); keep
        // them in lock-step if the normalisation ever changes.
        magnitude - (magnitude >> 2)
    }
}

impl DecoderArithmetic for FixedMinSumArithmetic {
    type Msg = i32;

    fn from_channel(&self, llr: f64) -> i32 {
        self.format.quantize(llr)
    }

    fn to_llr(&self, m: i32) -> f64 {
        self.format.dequantize(m)
    }

    fn zero(&self) -> i32 {
        0
    }

    fn add(&self, a: i32, b: i32) -> i32 {
        self.app_format.add(a, b)
    }

    fn sub(&self, a: i32, b: i32) -> i32 {
        self.format.sub(a, b)
    }

    fn check_node_update(&self, lambdas: &[i32], out: &mut Vec<i32>) {
        out.clear();
        if lambdas.is_empty() {
            return;
        }
        let (core, _) = min_sum_core(lambdas, |x: i32| x.abs() as f64, |x| x < 0);
        out.extend(core.into_iter().map(|(mag, neg)| {
            let mag = self.normalize(self.format.saturate(mag as i64));
            if neg {
                -mag
            } else {
                mag
            }
        }));
    }

    fn name(&self) -> &'static str {
        "normalized Min-Sum fixed 8-bit"
    }
}

/// Hand-written lane kernel for the fixed-point Min-Sum datapath: the
/// two-minima trick tracked per lane in four integer scratch lanes
/// (min1/min2/argmin-slot/sign-parity), every inner loop a stride-1 sweep of
/// the `z` lanes (the frame-major engine passes `z · F` lanes per panel).
/// The minima updates are written in *select* form — `min`/conditional moves
/// instead of the scalar path's `if a < m1 { … } else if a < m2 { … }`
/// branches, which mispredict heavily on noisy messages — so the whole sweep
/// is branch-free and vectorises. Bit-identical to the scalar `min_sum_core`
/// path — the magnitudes are small non-negative integers, on which the scalar
/// path's `f64` comparisons are exact, and the `i32::MAX` sentinel saturates
/// to `max_code` exactly as the scalar path's `f64::INFINITY` does — while
/// allocating nothing (the scalar path builds a transient row `Vec` per
/// check row).
impl LaneKernel for FixedMinSumArithmetic {
    fn prefers_frame_groups(&self) -> bool {
        true
    }

    /// `λ = L − Λ` over a panel, in pure `i32`: the operands are in-range
    /// APP/message codes (|L| ≤ app max, |Λ| ≤ message max, both far below
    /// `i32` overflow), so the scalar path's widen-to-`i64`-and-saturate
    /// reduces to a clamp — dispatched to the instance's kernel tier.
    fn sub_lanes(&self, app: &[i32], lambda: &[i32], out: &mut [i32]) {
        let (lo, hi) = (self.format.min_code(), self.format.max_code());
        simd::sub_lanes_clamp(self.simd_level(), lo, hi, app, lambda, out);
    }

    /// `L = λ + Λ′` over a panel, `i32`-only for the same reason.
    fn add_lanes(&self, lam: &[i32], upd: &[i32], out: &mut [i32]) {
        let (lo, hi) = (self.app_format.min_code(), self.app_format.max_code());
        simd::add_lanes_clamp(self.simd_level(), lo, hi, lam, upd, out);
    }

    fn check_node_update_lanes(
        &self,
        z: usize,
        lanes_in: &[i32],
        lanes_out: &mut [i32],
        scratch: &mut LaneScratch<i32>,
    ) {
        debug_assert_eq!(lanes_in.len(), lanes_out.len());
        debug_assert!(z > 0 && lanes_in.len().is_multiple_of(z));
        let degree = lanes_in.len() / z;
        if degree == 0 {
            return;
        }
        let level = self.simd_level();
        let buf = scratch.lanes_mut(4 * z, 0);
        let (min1, rest) = buf.split_at_mut(z);
        let (min2, rest) = rest.split_at_mut(z);
        let (argmin, parity) = rest.split_at_mut(z);
        min1.fill(i32::MAX);
        min2.fill(i32::MAX);
        argmin.fill(0);
        parity.fill(0);
        // Select form of: if a < m1 { m2 = m1; m1 = a; am = slot }
        // else if a < m2 { m2 = a } — same first-wins tie semantics
        // (a == m1 keeps the earlier argmin), no branches; one
        // tier-dispatched panel sweep per slot.
        for (slot, inc) in lanes_in.chunks_exact(z).enumerate() {
            simd::min_sum_track(level, slot as i32, inc, min1, min2, argmin, parity);
        }
        // Output pass: second minimum at the argmin, first elsewhere. The
        // magnitudes are non-negative (abs codes or the MAX sentinel), so
        // the scalar path's i64 saturate reduces to a min, and the α = 0.75
        // normalisation is the hardware shift-and-subtract.
        for (slot, (out, inc)) in lanes_out
            .chunks_exact_mut(z)
            .zip(lanes_in.chunks_exact(z))
            .enumerate()
        {
            simd::min_sum_emit(
                level,
                slot as i32,
                self.format.max_code(),
                inc,
                min1,
                min2,
                argmin,
                parity,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::test_support::check_basic_axioms;

    #[test]
    fn float_min_sum_satisfies_axioms() {
        check_basic_axioms(&FloatMinSumArithmetic::default());
    }

    #[test]
    fn fixed_min_sum_satisfies_axioms() {
        check_basic_axioms(&FixedMinSumArithmetic::default());
    }

    #[test]
    fn min_sum_uses_second_minimum_at_the_argmin() {
        let arith = FloatMinSumArithmetic::with_alpha(1.0);
        let lambdas = [5.0, -1.0, 3.0, 4.0];
        let mut out = Vec::new();
        arith.check_node_update(&lambdas, &mut out);
        // argmin is position 1 (|−1| = 1): its output uses min2 = 3.
        assert!((out[1].abs() - 3.0).abs() < 1e-12);
        // every other output uses min1 = 1.
        for (i, &v) in out.iter().enumerate() {
            if i != 1 {
                assert!((v.abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn min_sum_sign_is_product_of_other_signs() {
        let arith = FloatMinSumArithmetic::default();
        let lambdas = [2.0, -3.0, -4.0, 5.0];
        let mut out = Vec::new();
        arith.check_node_update(&lambdas, &mut out);
        // Signs of others: pos0: (-)(-)(+) = +, pos1: (+)(-)(+) = -, etc.
        assert!(out[0] > 0.0);
        assert!(out[1] < 0.0);
        assert!(out[2] < 0.0);
        assert!(out[3] > 0.0);
    }

    #[test]
    fn normalization_shrinks_magnitudes() {
        let plain = FloatMinSumArithmetic::with_alpha(1.0);
        let scaled = FloatMinSumArithmetic::default();
        assert!((scaled.alpha() - 0.75).abs() < 1e-12);
        let lambdas = [4.0, 8.0, -6.0];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        plain.check_node_update(&lambdas, &mut a);
        scaled.check_node_update(&lambdas, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((y.abs() - 0.75 * x.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_normalization_is_shift_and_subtract() {
        let arith = FixedMinSumArithmetic::default();
        assert_eq!(arith.normalize(8), 6);
        assert_eq!(arith.normalize(7), 6); // 7 - 1
        assert_eq!(arith.normalize(4), 3);
        assert_eq!(arith.normalize(0), 0);
    }

    #[test]
    fn min_sum_overestimates_bp() {
        // Min-Sum (α = 1) magnitudes upper-bound the exact BP magnitudes: this
        // is precisely why normalization is needed and why BP outperforms it.
        use crate::arith::FloatBpArithmetic;
        let ms = FloatMinSumArithmetic::with_alpha(1.0);
        let bp = FloatBpArithmetic::default();
        let lambdas = [1.5, -2.0, 3.0, 0.8, -4.2];
        let (mut out_ms, mut out_bp) = (Vec::new(), Vec::new());
        ms.check_node_update(&lambdas, &mut out_ms);
        bp.check_node_update(&lambdas, &mut out_bp);
        for (m, b) in out_ms.iter().zip(&out_bp) {
            assert_eq!(m.is_sign_negative(), b.is_sign_negative());
            assert!(m.abs() >= b.abs() - 1e-9, "min-sum {m} vs bp {b}");
        }
    }

    #[test]
    fn fixed_min_sum_lane_kernel_matches_scalar_rows() {
        // Includes ties in magnitude (the argmin must keep first-wins
        // semantics) and saturated codes.
        let msg = |i: usize| {
            let v = ((i as i32 * 29) % 255) - 127;
            if i.is_multiple_of(11) {
                v.signum().max(1) * 127
            } else {
                v
            }
        };
        let arith = FixedMinSumArithmetic::default();
        for (z, degree) in [(1usize, 4usize), (3, 1), (27, 2), (96, 7), (24, 20)] {
            crate::arith::lanes::test_support::check_lane_axioms(&arith, z, degree, msg);
        }
        // All-equal magnitudes: every position is a tie.
        crate::arith::lanes::test_support::check_lane_axioms(&arith, 8, 5, |i| {
            if i % 2 == 0 {
                12
            } else {
                -12
            }
        });
    }

    #[test]
    fn float_min_sum_lane_fallback_matches_scalar_rows() {
        let arith = FloatMinSumArithmetic::default();
        crate::arith::lanes::test_support::check_lane_axioms(&arith, 27, 7, |i| {
            ((i * 41 % 19) as f64 - 9.0) * 0.6 + 0.3
        });
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = FloatMinSumArithmetic::with_alpha(0.0);
    }

    #[test]
    fn fixed_min_sum_matches_float_min_sum_on_exact_codes() {
        let fx = FixedMinSumArithmetic::default();
        let fmt = fx.format();
        let fl = FloatMinSumArithmetic::default();
        let row_f = [2.0, -3.0, 1.0, 4.0];
        let row_c: Vec<i32> = row_f.iter().map(|&x| fmt.quantize(x)).collect();
        let (mut out_c, mut out_f) = (Vec::new(), Vec::new());
        fx.check_node_update(&row_c, &mut out_c);
        fl.check_node_update(&row_f, &mut out_f);
        for (c, f) in out_c.iter().zip(&out_f) {
            // α = 0.75 on exact multiples of 0.25 stays exact unless the
            // shift-and-subtract rounding differs by one LSB.
            assert!((fmt.dequantize(*c) - f).abs() <= 0.25 + 1e-12);
        }
    }
}
