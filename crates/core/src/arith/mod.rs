//! Message arithmetic back-ends for the layered decoder.
//!
//! The layered decoder ([`crate::decoder::LayeredDecoder`]) is generic over a
//! [`DecoderArithmetic`]: the message representation (floating point or the
//! hardware's 8-bit fixed point) together with the check-node update rule
//! (full BP via ⊞/⊟ as in the paper, or the Min-Sum baseline the paper argues
//! against). This keeps a single scheduling/control implementation — matching
//! the fact that the ASIC datapath is the only thing that changes between
//! algorithm variants.
//!
//! [`LaneKernel`] extends the scalar algebra to lane-parallel slice kernels:
//! the layered engine processes all `z` rows of a layer at once, the way the
//! hardware's `z`-wide SISO array does, and the fixed-point back-ends provide
//! hand-written stride-1 kernels for it.

mod fixed_bp;
mod float_bp;
mod lanes;
mod min_sum;
// The explicit-SIMD kernel tier is the one module in the crate allowed to
// use `unsafe` (std::arch intrinsics + bounded raw-pointer panel loops);
// the crate-level lint is `deny(unsafe_code)`, relaxed here alone. See the
// module docs for the per-block safety arguments.
#[allow(unsafe_code)]
pub mod simd;

pub use fixed_bp::{CheckNodeMode, FixedBpArithmetic};
pub use float_bp::FloatBpArithmetic;
pub use lanes::{LaneKernel, LaneScratch};
pub use min_sum::{FixedMinSumArithmetic, FloatMinSumArithmetic};
pub use simd::SimdLevel;

use std::fmt::Debug;

/// A message representation plus the check-node update rule operating on it.
pub trait DecoderArithmetic {
    /// The message type carried through the decoder (e.g. `f64` or a
    /// fixed-point code).
    type Msg: Copy + Debug + PartialEq + Send + Sync + 'static;

    /// Converts a channel LLR into the message domain (the `L_n = 2y/σ²`
    /// initialisation of Algorithm 1, possibly quantised).
    // The receiver is the arithmetic back-end, not the value being converted,
    // so the `from_` self-convention lint does not apply.
    #[allow(clippy::wrong_self_convention)]
    fn from_channel(&self, llr: f64) -> Self::Msg;

    /// Converts a message back into an LLR value (for thresholds, reporting
    /// and hard decisions).
    fn to_llr(&self, m: Self::Msg) -> f64;

    /// The additive zero of the message domain (used to initialise Λ).
    fn zero(&self) -> Self::Msg;

    /// Saturating addition `L = λ + Λ`, saturating to the *APP* range.
    ///
    /// The a-posteriori memory is wider than the check-message datapath
    /// (2 extra integer bits in the fixed-point back-ends): if `L` and `Λ`
    /// saturated at the same level, `λ = L − Λ` would collapse to zero once
    /// the decoder converges and the iteration would diverge again.
    fn add(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Saturating subtraction `λ = L − Λ`, saturating to the *message* range
    /// (the result feeds the 8-bit SISO datapath).
    fn sub(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Hard decision with the paper's sign convention: `L ≥ 0 ⇒ 0`.
    fn hard_bit(&self, m: Self::Msg) -> u8 {
        u8::from(self.to_llr(m) < 0.0)
    }

    /// Absolute LLR value of a message (drives the early-termination
    /// threshold test).
    fn magnitude(&self, m: Self::Msg) -> f64 {
        self.to_llr(m).abs()
    }

    /// Check-node update (Eq. 1 of the paper for BP): given the incoming
    /// variable-to-check messages `λ_mj` of one check row, computes the
    /// outgoing check-to-variable messages `Λ_mn` for every position.
    ///
    /// `out` is cleared and filled with `lambdas.len()` messages.
    fn check_node_update(&self, lambdas: &[Self::Msg], out: &mut Vec<Self::Msg>);

    /// Short human-readable name used in reports ("full-BP fixed 8-bit", …).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::DecoderArithmetic;

    /// Exhaustive sanity checks every arithmetic back-end must satisfy.
    pub(crate) fn check_basic_axioms<A: DecoderArithmetic>(arith: &A) {
        let a = arith.from_channel(3.0);
        let b = arith.from_channel(-1.5);
        let zero = arith.zero();
        // Additive identity and hard decisions.
        assert_eq!(arith.add(a, zero), a);
        assert_eq!(arith.sub(a, zero), a);
        assert_eq!(arith.hard_bit(a), 0);
        assert_eq!(arith.hard_bit(b), 1);
        assert!(arith.magnitude(a) > 0.0);
        // add/sub are inverses for in-range values.
        let sum = arith.add(a, b);
        let back = arith.sub(sum, b);
        assert!((arith.to_llr(back) - arith.to_llr(a)).abs() < 0.26);
        // Check-node update preserves arity and is sign-correct for a
        // two-message row: each output equals the *other* input.
        let mut out = Vec::new();
        arith.check_node_update(&[a, b], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(arith.hard_bit(out[0]), arith.hard_bit(b));
        assert_eq!(arith.hard_bit(out[1]), arith.hard_bit(a));
    }
}
