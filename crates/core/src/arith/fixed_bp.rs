//! Bit-accurate fixed-point full-BP arithmetic (the ASIC datapath).
//!
//! Messages are 8-bit two's-complement codes (Fig. 3) and the non-linear
//! correction terms of Eq. (2) come from 3-bit lookup tables. This back-end is
//! the bit-accurate software model of the hardware SISO datapath: the R2/R4
//! SISO decoder models in [`crate::siso`] produce identical messages.

use super::lanes::{LaneKernel, LaneScratch};
use super::simd::{self, SimdLevel};
use super::DecoderArithmetic;
use crate::fixedpoint::FixedFormat;
use crate::lut::{CorrectionKind, CorrectionLut};

/// How the fixed-point check-node update extracts the extrinsic messages.
///
/// The paper's SISO datapath (Fig. 3) forms the total row sum `S_m` with the
/// `f(·)` recursion and then *extracts* each extrinsic message with the `g(·)`
/// unit, `Λ_mn = S_m ⊟ λ_mn` (Eq. 1). Our reproduction finds that this
/// extraction is numerically fragile at the 8-bit / 3-bit-LUT operating point:
/// the information that `g` must recover lives in the small difference
/// `|λ_mn| − |S_m|`, which the coarse quantisation destroys, costing more than
/// 0.5 dB and producing an error floor at high SNR. A forward/backward
/// `f(·)`-only recursion at the *same* 8-bit precision matches the
/// floating-point decoder. Both modes are provided; the ablation benchmark
/// (`ablation_fixedpoint`) quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckNodeMode {
    /// Paper-faithful: total ⊞ sum followed by ⊟ extraction (Fig. 3).
    #[default]
    SumExtract,
    /// Forward/backward partial ⊞ sums (no ⊟). Same message format, more
    /// robust to quantisation; needs a second `f(·)` unit instead of the
    /// `g(·)` unit and a reversing buffer in hardware.
    ForwardBackward,
}

/// Full-BP check-node arithmetic on fixed-point codes with LUT corrections.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedBpArithmetic {
    format: FixedFormat,
    /// The a-posteriori (L) memory format: two extra integer bits of headroom
    /// over the message datapath, so that `λ = L − Λ` never collapses when
    /// both would otherwise saturate at the same level.
    app_format: FixedFormat,
    mode: CheckNodeMode,
    lut_plus: CorrectionLut,
    lut_minus: CorrectionLut,
    /// Kernel-tier pin for the panel kernels: `None` follows the
    /// process-wide [`simd::active_level`]; `Some` forces a tier for this
    /// instance (A/B benches, bit-identity sweeps). Outputs are identical
    /// either way.
    simd: Option<SimdLevel>,
}

impl Default for FixedBpArithmetic {
    /// The paper's datapath: 8-bit messages, 3-bit correction LUTs, ⊟
    /// extraction.
    fn default() -> Self {
        FixedBpArithmetic::new(FixedFormat::default(), 3)
    }
}

impl FixedBpArithmetic {
    /// Creates the arithmetic for an arbitrary message format and LUT size,
    /// using the paper's ⊟-extraction check-node mode.
    #[must_use]
    pub fn new(format: FixedFormat, lut_address_bits: u32) -> Self {
        Self::with_mode(format, lut_address_bits, CheckNodeMode::default())
    }

    /// Creates the arithmetic with an explicit check-node mode.
    #[must_use]
    pub fn with_mode(format: FixedFormat, lut_address_bits: u32, mode: CheckNodeMode) -> Self {
        let app_format = FixedFormat::new((format.word_bits() + 2).min(24), format.frac_bits());
        FixedBpArithmetic {
            format,
            app_format,
            mode,
            lut_plus: CorrectionLut::new(CorrectionKind::Plus, format, lut_address_bits),
            lut_minus: CorrectionLut::new(CorrectionKind::Minus, format, lut_address_bits),
            simd: None,
        }
    }

    /// Pins this instance's panel kernels to an explicit SIMD tier (clamped
    /// to the detected CPU capability) instead of the process-wide
    /// [`simd::active_level`]. Decode outputs are bit-identical across
    /// tiers; this exists for A/B benchmarking and the bit-identity sweeps.
    #[must_use]
    pub fn with_simd_level(mut self, level: SimdLevel) -> Self {
        self.simd = Some(level);
        self
    }

    /// The kernel tier this instance's panel kernels dispatch to.
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.simd.unwrap_or_else(simd::active_level)
    }

    /// The 8-bit datapath with the robust forward/backward check-node mode.
    #[must_use]
    pub fn forward_backward() -> Self {
        Self::with_mode(FixedFormat::default(), 3, CheckNodeMode::ForwardBackward)
    }

    /// The configured check-node mode.
    #[must_use]
    pub fn mode(&self) -> CheckNodeMode {
        self.mode
    }

    /// The check-message format.
    #[must_use]
    pub fn format(&self) -> FixedFormat {
        self.format
    }

    /// The (wider) a-posteriori memory format.
    #[must_use]
    pub fn app_format(&self) -> FixedFormat {
        self.app_format
    }

    /// The `f(·)` LUT (`log(1+e^{-x})`).
    #[must_use]
    pub fn lut_plus(&self) -> &CorrectionLut {
        &self.lut_plus
    }

    /// The `g(·)` LUT (`−log(1−e^{-x})`).
    #[must_use]
    pub fn lut_minus(&self) -> &CorrectionLut {
        &self.lut_minus
    }

    /// Hardware ⊞: `f(a, b)` on codes, Eq. (2) with LUT corrections.
    ///
    /// The magnitude is floored at one LSB: the SISO datapath is
    /// sign-magnitude, so the recursion always carries a valid sign even when
    /// the magnitude rounds to zero. Without this floor a single low-magnitude
    /// message would erase the whole check row (the ⊞ identity-absorbing
    /// property of an exact zero), which exact-arithmetic decoders never hit.
    #[must_use]
    pub fn boxplus_codes(&self, a: i32, b: i32) -> i32 {
        let sign_negative = (a < 0) ^ (b < 0);
        let (aa, ab) = (a.abs(), b.abs());
        let min = aa.min(ab);
        let sum = self.format.saturate(aa as i64 + ab as i64);
        let diff = (aa - ab).abs();
        let magnitude = min + self.lut_plus.lookup(sum) - self.lut_plus.lookup(diff);
        let magnitude = magnitude.max(1);
        let value = if sign_negative { -magnitude } else { magnitude };
        self.format.saturate(value as i64)
    }

    /// Hardware ⊟: `g(a, b)` on codes, Eq. (2) with LUT corrections.
    #[must_use]
    pub fn boxminus_codes(&self, a: i32, b: i32) -> i32 {
        let sign_negative = (a < 0) ^ (b < 0);
        let (aa, ab) = (a.abs(), b.abs());
        let min = aa.min(ab);
        let sum = self.format.saturate(aa as i64 + ab as i64);
        let diff = (aa - ab).abs();
        // g adds the (large) correction of the small difference and removes
        // the (small) correction of the sum; the result saturates upwards.
        let magnitude = min - self.lut_minus.lookup(sum) + self.lut_minus.lookup(diff);
        let magnitude = magnitude.max(0);
        let value = if sign_negative { -magnitude } else { magnitude };
        self.format.saturate(value as i64)
    }
}

impl DecoderArithmetic for FixedBpArithmetic {
    type Msg = i32;

    /// Channel LLRs are quantised to the message format; the all-zero code is
    /// remapped to ±1 LSB so the sign survives (sign-magnitude datapath — an
    /// exact zero would otherwise erase its check rows in the ⊞ recursion).
    fn from_channel(&self, llr: f64) -> i32 {
        let q = self.format.quantize(llr);
        if q != 0 {
            q
        } else if llr < 0.0 {
            -1
        } else {
            1
        }
    }

    fn to_llr(&self, m: i32) -> f64 {
        self.format.dequantize(m)
    }

    fn zero(&self) -> i32 {
        0
    }

    fn add(&self, a: i32, b: i32) -> i32 {
        self.app_format.add(a, b)
    }

    /// `λ = L − Λ`, saturated to the message format, with the zero code
    /// remapped to ±1 LSB (sign of the unsaturated difference, or of `L` when
    /// the difference is exactly zero).
    fn sub(&self, a: i32, b: i32) -> i32 {
        let r = self.format.sub(a, b);
        if r != 0 {
            return r;
        }
        let raw = a as i64 - b as i64;
        if raw < 0 || (raw == 0 && a < 0) {
            -1
        } else {
            1
        }
    }

    fn check_node_update(&self, lambdas: &[i32], out: &mut Vec<i32>) {
        out.clear();
        if lambdas.is_empty() {
            return;
        }
        match self.mode {
            CheckNodeMode::SumExtract => {
                // Serial f(·) recursion to form S_m …
                let mut total = lambdas[0];
                for &l in &lambdas[1..] {
                    total = self.boxplus_codes(total, l);
                }
                // … then g(·) extraction of each Λ_mn (Eq. 1).
                out.extend(lambdas.iter().map(|&l| self.boxminus_codes(total, l)));
            }
            CheckNodeMode::ForwardBackward => {
                let d = lambdas.len();
                if d == 1 {
                    out.push(self.format.max_code());
                    return;
                }
                let mut fwd = vec![0i32; d];
                let mut bwd = vec![0i32; d];
                fwd[0] = lambdas[0];
                for i in 1..d {
                    fwd[i] = self.boxplus_codes(fwd[i - 1], lambdas[i]);
                }
                bwd[d - 1] = lambdas[d - 1];
                for i in (0..d - 1).rev() {
                    bwd[i] = self.boxplus_codes(bwd[i + 1], lambdas[i]);
                }
                for i in 0..d {
                    out.push(if i == 0 {
                        bwd[1]
                    } else if i == d - 1 {
                        fwd[d - 2]
                    } else {
                        self.boxplus_codes(fwd[i - 1], bwd[i + 1])
                    });
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            CheckNodeMode::SumExtract => "full-BP fixed 8-bit (3-bit LUT, ⊟ extraction)",
            CheckNodeMode::ForwardBackward => "full-BP fixed 8-bit (3-bit LUT, fwd/bwd)",
        }
    }
}

/// Hand-written lane kernels for the fixed-point BP datapath.
///
/// Both check-node modes run the *same recursion in the same order* as the
/// scalar [`DecoderArithmetic::check_node_update`], but with the slot loop
/// outside and the lane loop inside, so every inner loop is a stride-1 sweep
/// of independent `i32` codes (one per SISO lane; the frame-major engine
/// passes `z · F` lanes per panel). Each ⊞/⊟ step over a panel is one
/// [`simd::boxplus_panel`] / [`simd::boxminus_panel`] call, dispatched to
/// the instance's kernel tier ([`FixedBpArithmetic::simd_level`]): on AVX2
/// the whole operator runs as a single fused register-resident pass with
/// hardware LUT gathers (`vpgatherdd`); lower tiers run the three
/// branch-free passes — magnitude decomposition, the clamped-index
/// [`CorrectionLut`] gather (no per-element region branch, no division for
/// practical formats) and the sign/saturate combine — through the scratch
/// panels at their own vector width. All tiers replace the former
/// per-element [`FixedBpArithmetic::boxplus_codes`] calls, whose region
/// branches and divisions dominated the decode profile; the scalar
/// operators remain the bit-identity reference. Unlike the scalar
/// forward/backward update, which allocates two transient row buffers per
/// check row, the lane kernel runs entirely out of the caller's
/// [`LaneScratch`].
impl LaneKernel for FixedBpArithmetic {
    fn prefers_frame_groups(&self) -> bool {
        true
    }

    /// `λ = L − Λ` over a panel in pure `i32`, with the zero code remapped to
    /// ±1 LSB in select form. The operands are in-range APP/message codes
    /// (far below `i32` overflow), so the scalar path's widen-to-`i64`
    /// saturate reduces to a clamp, and the clamped difference is zero only
    /// when the exact difference is zero — where the scalar rule falls back
    /// to the sign of `L`. Branch-free, bit-identical to
    /// [`DecoderArithmetic::sub`] per element; dispatched to the instance's
    /// kernel tier.
    fn sub_lanes(&self, app: &[i32], lambda: &[i32], out: &mut [i32]) {
        let (lo, hi) = (self.format.min_code(), self.format.max_code());
        simd::sub_lanes_remap(self.simd_level(), lo, hi, app, lambda, out);
    }

    /// `L = λ + Λ′` over a panel, `i32`-only (clamped to the wider APP
    /// format), dispatched to the instance's kernel tier.
    fn add_lanes(&self, lam: &[i32], upd: &[i32], out: &mut [i32]) {
        let (lo, hi) = (self.app_format.min_code(), self.app_format.max_code());
        simd::add_lanes_clamp(self.simd_level(), lo, hi, lam, upd, out);
    }

    fn check_node_update_lanes(
        &self,
        z: usize,
        lanes_in: &[i32],
        lanes_out: &mut [i32],
        scratch: &mut LaneScratch<i32>,
    ) {
        debug_assert_eq!(lanes_in.len(), lanes_out.len());
        debug_assert!(z > 0 && lanes_in.len().is_multiple_of(z));
        let degree = lanes_in.len() / z;
        if degree == 0 {
            return;
        }
        let max_code = self.format.max_code();
        let level = self.simd_level();
        match self.mode {
            CheckNodeMode::SumExtract => {
                // Serial f(·) recursion across slots to form the lane of total
                // sums S_m — one ⊞ panel step per slot (fused on AVX2,
                // three branch-free passes below it) …
                let buf = scratch.lanes_mut(4 * z, 0);
                let (total, rest) = buf.split_at_mut(z);
                let (mins, rest) = rest.split_at_mut(z);
                let (sums, diffs) = rest.split_at_mut(z);
                total.copy_from_slice(&lanes_in[..z]);
                for slot in 1..degree {
                    let inc = &lanes_in[slot * z..(slot + 1) * z];
                    simd::boxplus_assign_panel(
                        level,
                        &self.lut_plus,
                        max_code,
                        total,
                        inc,
                        mins,
                        sums,
                        diffs,
                    );
                }
                // … then the g(·) extraction of every slot (Eq. 1), same
                // panel shape through the ⊟ LUT.
                for (out, inc) in lanes_out.chunks_exact_mut(z).zip(lanes_in.chunks_exact(z)) {
                    simd::boxminus_panel(
                        level,
                        &self.lut_minus,
                        max_code,
                        total,
                        inc,
                        out,
                        mins,
                        sums,
                        diffs,
                    );
                }
            }
            CheckNodeMode::ForwardBackward => {
                if degree == 1 {
                    lanes_out[..z].fill(max_code);
                    return;
                }
                // fwd[s] = λ_0 ⊞ … ⊞ λ_s, bwd[s] = λ_s ⊞ … ⊞ λ_{d−1}, both
                // slot-major in the scratch; every ⊞ is one panel step.
                let buf = scratch.lanes_mut((2 * degree + 3) * z, 0);
                let (fwd, rest) = buf.split_at_mut(degree * z);
                let (bwd, rest) = rest.split_at_mut(degree * z);
                let (mins, rest) = rest.split_at_mut(z);
                let (sums, diffs) = rest.split_at_mut(z);
                fwd[..z].copy_from_slice(&lanes_in[..z]);
                for slot in 1..degree {
                    let (prev, cur) = fwd[(slot - 1) * z..(slot + 1) * z].split_at_mut(z);
                    let inc = &lanes_in[slot * z..(slot + 1) * z];
                    simd::boxplus_panel(
                        level,
                        &self.lut_plus,
                        max_code,
                        prev,
                        inc,
                        cur,
                        mins,
                        sums,
                        diffs,
                    );
                }
                bwd[(degree - 1) * z..].copy_from_slice(&lanes_in[(degree - 1) * z..]);
                for slot in (0..degree - 1).rev() {
                    let (cur, next) = bwd[slot * z..(slot + 2) * z].split_at_mut(z);
                    let inc = &lanes_in[slot * z..(slot + 1) * z];
                    simd::boxplus_panel(
                        level,
                        &self.lut_plus,
                        max_code,
                        next,
                        inc,
                        cur,
                        mins,
                        sums,
                        diffs,
                    );
                }
                for (slot, out) in lanes_out.chunks_exact_mut(z).enumerate() {
                    if slot == 0 {
                        out.copy_from_slice(&bwd[z..2 * z]);
                    } else if slot == degree - 1 {
                        out.copy_from_slice(&fwd[(degree - 2) * z..(degree - 1) * z]);
                    } else {
                        let f = &fwd[(slot - 1) * z..slot * z];
                        let b = &bwd[(slot + 1) * z..(slot + 2) * z];
                        simd::boxplus_panel(
                            level,
                            &self.lut_plus,
                            max_code,
                            f,
                            b,
                            out,
                            mins,
                            sums,
                            diffs,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::test_support::check_basic_axioms;
    use crate::arith::FloatBpArithmetic;

    #[test]
    fn satisfies_basic_axioms() {
        check_basic_axioms(&FixedBpArithmetic::default());
    }

    #[test]
    fn boxplus_codes_track_float_reference() {
        let fx = FixedBpArithmetic::default();
        let fmt = fx.format();
        let mut worst: f64 = 0.0;
        for a in (-40..=40).step_by(5) {
            for b in (-40..=40).step_by(7) {
                let exact = crate::boxplus::boxplus(fmt.dequantize(a), fmt.dequantize(b));
                let approx = fmt.dequantize(fx.boxplus_codes(a, b));
                worst = worst.max((exact - approx).abs());
            }
        }
        // Two 3-bit LUT lookups plus quantisation: below ~1 LLR unit of error.
        assert!(worst < 1.0, "worst-case boxplus error {worst}");
    }

    #[test]
    fn boxminus_approximately_inverts_boxplus() {
        // Recovery is only possible when the removed message does not dominate
        // the aggregate, i.e. |a| ≲ |b|; hardware saturation loses the rest.
        let fx = FixedBpArithmetic::default();
        for a in [-20, -12, -4, 6, 18] {
            for b in [-25, -21, 22, 27] {
                let s = fx.boxplus_codes(a, b);
                let recovered = fx.boxminus_codes(s, b);
                // Low-magnitude aggregates lose precision; allow a few LSBs.
                assert!(
                    (recovered - a).abs() <= 6,
                    "g(f({a},{b}),{b}) = {recovered}"
                );
            }
        }
    }

    #[test]
    fn zero_input_behaviour() {
        let fx = FixedBpArithmetic::default();
        // ⊞ with a (near-)zero message keeps only the sign: the magnitude is
        // floored at one LSB so the recursion never collapses to an exact
        // zero (which would erase the whole check row).
        for b in [1, 15, 20] {
            assert_eq!(fx.boxplus_codes(0, b), 1);
            assert_eq!(fx.boxplus_codes(0, -b), -1);
        }
        // The decoder never produces a zero λ: quantisation and subtraction
        // remap it to ±1 LSB, preserving the sign.
        assert_eq!(fx.from_channel(0.05), 1);
        assert_eq!(fx.from_channel(-0.05), -1);
        assert_eq!(fx.sub(10, 10), 1);
        assert_eq!(fx.sub(-10, -10), -1);
        assert_eq!(fx.sub(5, 6), -1);
        assert_eq!(fx.sub(6, 5), 1);
    }

    #[test]
    fn check_node_update_matches_float_reference_in_sign_and_scale() {
        let fx = FixedBpArithmetic::default();
        let fl = FloatBpArithmetic::default();
        let fmt = fx.format();
        let rows: [&[f64]; 3] = [
            &[2.0, -3.5, 1.25, 4.0],
            &[6.0, 5.5, -7.25, 0.75, -2.0],
            &[1.0, 1.0, -1.0],
        ];
        for row in rows {
            let codes: Vec<i32> = row.iter().map(|&x| fmt.quantize(x)).collect();
            let mut fixed_out = Vec::new();
            let mut float_out = Vec::new();
            fx.check_node_update(&codes, &mut fixed_out);
            fl.check_node_update(row, &mut float_out);
            for (i, (&fo, &flo)) in fixed_out.iter().zip(&float_out).enumerate() {
                let fo = fmt.dequantize(fo);
                assert_eq!(
                    fo < 0.0,
                    flo < 0.0,
                    "sign mismatch at {i} for row {row:?}: {fo} vs {flo}"
                );
                assert!(
                    (fo - flo).abs() < 1.6,
                    "magnitude mismatch at {i} for row {row:?}: {fo} vs {flo}"
                );
            }
        }
    }

    #[test]
    fn saturation_is_respected_everywhere() {
        let fx = FixedBpArithmetic::default();
        let max = fx.format().max_code();
        // g of equal magnitudes saturates instead of overflowing.
        let v = fx.boxminus_codes(20, 20);
        assert!(v <= max && v > 20);
        // The APP adder has two extra integer bits of headroom.
        assert_eq!(fx.add(max, max), 2 * max);
        assert_eq!(
            fx.add(fx.app_format().max_code(), max),
            fx.app_format().max_code()
        );
        // λ = L − Λ saturates back to the message range.
        assert_eq!(fx.sub(fx.app_format().max_code(), -max), max);
        assert_eq!(fx.from_channel(1e9), max);
        assert_eq!(fx.from_channel(-1e9), -max);
    }

    #[test]
    fn forward_backward_mode_matches_float_reference_closely() {
        let fx = FixedBpArithmetic::forward_backward();
        assert_eq!(fx.mode(), CheckNodeMode::ForwardBackward);
        let fl = FloatBpArithmetic::default();
        let fmt = fx.format();
        let rows: [&[f64]; 3] = [
            &[2.0, -3.5, 1.25, 4.0],
            &[6.0, 5.5, -7.25, 0.75, -2.0],
            &[1.0, 1.0, -1.0, 2.5],
        ];
        for row in rows {
            let codes: Vec<i32> = row.iter().map(|&x| fmt.quantize(x)).collect();
            let (mut out_fx, mut out_fl) = (Vec::new(), Vec::new());
            fx.check_node_update(&codes, &mut out_fx);
            fl.check_node_update(row, &mut out_fl);
            assert_eq!(out_fx.len(), row.len());
            for (c, f) in out_fx.iter().zip(&out_fl) {
                let v = fmt.dequantize(*c);
                assert_eq!(v < 0.0, *f < 0.0, "sign mismatch: {v} vs {f}");
                assert!((v - f).abs() < 1.0, "fwd/bwd drifted: {v} vs {f}");
            }
        }
        // Degree-1 row: the single output carries no extrinsic information
        // and saturates positive (parity trivially satisfiable).
        let mut out = Vec::new();
        fx.check_node_update(&[7], &mut out);
        assert_eq!(out, vec![fmt.max_code()]);
    }

    #[test]
    fn modes_agree_on_well_conditioned_rows() {
        // Away from the quantisation-fragile regions the two check-node modes
        // produce similar messages.
        let se = FixedBpArithmetic::default();
        let fb = FixedBpArithmetic::forward_backward();
        let row = [24, -16, 32, -40, 20];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        se.check_node_update(&row, &mut a);
        fb.check_node_update(&row, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(*x < 0, *y < 0);
            assert!((x - y).abs() <= 6, "modes diverged: {x} vs {y}");
        }
    }

    #[test]
    fn lane_kernels_match_scalar_rows_in_both_modes() {
        // Messages covering saturation, near-zero codes and sign changes.
        let msg = |i: usize| ((i as i32 * 37) % 255) - 127;
        for arith in [
            FixedBpArithmetic::default(),
            FixedBpArithmetic::forward_backward(),
        ] {
            for (z, degree) in [(1usize, 3usize), (4, 1), (27, 2), (96, 7), (24, 20)] {
                crate::arith::lanes::test_support::check_lane_axioms(&arith, z, degree, msg);
            }
        }
    }

    #[test]
    fn lane_kernel_degree_one_saturates_like_scalar() {
        let fx = FixedBpArithmetic::forward_backward();
        let mut scratch = crate::arith::LaneScratch::new();
        scratch.reserve(1, 4);
        let mut out = [0i32; 4];
        fx.check_node_update_lanes(4, &[7, -3, 1, 127], &mut out, &mut scratch);
        assert_eq!(out, [fx.format().max_code(); 4]);
    }

    #[test]
    fn narrower_datapath_degrades_gracefully() {
        // A 5-bit datapath still produces sign-correct check messages.
        let fx = FixedBpArithmetic::new(FixedFormat::new(5, 1), 3);
        let mut out = Vec::new();
        fx.check_node_update(&[10, -7, 4], &mut out);
        assert_eq!(out.len(), 3);
        assert!(out[0] < 0);
        assert!(out[1] > 0);
        assert!(out[2] < 0);
    }
}
