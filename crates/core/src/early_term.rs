//! Early-termination rule (§IV of the paper).
//!
//! To save power the decoder stops iterating when both of the following hold:
//!
//! 1. the hard decisions of the *information* bits have not changed over two
//!    successive iterations, and
//! 2. the minimum absolute LLR of the information bits exceeds a pre-defined
//!    threshold.
//!
//! At good channel conditions this terminates most frames after a couple of
//! iterations and yields the up-to-65 % power reduction of Fig. 9(a).

/// Configuration of the early-termination rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyTermination {
    /// Minimum absolute information-bit LLR required to allow termination.
    pub threshold: f64,
}

impl Default for EarlyTermination {
    /// A threshold of 4.0 LLR units (16 LSBs of the Q6.2 datapath).
    fn default() -> Self {
        EarlyTermination { threshold: 4.0 }
    }
}

impl EarlyTermination {
    /// Creates a rule with the given LLR threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative.
    #[must_use]
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        EarlyTermination { threshold }
    }
}

/// Hard-decision history across iterations — the *stability* half of the
/// termination rule, shared by [`TerminationTracker`] and the decode engine's
/// kernels (which keep one history per [`crate::workspace::DecodeWorkspace`]).
///
/// The record buffer is reused across iterations and frames, so steady-state
/// updates perform no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct DecisionHistory {
    previous: Vec<u8>,
    has_previous: bool,
}

impl DecisionHistory {
    /// An empty history (nothing recorded yet).
    #[must_use]
    pub fn new() -> Self {
        DecisionHistory::default()
    }

    /// Returns whether `decisions` match the previously recorded iteration,
    /// then records them. The first call after a reset always returns `false`.
    pub fn stable_update(&mut self, decisions: &[u8]) -> bool {
        let stable = self.has_previous && self.previous == decisions;
        self.previous.clear();
        self.previous.extend_from_slice(decisions);
        self.has_previous = true;
        stable
    }

    /// Forgets the recorded decisions (start of a new frame). Keeps the
    /// buffer, so the next frame allocates nothing.
    pub fn reset(&mut self) {
        self.has_previous = false;
    }

    /// Grows the record buffer to hold `len` decisions without reallocating.
    pub(crate) fn reserve(&mut self, len: usize) {
        if self.previous.capacity() < len {
            self.previous.reserve_exact(len - self.previous.len());
        }
    }

    /// Whether the buffer can hold `len` decisions without reallocating.
    pub(crate) fn is_ready(&self, len: usize) -> bool {
        self.previous.capacity() >= len
    }

    /// Pointer/capacity of the record buffer (allocation-fingerprint support).
    pub(crate) fn fingerprint(&self) -> (usize, usize) {
        (self.previous.as_ptr() as usize, self.previous.capacity())
    }
}

impl PartialEq for DecisionHistory {
    fn eq(&self, other: &Self) -> bool {
        // Two histories agree when they would answer the next stable_update
        // identically; leftover buffer content behind a reset is invisible.
        self.has_previous == other.has_previous
            && (!self.has_previous || self.previous == other.previous)
    }
}

/// Tracks hard decisions across iterations and evaluates the termination rule.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationTracker {
    rule: EarlyTermination,
    history: DecisionHistory,
}

impl TerminationTracker {
    /// Creates a tracker for one frame.
    #[must_use]
    pub fn new(rule: EarlyTermination) -> Self {
        TerminationTracker {
            rule,
            history: DecisionHistory::new(),
        }
    }

    /// Feeds the information-bit hard decisions and LLR magnitudes of the
    /// iteration that just finished; returns `true` if decoding may stop.
    pub fn should_terminate(&mut self, info_decisions: &[u8], min_abs_info_llr: f64) -> bool {
        let stable = self.history.stable_update(info_decisions);
        stable && min_abs_info_llr > self.rule.threshold
    }

    /// Resets the tracker for a new frame.
    pub fn reset(&mut self) {
        self.history.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_positive() {
        assert!(EarlyTermination::default().threshold > 0.0);
    }

    #[test]
    fn never_terminates_on_first_iteration() {
        let mut t = TerminationTracker::new(EarlyTermination::default());
        assert!(!t.should_terminate(&[0, 1, 0], 100.0));
    }

    #[test]
    fn terminates_when_stable_and_confident() {
        let mut t = TerminationTracker::new(EarlyTermination::with_threshold(4.0));
        assert!(!t.should_terminate(&[0, 1, 0], 10.0));
        assert!(t.should_terminate(&[0, 1, 0], 10.0));
    }

    #[test]
    fn does_not_terminate_when_decisions_change() {
        let mut t = TerminationTracker::new(EarlyTermination::with_threshold(4.0));
        assert!(!t.should_terminate(&[0, 1, 0], 10.0));
        assert!(!t.should_terminate(&[0, 1, 1], 10.0));
        // Now stable again but only for one pair of iterations.
        assert!(t.should_terminate(&[0, 1, 1], 10.0));
    }

    #[test]
    fn does_not_terminate_below_threshold() {
        let mut t = TerminationTracker::new(EarlyTermination::with_threshold(4.0));
        assert!(!t.should_terminate(&[1, 1], 3.0));
        assert!(!t.should_terminate(&[1, 1], 3.9));
        assert!(
            !t.should_terminate(&[1, 1], 4.0),
            "strictly larger required"
        );
        assert!(t.should_terminate(&[1, 1], 4.1));
    }

    #[test]
    fn reset_clears_history() {
        let mut t = TerminationTracker::new(EarlyTermination::with_threshold(1.0));
        assert!(!t.should_terminate(&[0], 5.0));
        t.reset();
        assert!(!t.should_terminate(&[0], 5.0));
        assert!(t.should_terminate(&[0], 5.0));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_negative_threshold() {
        let _ = EarlyTermination::with_threshold(-1.0);
    }
}
