//! Fixed-point message format of the hardware datapath.
//!
//! The SISO datapath of the paper carries 8-bit two's-complement messages
//! (Fig. 3 shows 8-bit buses). [`FixedFormat`] describes such a format — total
//! word width `W` and fractional bits `F` — and provides the saturating
//! integer-code arithmetic the decoder and the SISO models share. Messages are
//! carried as `i32` *codes*; a code `c` represents the LLR value `c · 2^-F`.
//! The representable range is symmetric, `[-(2^{W-1}-1), 2^{W-1}-1]`, which is
//! the customary choice for LLR datapaths (the most negative code is unused).

use std::fmt;

/// A fixed-point format: `W` total bits, `F` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    word_bits: u32,
    frac_bits: u32,
}

impl Default for FixedFormat {
    /// The paper's message format: 8-bit words, 2 fractional bits
    /// (resolution 0.25, range ±31.75).
    fn default() -> Self {
        FixedFormat::new(8, 2)
    }
}

impl FixedFormat {
    /// Creates a format with `word_bits` total bits and `frac_bits` fractional
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ word_bits ≤ 24` and `frac_bits < word_bits`.
    #[must_use]
    pub fn new(word_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (2..=24).contains(&word_bits) && frac_bits < word_bits,
            "invalid fixed-point format W={word_bits}, F={frac_bits}"
        );
        FixedFormat {
            word_bits,
            frac_bits,
        }
    }

    /// Total word width in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The value of one least-significant bit, `2^-F`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (0.5f64).powi(self.frac_bits as i32)
    }

    /// Largest representable code, `2^{W-1} − 1`.
    #[must_use]
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.word_bits - 1)) - 1
    }

    /// Smallest representable code, `−(2^{W-1} − 1)` (symmetric range).
    #[must_use]
    pub fn min_code(&self) -> i32 {
        -self.max_code()
    }

    /// Largest representable LLR magnitude.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.max_code() as f64 * self.step()
    }

    /// Saturates an arbitrary integer to the representable code range.
    #[must_use]
    pub fn saturate(&self, code: i64) -> i32 {
        code.clamp(self.min_code() as i64, self.max_code() as i64) as i32
    }

    /// Saturating addition of two codes.
    #[must_use]
    pub fn add(&self, a: i32, b: i32) -> i32 {
        self.saturate(a as i64 + b as i64)
    }

    /// Saturating subtraction of two codes.
    #[must_use]
    pub fn sub(&self, a: i32, b: i32) -> i32 {
        self.saturate(a as i64 - b as i64)
    }

    /// Saturating negation of a code.
    #[must_use]
    pub fn neg(&self, a: i32) -> i32 {
        self.saturate(-(a as i64))
    }

    /// Converts a real LLR to the nearest representable code (saturating).
    #[must_use]
    pub fn quantize(&self, value: f64) -> i32 {
        if value.is_nan() {
            return 0;
        }
        let scaled = (value / self.step()).round();
        self.saturate(scaled as i64)
    }

    /// Converts a code back to its real value.
    #[must_use]
    pub fn dequantize(&self, code: i32) -> f64 {
        code as f64 * self.step()
    }

    /// Whether `code` is inside the representable range.
    #[must_use]
    pub fn in_range(&self, code: i32) -> bool {
        code >= self.min_code() && code <= self.max_code()
    }
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.word_bits - self.frac_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_format_matches_paper_datapath() {
        let f = FixedFormat::default();
        assert_eq!(f.word_bits(), 8);
        assert_eq!(f.frac_bits(), 2);
        assert_eq!(f.max_code(), 127);
        assert_eq!(f.min_code(), -127);
        assert!((f.step() - 0.25).abs() < 1e-12);
        assert!((f.max_value() - 31.75).abs() < 1e-12);
        assert_eq!(f.to_string(), "Q6.2");
    }

    #[test]
    fn saturation_behaviour() {
        let f = FixedFormat::default();
        assert_eq!(f.saturate(1_000), 127);
        assert_eq!(f.saturate(-1_000), -127);
        assert_eq!(f.saturate(100), 100);
        assert_eq!(f.add(100, 100), 127);
        assert_eq!(f.add(-100, -100), -127);
        assert_eq!(f.sub(-100, 100), -127);
        assert_eq!(f.sub(100, -100), 127);
        assert_eq!(f.neg(-127), 127);
        assert_eq!(f.add(3, 4), 7);
    }

    #[test]
    fn quantize_round_trip_and_saturation() {
        let f = FixedFormat::default();
        assert_eq!(f.quantize(0.25), 1);
        assert_eq!(f.quantize(-0.25), -1);
        assert_eq!(f.quantize(1000.0), 127);
        assert_eq!(f.quantize(-1000.0), -127);
        assert_eq!(f.quantize(f64::NAN), 0);
        for code in [-127, -3, 0, 5, 127] {
            assert_eq!(f.quantize(f.dequantize(code)), code);
        }
    }

    #[test]
    fn range_checks() {
        let f = FixedFormat::new(6, 1);
        assert_eq!(f.max_code(), 31);
        assert!(f.in_range(31));
        assert!(f.in_range(-31));
        assert!(!f.in_range(32));
        assert!(!f.in_range(-32));
    }

    #[test]
    #[should_panic(expected = "invalid fixed-point format")]
    fn rejects_bad_format() {
        let _ = FixedFormat::new(8, 8);
    }

    #[test]
    fn narrower_formats_saturate_earlier() {
        let narrow = FixedFormat::new(5, 2);
        let wide = FixedFormat::new(8, 2);
        assert!(narrow.max_value() < wide.max_value());
        assert_eq!(narrow.quantize(10.0), narrow.max_code());
        assert_ne!(wide.quantize(10.0), wide.max_code());
    }
}
