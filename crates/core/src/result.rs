//! Decoder output and statistics.

/// Operation counts accumulated during one decode, used by the architecture
/// model to derive cycle counts and switching activity (power).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Number of sub-iterations (layers processed).
    pub sub_iterations: usize,
    /// Number of check-node (row) updates performed.
    pub check_node_updates: usize,
    /// Number of individual messages passed through the check-node units
    /// (`Σ d_m` over all processed rows).
    pub messages_processed: usize,
}

impl DecodeStats {
    /// Merges the statistics of another decode into this accumulator.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.sub_iterations += other.sub_iterations;
        self.check_node_updates += other.check_node_updates;
        self.messages_processed += other.messages_processed;
    }
}

/// The result of decoding one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutput {
    /// Hard decisions for every code bit (`x̂_n = sign(L_n)`, length `n`).
    pub hard_bits: Vec<u8>,
    /// A-posteriori LLRs after the last executed iteration (length `n`).
    pub posterior_llrs: Vec<f64>,
    /// Number of *full* iterations executed (≤ the configured maximum).
    pub iterations: usize,
    /// Whether the final hard decisions satisfy every parity check.
    pub parity_satisfied: bool,
    /// Whether decoding stopped early due to the early-termination rule.
    pub early_terminated: bool,
    /// Operation counts.
    pub stats: DecodeStats,
}

impl DecodeOutput {
    /// An empty output shell for [`crate::engine::Decoder::decode_into`] to
    /// fill; its buffers are reused (and therefore allocation-free) when the
    /// same shell is decoded into repeatedly.
    #[must_use]
    pub fn empty() -> Self {
        DecodeOutput {
            hard_bits: Vec::new(),
            posterior_llrs: Vec::new(),
            iterations: 0,
            parity_satisfied: false,
            early_terminated: false,
            stats: DecodeStats::default(),
        }
    }

    /// The hard decisions of the information (systematic) bits only.
    #[must_use]
    pub fn info_bits(&self, info_len: usize) -> &[u8] {
        &self.hard_bits[..info_len.min(self.hard_bits.len())]
    }

    /// Counts bit errors against a reference codeword.
    ///
    /// # Panics
    ///
    /// Panics if the reference has a different length.
    #[must_use]
    pub fn bit_errors_against(&self, reference: &[u8]) -> usize {
        assert_eq!(reference.len(), self.hard_bits.len(), "length mismatch");
        self.hard_bits
            .iter()
            .zip(reference)
            .filter(|(&a, &b)| a != (b & 1))
            .count()
    }

    /// Counts bit errors in the information part only.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `info_len`.
    #[must_use]
    pub fn info_bit_errors_against(&self, reference: &[u8], info_len: usize) -> usize {
        assert!(reference.len() >= info_len, "reference too short");
        self.hard_bits[..info_len]
            .iter()
            .zip(&reference[..info_len])
            .filter(|(&a, &b)| a != (b & 1))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(bits: Vec<u8>) -> DecodeOutput {
        DecodeOutput {
            posterior_llrs: bits
                .iter()
                .map(|&b| if b == 0 { 1.0 } else { -1.0 })
                .collect(),
            hard_bits: bits,
            iterations: 3,
            parity_satisfied: true,
            early_terminated: false,
            stats: DecodeStats::default(),
        }
    }

    #[test]
    fn bit_error_counting() {
        let out = output(vec![0, 1, 1, 0]);
        assert_eq!(out.bit_errors_against(&[0, 1, 1, 0]), 0);
        assert_eq!(out.bit_errors_against(&[1, 1, 1, 1]), 2);
        assert_eq!(out.info_bit_errors_against(&[1, 1, 0, 0], 2), 1);
        assert_eq!(out.info_bits(2), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bit_error_counting_checks_length() {
        let out = output(vec![0, 1]);
        let _ = out.bit_errors_against(&[0]);
    }

    #[test]
    fn stats_merge_adds_counts() {
        let mut a = DecodeStats {
            sub_iterations: 2,
            check_node_updates: 10,
            messages_processed: 70,
        };
        let b = DecodeStats {
            sub_iterations: 3,
            check_node_updates: 15,
            messages_processed: 105,
        };
        a.merge(&b);
        assert_eq!(a.sub_iterations, 5);
        assert_eq!(a.check_node_updates, 25);
        assert_eq!(a.messages_processed, 175);
    }
}
