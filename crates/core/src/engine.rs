//! The batched decode engine: a common [`Decoder`] trait over the layered and
//! flooding schedules, single-frame zero-allocation decoding via
//! [`Decoder::decode_into`], and frame-parallel [`Decoder::decode_batch`].
//!
//! The paper's architecture reaches 1 Gbps by keeping `z` SISO decoders busy
//! on independent rows while the control ROM supplies a precompiled schedule.
//! The software analogues are:
//!
//! * [`ldpc_codes::CompiledCode`] — the schedule, compiled once per code;
//! * [`crate::workspace::DecodeWorkspace`] — the L/Λ memories, allocated once
//!   and reused for every frame;
//! * [`Decoder::decode_batch`] — frame-level parallelism across OS threads,
//!   the software stand-in for the parallel SISO array. Batches fan out onto
//!   the process-wide persistent [`crate::threadpool::DecodePool`] (spawned
//!   once, parked when idle — no per-call thread spawn): the batch is cut
//!   into chunks of whole frame-major groups (multiples of
//!   [`Decoder::preferred_group_width`], so partitioning never strands
//!   ragged sub-group tails inside a worker) and the participating threads —
//!   the calling thread plus up to `threads − 1` pool workers — claim chunks
//!   dynamically off a shared cursor. The environment variable
//!   `LDPC_DECODE_THREADS` overrides the worker count; by default it follows
//!   `std::thread::available_parallelism`. `LDPC_PIN_THREADS` additionally
//!   pins the pool workers to cores (see [`crate::threadpool`]).
//!
//! Below the engine, the fixed-point panel kernels dispatch once per
//! process to the best kernel tier the CPU supports (AVX2 → SSE4.1 →
//! scalar; see [`crate::arith::simd`]). [`kernel_tier`] reports the active
//! tier, and setting `LDPC_FORCE_SCALAR=1` pins the scalar fallback for
//! the whole process — outputs are bit-identical either way, so the knob
//! only trades speed.
//!
//! ```
//! use ldpc_codes::{CodeId, CodeRate, Standard};
//! use ldpc_core::{Decoder, DecoderConfig, FloatBpArithmetic, LayeredDecoder, LlrBatch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
//! let compiled = code.compile();
//! let decoder = LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default())?;
//!
//! // Four clean frames, flattened into one buffer.
//! let llrs = vec![8.0; 4 * compiled.n()];
//! let outputs = decoder.decode_batch(&compiled, LlrBatch::new(&llrs, compiled.n())?)?;
//! assert_eq!(outputs.len(), 4);
//! assert!(outputs.iter().all(|o| o.parity_satisfied));
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ldpc_codes::{CompiledCode, QcCode};

use crate::arith::DecoderArithmetic;
use crate::decoder::DecoderConfig;
use crate::error::DecodeError;
use crate::pool::WorkspacePool;
use crate::result::{DecodeOutput, DecodeStats};
use crate::threadpool::DecodePool;
use crate::workspace::DecodeWorkspace;

/// Panics unless `order` is a permutation of `0..num_layers` (the same
/// contract [`crate::schedule::LayerOrderPolicy::resolve`] enforces).
/// Debug-build backstop: `DecoderConfig::validate` already rejects
/// non-permutations at construction.
#[cfg(debug_assertions)]
pub(crate) fn validate_custom_order(order: &[usize], num_layers: usize) {
    assert_eq!(
        order.len(),
        num_layers,
        "custom order must cover every layer"
    );
    for (i, &l) in order.iter().enumerate() {
        assert!(
            l < num_layers && !order[..i].contains(&l),
            "order must be a permutation"
        );
    }
}

/// One early-termination check (the paper's rule, §IV): information-bit hard
/// decisions stable across two successive iterations AND minimum |LLR|
/// strictly above the threshold. The stability half is the same
/// [`crate::early_term::DecisionHistory`] mechanism `TerminationTracker`
/// uses, with the history kept in the workspace; shared by the layered and
/// flooding kernels.
pub(crate) fn early_termination_reached<A: DecoderArithmetic>(
    arith: &A,
    threshold: f64,
    ws: &mut DecodeWorkspace<A::Msg>,
    info_len: usize,
) -> bool {
    ws.info_hard.clear();
    ws.info_hard
        .extend(ws.app[..info_len].iter().map(|&m| arith.hard_bit(m)));
    let min_abs = ws.app[..info_len]
        .iter()
        .map(|&m| arith.magnitude(m))
        .fold(f64::INFINITY, f64::min);
    let stable = ws.history.stable_update(&ws.info_hard);
    stable && min_abs > threshold
}

/// Fills `out` from the final APP messages; shared by both kernels.
pub(crate) fn finish_output<A: DecoderArithmetic>(
    arith: &A,
    compiled: &CompiledCode,
    app: &[A::Msg],
    out: &mut DecodeOutput,
    iterations: usize,
    early_terminated: bool,
    stats: DecodeStats,
) {
    out.hard_bits.clear();
    out.hard_bits.extend(app.iter().map(|&m| arith.hard_bit(m)));
    out.posterior_llrs.clear();
    out.posterior_llrs
        .extend(app.iter().map(|&m| arith.to_llr(m)));
    out.iterations = iterations;
    out.parity_satisfied = compiled.syndrome_ok(&out.hard_bits);
    out.early_terminated = early_terminated;
    out.stats = stats;
}

/// Message type of a decoder's arithmetic back-end.
pub type MsgOf<D> = <<D as Decoder>::Arith as DecoderArithmetic>::Msg;

/// A flat batch of channel-LLR frames (`frames · frame_len` values).
///
/// Produced naturally by `ldpc_channel`'s block workload generation; borrowed,
/// so batches can be sliced out of any contiguous buffer without copying.
#[derive(Debug, Clone, Copy)]
pub struct LlrBatch<'a> {
    llrs: &'a [f64],
    frame_len: usize,
}

impl<'a> LlrBatch<'a> {
    /// Wraps a flat buffer holding a whole number of `frame_len`-sized frames.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BatchShape`] if `frame_len` is zero or does not
    /// divide the buffer length.
    pub fn new(llrs: &'a [f64], frame_len: usize) -> Result<Self, DecodeError> {
        if frame_len == 0 || !llrs.len().is_multiple_of(frame_len) {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "buffer of {} LLRs is not a whole number of {frame_len}-bit frames",
                    llrs.len()
                ),
            });
        }
        Ok(LlrBatch { llrs, frame_len })
    }

    /// Number of frames in the batch.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.llrs.len() / self.frame_len
    }

    /// LLRs per frame (the code length `n`).
    #[must_use]
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// The LLRs of one frame.
    ///
    /// # Panics
    ///
    /// Panics if `index >= frames()`.
    #[must_use]
    pub fn frame(&self, index: usize) -> &'a [f64] {
        &self.llrs[index * self.frame_len..(index + 1) * self.frame_len]
    }

    /// The LLRs of `count` consecutive frames starting at `start`, as one
    /// flat slice — the shape
    /// [`Decoder::decode_group_into`] consumes.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > frames()`.
    #[must_use]
    pub fn frames_slice(&self, start: usize, count: usize) -> &'a [f64] {
        &self.llrs[start * self.frame_len..(start + count) * self.frame_len]
    }

    /// Iterates over the frames in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f64]> {
        self.llrs.chunks_exact(self.frame_len)
    }
}

/// Parses an `LDPC_DECODE_THREADS` override. `None` (with a diagnostic on
/// stderr, once per process) for anything that is not a positive integer, so
/// a malformed value falls back to the machine's parallelism instead of being
/// silently misread as some other worker count.
fn thread_override(raw: Option<&str>) -> Option<usize> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(t) if t > 0 => Some(t),
        Ok(_) => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: LDPC_DECODE_THREADS=0 is invalid (need a positive worker \
                     count); falling back to available parallelism"
                );
            });
            None
        }
        Err(e) => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: ignoring unparseable LDPC_DECODE_THREADS={raw:?} ({e}); \
                     falling back to available parallelism"
                );
            });
            None
        }
    }
}

/// The kernel tier every decode in this process dispatches to
/// (`"avx2"` / `"sse4.1"` / `"scalar"`): the best level the CPU supports,
/// unless `LDPC_FORCE_SCALAR` pinned the fallback. CI headers and bench
/// baselines print this so recorded numbers are attributable to a tier.
#[must_use]
pub fn kernel_tier() -> &'static str {
    crate::arith::simd::active_level().name()
}

/// Number of worker threads `decode_batch` uses for `frames` frames.
///
/// A valid `LDPC_DECODE_THREADS` (a positive integer, surrounding whitespace
/// allowed) wins; a malformed or zero value is diagnosed on stderr and
/// ignored. Otherwise the machine's available parallelism. Never more threads
/// than frames, never zero.
#[must_use]
pub fn batch_threads(frames: usize) -> usize {
    let raw = std::env::var("LDPC_DECODE_THREADS").ok();
    let hw = thread_override(raw.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    hw.min(frames).max(1)
}

/// Common interface of the layered and flooding decode schedules.
///
/// The trait splits decoding into a cheap, allocation-free kernel
/// ([`decode_into`](Decoder::decode_into)) and convenience entry points built
/// on it: compatibility single-frame [`decode`](Decoder::decode) (compiles the
/// schedule on the fly) and the batched, thread-parallel
/// [`decode_batch`](Decoder::decode_batch).
pub trait Decoder {
    /// The arithmetic back-end (message format + check-node update rule).
    type Arith: DecoderArithmetic;

    /// The arithmetic back-end instance.
    fn arithmetic(&self) -> &Self::Arith;

    /// The decoder configuration.
    fn config(&self) -> &DecoderConfig;

    /// Human-readable schedule name ("layered" / "flooding").
    fn schedule_name(&self) -> &'static str;

    /// Decodes one frame into `out`, reusing `ws` for all intermediate state.
    ///
    /// Steady state (a workspace already sized for `compiled`, an output from
    /// a previous frame of the same code) performs **zero heap allocations**;
    /// debug builds assert this via the workspace allocation fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `llrs.len() != n`.
    fn decode_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<MsgOf<Self>>,
        out: &mut DecodeOutput,
    ) -> Result<(), DecodeError>;

    /// A workspace pre-sized for `compiled`, so the first `decode_into` is
    /// already allocation-free.
    fn workspace_for(&self, compiled: &CompiledCode) -> DecodeWorkspace<MsgOf<Self>> {
        DecodeWorkspace::for_code(compiled)
    }

    /// The decoder's workspace pool, if it keeps one. When present,
    /// [`decode_batch`](Decoder::decode_batch) workers check their workspaces
    /// out of it and back in, so repeated batches of the same mode allocate
    /// nothing at all; the provided decoders ([`crate::LayeredDecoder`],
    /// [`crate::FloodingDecoder`]) all pool.
    fn workspace_pool(&self) -> Option<&WorkspacePool<MsgOf<Self>>> {
        None
    }

    /// A workspace for one batch worker: pooled when the decoder keeps a
    /// [`workspace_pool`](Decoder::workspace_pool), freshly built otherwise.
    /// Return it with [`finish_worker_workspace`](Decoder::finish_worker_workspace).
    fn worker_workspace(&self, compiled: &CompiledCode) -> DecodeWorkspace<MsgOf<Self>> {
        match self.workspace_pool() {
            Some(pool) => pool.checkout(compiled),
            None => self.workspace_for(compiled),
        }
    }

    /// Returns a batch worker's workspace to the pool (a no-op for decoders
    /// without one).
    fn finish_worker_workspace(&self, compiled: &CompiledCode, ws: DecodeWorkspace<MsgOf<Self>>) {
        if let Some(pool) = self.workspace_pool() {
            pool.checkin(compiled, ws);
        }
    }

    /// How many frames of `compiled` the batch engine should pack into one
    /// frame-major group (see [`crate::group`]) before calling
    /// [`decode_group_into`](Decoder::decode_group_into). The default of 1
    /// keeps decoding frame-serial; [`crate::LayeredDecoder`] returns the
    /// [`crate::group::group_width_for`] heuristic for back-ends whose
    /// kernels profit from wider panels (the fixed-point arithmetics).
    fn preferred_group_width(&self, _compiled: &CompiledCode) -> usize {
        1
    }

    /// Decodes `outs.len()` consecutive frames (`llrs` holds them flattened,
    /// `outs.len() · n` values) as one frame-major group. Frame `i` of the
    /// result is **bit-identical** to
    /// [`decode_into`](Decoder::decode_into) on `llrs[i·n..(i+1)·n]` alone —
    /// the group is purely an execution-shape change. The default
    /// implementation is that sequential loop; [`crate::LayeredDecoder`]
    /// overrides it with the frame-major SoA driver.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BatchShape`] if `llrs` does not hold exactly
    /// `outs.len()` frames of the code length.
    fn decode_group_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<MsgOf<Self>>,
        outs: &mut [DecodeOutput],
    ) -> Result<(), DecodeError> {
        let n = compiled.n();
        if llrs.len() != outs.len() * n {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "group of {} outputs needs {} LLRs, got {}",
                    outs.len(),
                    outs.len() * n,
                    llrs.len()
                ),
            });
        }
        for (frame, out) in llrs.chunks_exact(n).zip(outs.iter_mut()) {
            self.decode_into(compiled, frame, ws, out)?;
        }
        Ok(())
    }

    /// Per-stage work counters, for decoders that run a stage ladder
    /// ([`crate::cascade::CascadeDecoder`] returns its live snapshot; plain
    /// single-schedule decoders return `None`). The serving layer polls this
    /// to export per-shard escalation counters.
    fn cascade_stats(&self) -> Option<crate::cascade::CascadeStats> {
        None
    }

    /// Requests a degraded effort level: 0 is full effort, each higher
    /// level trades error-correction work for throughput (a cascade drops
    /// its rescue stages, caps iteration budgets, …). Returns whether the
    /// decoder honours effort levels at all — the default implementation
    /// ignores the request and returns `false`, which is correct for
    /// single-schedule decoders with no cheaper mode to fall back to.
    ///
    /// The serving layer's graceful-degradation ladder drives this under
    /// queue pressure; decoders must treat any `u8` as valid by clamping to
    /// their deepest real level.
    fn set_effort_level(&self, _level: u8) -> bool {
        false
    }

    /// The effort level currently in force (0 = full effort; always 0 for
    /// decoders that don't honour [`set_effort_level`](Decoder::set_effort_level)).
    fn effort_level(&self) -> u8 {
        0
    }

    /// A clone with *private counters* but shared workspace pools: what a
    /// serving shard wants, so per-shard statistics do not aggregate across
    /// shards. For decoders without counters this is a plain clone.
    fn detached_clone(&self) -> Self
    where
        Self: Clone + Sized,
    {
        self.clone()
    }

    /// Decodes one frame against a precompiled schedule, allocating a fresh
    /// workspace and output.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `llrs.len() != n`.
    fn decode_compiled(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
    ) -> Result<DecodeOutput, DecodeError> {
        let mut ws = self.workspace_for(compiled);
        let mut out = DecodeOutput::empty();
        self.decode_into(compiled, llrs, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Single-frame compatibility entry point: compiles `code` and decodes.
    /// Prefer [`decode_compiled`](Decoder::decode_compiled) /
    /// [`decode_into`](Decoder::decode_into) in loops — compiling per frame
    /// re-derives the whole schedule.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LlrLengthMismatch`] if `llrs.len() != n`.
    fn decode(&self, code: &QcCode, llrs: &[f64]) -> Result<DecodeOutput, DecodeError> {
        self.decode_compiled(&code.compile(), llrs)
    }

    /// Decodes every frame of `batch` in parallel across worker threads,
    /// each with its own reused workspace. Frame `i` of the result is
    /// bit-identical to `decode_compiled(compiled, batch.frame(i))`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BatchShape`] if the batch frame length does not
    /// match the code.
    fn decode_batch(
        &self,
        compiled: &CompiledCode,
        batch: LlrBatch<'_>,
    ) -> Result<Vec<DecodeOutput>, DecodeError>
    where
        Self: Sync,
    {
        let mut outputs: Vec<DecodeOutput> = std::iter::repeat_with(DecodeOutput::empty)
            .take(batch.frames())
            .collect();
        self.decode_batch_into(compiled, batch, &mut outputs)?;
        Ok(outputs)
    }

    /// Like [`decode_batch`](Decoder::decode_batch), but reuses caller-owned
    /// outputs. Together with the workspace pool this makes steady-state
    /// serving loops (same mode, reused output vector) allocate nothing at
    /// all once the pool is warm.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BatchShape`] on frame-length or output-length
    /// mismatch.
    fn decode_batch_into(
        &self,
        compiled: &CompiledCode,
        batch: LlrBatch<'_>,
        outputs: &mut [DecodeOutput],
    ) -> Result<(), DecodeError>
    where
        Self: Sync,
    {
        self.decode_batch_into_threads(compiled, batch, outputs, batch_threads(outputs.len()))
    }

    /// Like [`decode_batch_into`](Decoder::decode_batch_into) with an explicit
    /// worker count (ignoring `LDPC_DECODE_THREADS` and the machine's
    /// parallelism). The result is independent of `threads`.
    ///
    /// `threads` bounds *concurrency*, not thread creation: the work runs on
    /// the calling thread plus up to `threads − 1` workers of the shared
    /// [`DecodePool`]. The batch is cut into chunks of whole frame-major
    /// groups and every participating thread claims
    /// chunks off a shared cursor, so frames that converge early (early
    /// termination) never strand one thread with all the slow chunks. Because
    /// each chunk boundary is a multiple of the group width, the grouping —
    /// and hence the bit-exact result — is identical for every `threads`
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BatchShape`] on frame-length or output-length
    /// mismatch.
    fn decode_batch_into_threads(
        &self,
        compiled: &CompiledCode,
        batch: LlrBatch<'_>,
        outputs: &mut [DecodeOutput],
        threads: usize,
    ) -> Result<(), DecodeError>
    where
        Self: Sync,
    {
        if batch.frame_len() != compiled.n() {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "batch frames have {} LLRs but the code length is {}",
                    batch.frame_len(),
                    compiled.n()
                ),
            });
        }
        if outputs.len() != batch.frames() {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "batch holds {} frames but {} outputs were supplied",
                    batch.frames(),
                    outputs.len()
                ),
            });
        }
        if outputs.is_empty() {
            return Ok(());
        }

        let threads = threads.clamp(1, outputs.len());
        let width = self.preferred_group_width(compiled).max(1);
        if threads == 1 {
            let mut ws = self.worker_workspace(compiled);
            let result = decode_chunk_grouped(self, compiled, batch, outputs, 0, width, &mut ws);
            self.finish_worker_workspace(compiled, ws);
            return result;
        }

        let chunk_frames = chunk_frames_for(outputs.len(), threads, width);
        let chunk_slots: Vec<ChunkSlot<'_>> = outputs
            .chunks_mut(chunk_frames)
            .enumerate()
            .map(|(ci, chunk)| Mutex::new(Some((ci * chunk_frames, chunk))))
            .collect();
        let cursor = AtomicUsize::new(0);
        let first_error: Mutex<Option<DecodeError>> = Mutex::new(None);

        let work = || {
            let mut ws = None;
            loop {
                let ci = cursor.fetch_add(1, Ordering::Relaxed);
                if ci >= chunk_slots.len() {
                    break;
                }
                let claimed = chunk_slots[ci]
                    .lock()
                    .expect("decode chunk slot poisoned")
                    .take();
                let Some((first_frame, chunk)) = claimed else {
                    continue;
                };
                // Workspaces are checked out lazily, on the first chunk a
                // thread actually claims: pool workers that never get a
                // chunk (small batch, or the caller outran them) cost no
                // workspace at all.
                let ws = ws.get_or_insert_with(|| self.worker_workspace(compiled));
                if let Err(e) =
                    decode_chunk_grouped(self, compiled, batch, chunk, first_frame, width, ws)
                {
                    let mut slot = first_error.lock().expect("decode error slot poisoned");
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
            if let Some(ws) = ws.take() {
                self.finish_worker_workspace(compiled, ws);
            }
        };
        DecodePool::global().run_scoped(threads - 1, &work);

        match first_error
            .into_inner()
            .expect("decode error slot poisoned")
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// One claimable chunk of the output batch: its first frame index plus the
/// output slots, consumed (`take`n) by whichever thread claims it.
type ChunkSlot<'a> = Mutex<Option<(usize, &'a mut [DecodeOutput])>>;

/// How many chunks the batch engine aims to hand each participating thread.
/// Over-partitioning (rather than one chunk per thread) keeps the dynamic
/// cursor meaningful: threads that draw fast-converging frames claim more
/// chunks instead of idling while a slow chunk finishes elsewhere.
const CHUNKS_PER_THREAD: usize = 4;

/// Frames per batch chunk for `frames` frames across `threads` threads with
/// frame-major groups of `width`: always a multiple of `width` (so chunk
/// boundaries never cut a group — the only ragged group is the true batch
/// tail), at least one group, and small enough to give each thread roughly
/// [`CHUNKS_PER_THREAD`] chunks to claim.
fn chunk_frames_for(frames: usize, threads: usize, width: usize) -> usize {
    let total_groups = frames.div_ceil(width);
    let chunk_groups = total_groups
        .div_ceil(threads.max(1) * CHUNKS_PER_THREAD)
        .max(1);
    chunk_groups * width
}

/// One batch worker's loop: regroups its chunk of consecutive frames into
/// frame-major groups of at most `width` frames (the tail group is ragged)
/// and decodes each through [`Decoder::decode_group_into`]. With `width == 1`
/// this is exactly the former frame-serial worker loop.
fn decode_chunk_grouped<D: Decoder + ?Sized>(
    decoder: &D,
    compiled: &CompiledCode,
    batch: LlrBatch<'_>,
    outs: &mut [DecodeOutput],
    first_frame: usize,
    width: usize,
    ws: &mut DecodeWorkspace<MsgOf<D>>,
) -> Result<(), DecodeError> {
    let mut start = 0;
    while start < outs.len() {
        let group = width.min(outs.len() - start);
        let llrs = batch.frames_slice(first_frame + start, group);
        decoder.decode_group_into(compiled, llrs, ws, &mut outs[start..start + group])?;
        start += group;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{FixedBpArithmetic, FloatBpArithmetic};
    use crate::decoder::LayeredDecoder;
    use crate::flooding::FloodingDecoder;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn compiled() -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
            .compile()
    }

    #[test]
    fn llr_batch_shape_checks() {
        let buf = vec![0.0; 12];
        assert!(LlrBatch::new(&buf, 0).is_err());
        assert!(LlrBatch::new(&buf, 5).is_err());
        let batch = LlrBatch::new(&buf, 4).unwrap();
        assert_eq!(batch.frames(), 3);
        assert_eq!(batch.frame_len(), 4);
        assert_eq!(batch.frame(2), &buf[8..12]);
        assert_eq!(batch.iter().count(), 3);
    }

    #[test]
    fn batch_threads_is_bounded() {
        assert_eq!(batch_threads(0), 1);
        assert_eq!(batch_threads(1), 1);
        assert!(batch_threads(1024) >= 1);
    }

    #[test]
    fn thread_override_accepts_positive_integers_only() {
        assert_eq!(thread_override(None), None);
        assert_eq!(thread_override(Some("4")), Some(4));
        assert_eq!(thread_override(Some(" 12\n")), Some(12), "whitespace ok");
        // Zero, negatives, garbage and overflow all fall back (with a
        // diagnostic) instead of being silently misread.
        assert_eq!(thread_override(Some("0")), None);
        assert_eq!(thread_override(Some("-3")), None);
        assert_eq!(thread_override(Some("")), None);
        assert_eq!(thread_override(Some("four")), None);
        assert_eq!(thread_override(Some("8 threads")), None);
        assert_eq!(thread_override(Some("999999999999999999999999")), None);
    }

    #[test]
    fn batch_workspaces_are_pooled_across_calls() {
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let pool = decoder.workspace_pool().expect("layered decoder pools");
        assert_eq!(pool.workspaces_created(), 0);

        let llrs = vec![6.0; 8 * compiled.n()];
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        let mut outputs = vec![DecodeOutput::empty(); 8];
        // Sequential path: exactly one workspace, built once, reused forever.
        for round in 0..3 {
            decoder
                .decode_batch_into_threads(&compiled, batch, &mut outputs, 1)
                .unwrap();
            assert_eq!(
                pool.workspaces_created(),
                1,
                "round {round}: repeated same-mode batches must reuse the \
                 pooled workspace instead of building new ones"
            );
            assert_eq!(pool.pooled(compiled.spec()), 1);
        }
        // Threaded path: workers draw from the same pool. Scheduling decides
        // whether two workers ever overlap, so the creation count is bounded
        // by the worker count rather than exact — but it must never grow per
        // round (without pooling it would grow by up to two every round).
        for _ in 0..3 {
            decoder
                .decode_batch_into_threads(&compiled, batch, &mut outputs, 2)
                .unwrap();
            let created = pool.workspaces_created();
            assert!(created <= 2, "at most one workspace per worker: {created}");
            assert_eq!(pool.pooled(compiled.spec()), created, "all checked in");
        }
    }

    #[test]
    fn cloned_decoders_share_one_pool() {
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let clone = decoder.clone();
        let llrs = vec![5.0; compiled.n()];
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        let mut outputs = vec![DecodeOutput::empty(); 1];
        decoder
            .decode_batch_into_threads(&compiled, batch, &mut outputs, 1)
            .unwrap();
        clone
            .decode_batch_into_threads(&compiled, batch, &mut outputs, 1)
            .unwrap();
        assert_eq!(decoder.workspace_pool().unwrap().workspaces_created(), 1);
    }

    #[test]
    fn decode_batch_matches_single_frame_decoding() {
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        // Mildly noisy deterministic LLRs, different per frame.
        let frames = 5;
        let llrs: Vec<f64> = (0..frames * compiled.n())
            .map(|i| {
                let sign = if (i * 2654435761) % 97 < 6 { -1.0 } else { 1.0 };
                sign * (1.0 + (i % 13) as f64 * 0.35)
            })
            .collect();
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        let outputs = decoder.decode_batch(&compiled, batch).unwrap();
        assert_eq!(outputs.len(), frames);
        for (i, out) in outputs.iter().enumerate() {
            let single = decoder.decode_compiled(&compiled, batch.frame(i)).unwrap();
            assert_eq!(out, &single, "frame {i}");
        }
    }

    #[test]
    fn decode_batch_rejects_bad_shapes() {
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let llrs = vec![1.0; 2 * compiled.n()];
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        let mut too_few = vec![DecodeOutput::empty(); 1];
        assert!(matches!(
            decoder.decode_batch_into(&compiled, batch, &mut too_few),
            Err(DecodeError::BatchShape { .. })
        ));
        let wrong_len = LlrBatch::new(&llrs[..compiled.n()], compiled.n() / 2).unwrap();
        assert!(matches!(
            decoder.decode_batch(&compiled, wrong_len),
            Err(DecodeError::BatchShape { .. })
        ));
    }

    #[test]
    fn steady_state_decode_into_does_not_reallocate() {
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FixedBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let mut ws = decoder.workspace_for(&compiled);
        let mut out = DecodeOutput::empty();
        let llrs: Vec<f64> = (0..compiled.n())
            .map(|i| if i % 29 == 3 { -2.0 } else { 5.0 })
            .collect();
        decoder
            .decode_into(&compiled, &llrs, &mut ws, &mut out)
            .unwrap();
        let fingerprint = ws.allocation_fingerprint();
        for _ in 0..4 {
            decoder
                .decode_into(&compiled, &llrs, &mut ws, &mut out)
                .unwrap();
        }
        assert_eq!(
            fingerprint,
            ws.allocation_fingerprint(),
            "steady-state decoding must not touch the allocator"
        );
    }

    #[test]
    fn flooding_implements_the_same_trait() {
        let compiled = compiled();
        let decoder =
            FloodingDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        assert_eq!(decoder.schedule_name(), "flooding");
        let llrs = vec![7.0; 2 * compiled.n()];
        let outputs = decoder
            .decode_batch(&compiled, LlrBatch::new(&llrs, compiled.n()).unwrap())
            .unwrap();
        assert!(outputs.iter().all(|o| o.parity_satisfied));
    }

    #[test]
    fn chunk_partitioning_hands_out_whole_groups() {
        // Every chunk boundary must be a multiple of the group width (the old
        // even split could strand ragged sub-group tails on every thread),
        // chunks must cover the batch exactly, and over-partitioning must
        // leave the dynamic cursor something to balance with.
        for frames in [1usize, 2, 5, 13, 64, 257, 1024] {
            for threads in [1usize, 2, 3, 4, 7, 64] {
                for width in [1usize, 2, 4, 6, 16] {
                    let chunk = chunk_frames_for(frames, threads, width);
                    assert!(chunk >= width, "at least one group per chunk");
                    assert_eq!(chunk % width, 0, "chunks are whole groups");
                    let chunks = frames.div_ceil(chunk);
                    assert_eq!(
                        (chunks - 1) * chunk + (frames - (chunks - 1) * chunk),
                        frames,
                        "chunks cover the batch"
                    );
                    // Only the final chunk may hold the batch's ragged tail
                    // group; every interior boundary sits on a group edge.
                    assert_eq!(
                        (0..chunks - 1)
                            .filter(|ci| !(ci * chunk).is_multiple_of(width))
                            .count(),
                        0,
                        "frames={frames} threads={threads} width={width}"
                    );
                    if frames / width >= threads * CHUNKS_PER_THREAD {
                        assert!(
                            chunks >= threads,
                            "large batches must out-partition the thread count \
                             (frames={frames} threads={threads} width={width})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_multithreading_matches_sequential() {
        // The box running CI may have a single core; force explicit worker
        // counts so the pool fan-out path is exercised everywhere.
        let compiled = compiled();
        let decoder =
            LayeredDecoder::new(FloatBpArithmetic::default(), DecoderConfig::default()).unwrap();
        let frames = 6;
        let llrs: Vec<f64> = (0..frames * compiled.n())
            .map(|i| if (i * 7919) % 101 < 7 { -1.5 } else { 3.0 })
            .collect();
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();

        let mut sequential: Vec<DecodeOutput> = vec![DecodeOutput::empty(); frames];
        decoder
            .decode_batch_into_threads(&compiled, batch, &mut sequential, 1)
            .unwrap();
        for threads in [2usize, 3, 64] {
            let mut parallel: Vec<DecodeOutput> = vec![DecodeOutput::empty(); frames];
            decoder
                .decode_batch_into_threads(&compiled, batch, &mut parallel, threads)
                .unwrap();
            assert_eq!(parallel, sequential, "{threads} workers");
        }
    }
}
