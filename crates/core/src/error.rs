//! Error type of the decoder crate.

use std::error::Error;
use std::fmt;

/// Errors raised by the decoder front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The channel-LLR vector length does not match the code length `n`.
    LlrLengthMismatch {
        /// Expected length (`n`).
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// The decoder configuration is invalid (e.g. zero iterations).
    InvalidConfig {
        /// Explanation of the violation.
        reason: String,
    },
    /// A batched LLR buffer or output slice has an inconsistent shape.
    BatchShape {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::LlrLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "channel LLR length mismatch: expected {expected}, got {actual}"
                )
            }
            DecodeError::InvalidConfig { reason } => {
                write!(f, "invalid decoder configuration: {reason}")
            }
            DecodeError::BatchShape { reason } => {
                write!(f, "invalid batch shape: {reason}")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DecodeError::LlrLengthMismatch {
            expected: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 10"));
        let e = DecodeError::InvalidConfig {
            reason: "max_iterations is zero".into(),
        };
        assert!(e.to_string().contains("max_iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
    }
}
