//! The persistent decode worker pool behind `decode_batch`.
//!
//! Before this module, every multi-threaded [`Decoder::decode_batch`] call
//! paid a full `std::thread::scope` spawn/join cycle — one OS thread creation
//! per worker per batch, which caps thread scaling long before the cores do
//! (a serving loop coalescing 3 ms batches spends a measurable slice of every
//! batch inside `clone(2)`). [`DecodePool`] replaces that with one
//! process-wide pool, spawned lazily on first use and kept for the process
//! lifetime:
//!
//! * **Spawned once.** [`DecodePool::global`] builds
//!   `max(1, available_parallelism − 1)` workers the first time any decode
//!   fans out; the calling thread always participates in its own batch, so
//!   caller + workers together cover the machine.
//! * **Parked when idle.** Workers block on a condvar-protected task queue;
//!   an idle pool costs nothing but memory.
//! * **Work-stealing dispatch.** [`DecodePool::run_scoped`] enqueues `fanout`
//!   *invocations* of one shared worker closure. The closure itself claims
//!   frame-group chunks off an atomic cursor (see
//!   [`crate::engine::Decoder::decode_batch_into_threads`]), so load
//!   balancing is chunk-granular no matter which threads show up: a worker
//!   that finishes its chunk early simply claims the next one, and a worker
//!   that never arrives (pool saturated by another batch) costs nothing —
//!   the caller drains the cursor itself and *cancels* its still-queued
//!   invocations on the way out. Batches therefore never wait on an
//!   oversubscribed pool; extra threads only ever help.
//! * **Cross-shard stealing for free.** Because the pool is shared
//!   process-wide, every [`ldpc-serve`] shard fans its batches into the same
//!   queue: when one mode's traffic runs hot while another sits idle, the
//!   idle mode's share of the machine drains the hot mode's chunk tasks
//!   automatically — there is no per-shard thread partition to strand.
//!
//! # Core pinning
//!
//! Setting `LDPC_PIN_THREADS` (truthy: `1`/`true`/`yes`/`on`) pins worker
//! `i` to core `(i + 1) mod cores` via `sched_setaffinity` on Linux, leaving
//! core 0 for the submitting threads. Pinning removes migration noise from
//! scaling measurements and helps NUMA-ish hosts; like `LDPC_FORCE_SCALAR`
//! the variable is read once per process, falsey spellings (`0`/`false`/
//! `no`/`off`/empty) leave pinning off, and anything unrecognised is
//! diagnosed on stderr once and treated as *set* — the user clearly asked
//! for pinning, and honouring a garbled request costs at most performance.
//! On non-Linux targets the request is diagnosed as unsupported and ignored.
//! [`DecodePool::pinned_workers`] reports how many workers actually pinned,
//! and the bench/CI headers print it so recorded scaling curves are
//! attributable.
//!
//! # Safety
//!
//! This is one of the two modules in the crate allowed to use `unsafe` (the
//! crate lint is `deny(unsafe_code)`; the other is the explicit-SIMD kernel
//! tier [`crate::arith::simd`]). Exactly two `unsafe` blocks exist here:
//!
//! 1. **The scoped-lifetime erasure in [`DecodePool::run_scoped`]** — the
//!    borrowed worker closure is transmuted to `'static` so it can sit in
//!    the task queue. Soundness is the classic scoped-pool latch argument,
//!    spelled out at the block: `run_scoped` cannot return (normally *or* by
//!    unwind) before every enqueued invocation has either executed to
//!    completion or been removed from the queue un-run, so no task can
//!    observe the closure after its borrow ends.
//! 2. **The `sched_setaffinity(2)` call** — a direct FFI syscall wrapper
//!    (the workspace builds offline, without the `libc` crate) on a
//!    stack-owned, correctly-sized CPU mask.
//!
//! [`Decoder::decode_batch`]: crate::engine::Decoder::decode_batch
//! [`ldpc-serve`]: ../../ldpc_serve/index.html

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased reference to one batch's shared worker closure. Only
/// ever constructed inside [`DecodePool::run_scoped`], which guarantees the
/// true borrow outlives every dereference (see the module-level safety
/// argument).
type Job = &'static (dyn Fn() + Sync);

/// One queued invocation of a batch's worker closure.
struct Task {
    job: Job,
    latch: Arc<Latch>,
}

/// Completion latch of one `run_scoped` call: counts enqueued invocations
/// down to zero as they execute (or are cancelled), and records whether any
/// of them panicked.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut remaining = self.remaining.lock().expect("decode pool latch poisoned");
        *remaining -= n;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("decode pool latch poisoned");
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .expect("decode pool latch poisoned");
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    work_ready: Condvar,
    executed: AtomicU64,
    cancelled: AtomicU64,
    pinned: AtomicUsize,
    /// Workers currently alive (incremented by each worker on entry,
    /// decremented by [`RespawnGuard`] when one dies). Converges back to
    /// [`DecodePool::workers`] after every worker death.
    live: AtomicUsize,
    /// Workers that died and were replaced over the process lifetime.
    restarts: AtomicU64,
}

/// The process-wide persistent decode worker pool; see the module docs.
///
/// Obtain it with [`DecodePool::global`]. The only dispatch entry point is
/// [`run_scoped`](DecodePool::run_scoped); everything else is introspection
/// for CI headers, stats and tests.
pub struct DecodePool {
    shared: Arc<PoolShared>,
    workers: usize,
    pin_requested: bool,
}

impl std::fmt::Debug for DecodePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodePool")
            .field("workers", &self.workers)
            .field("pin_requested", &self.pin_requested)
            .field("pinned_workers", &self.pinned_workers())
            .field("live_workers", &self.live_workers())
            .field("worker_restarts", &self.worker_restarts())
            .field("tasks_executed", &self.tasks_executed())
            .field("tasks_cancelled", &self.tasks_cancelled())
            .finish()
    }
}

/// Number of logical cores the machine reports
/// (`std::thread::available_parallelism`, 1 if unknown). The bench and soak
/// headers print this next to their measurements so recorded scaling curves
/// are attributable to a core count.
#[must_use]
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether a raw `LDPC_PIN_THREADS` value requests worker pinning.
///
/// Unset and the usual falsey spellings (`0`, `false`, `no`, `off`, empty —
/// trimmed, case-insensitive) leave pinning off; the truthy spellings (`1`,
/// `true`, `yes`, `on`) request it. Any other value is diagnosed on stderr
/// once per process and treated as *requesting pinning* — same convention
/// as `LDPC_FORCE_SCALAR`: the user clearly asked for the feature, and a
/// garbled spelling should degrade to honouring the request, not silently
/// dropping it.
fn pin_threads(raw: Option<&str>) -> bool {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let Some(raw) = raw else {
        return false;
    };
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "0" | "false" | "no" | "off" => false,
        "1" | "true" | "yes" | "on" => true,
        _ => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: unrecognised LDPC_PIN_THREADS={raw:?} (expected 0/1); \
                     treating it as set and pinning the decode pool workers"
                );
            });
            true
        }
    }
}

/// Whether `LDPC_PIN_THREADS` requests decode-pool core pinning. Read once
/// per process and cached (changing the variable after the first call has
/// no effect), without spawning the pool — safe to call from CI headers
/// that only want to print the state.
#[must_use]
pub fn pin_threads_requested() -> bool {
    static REQUESTED: OnceLock<bool> = OnceLock::new();
    *REQUESTED.get_or_init(|| pin_threads(std::env::var("LDPC_PIN_THREADS").ok().as_deref()))
}

/// Pins the calling thread to `cpu`, returning whether the kernel accepted
/// the mask. Linux-only; other targets report `false` (the caller diagnoses
/// once).
#[cfg(target_os = "linux")]
fn pin_current_thread(cpu: usize) -> bool {
    // glibc's cpu_set_t: 1024 bits of CPU mask held in unsigned-long words.
    // Building the mask out of u64 words keeps the bit layout correct
    // independent of byte order.
    const MASK_WORDS: usize = 16;
    let mut mask = [0u64; MASK_WORDS];
    let cpu = cpu % (MASK_WORDS * 64);
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: plain FFI call into libc. `mask` is a live, properly aligned
    // stack array of exactly `cpusetsize` bytes, only read by the callee;
    // pid 0 addresses the calling thread, so no foreign thread state is
    // touched. The workspace builds offline without the `libc` crate, hence
    // the local extern declaration (same ABI glibc and musl both export).
    unsafe { sched_setaffinity(0, MASK_WORDS * std::mem::size_of::<u64>(), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// Spawns (or respawns) pool worker `index`. Factored out so the death
/// guard can rebuild a worker with exactly the shape `global()` gave it.
fn spawn_worker(shared: Arc<PoolShared>, index: usize, pin: bool, cores: usize) -> bool {
    std::thread::Builder::new()
        .name(format!("ldpc-decode-{index}"))
        .spawn(move || worker_main(shared, index, pin, cores))
        .is_ok()
}

/// Replaces a worker whose thread dies by a panic that escapes the per-task
/// `catch_unwind` (e.g. a panic payload whose own `Drop` panics). Without
/// this, any such death would shrink the pool for the process lifetime.
/// Runs as a drop guard inside `worker_main` so it fires on *any* unwind out
/// of the worker loop, whatever the panic site.
struct RespawnGuard {
    shared: Arc<PoolShared>,
    index: usize,
    pin: bool,
    cores: usize,
    pinned_core: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        if self.pinned_core {
            self.shared.pinned.fetch_sub(1, Ordering::Relaxed);
        }
        self.shared.restarts.fetch_add(1, Ordering::SeqCst);
        // A poisoned task queue means some thread died *holding* the pool
        // lock — the pool is unusable and a replacement worker would panic
        // on its first lock, respawning forever. Leave the pool shrunk.
        if self.shared.queue.is_poisoned() {
            eprintln!("ldpc-core: decode pool queue poisoned; not respawning worker");
            return;
        }
        if !spawn_worker(Arc::clone(&self.shared), self.index, self.pin, self.cores) {
            eprintln!(
                "ldpc-core: cannot respawn decode pool worker {}; pool shrinks by one",
                self.index
            );
        }
    }
}

/// One pool worker: claim a task, run it (catching panics so one bad batch
/// cannot take the pool down), count its latch down, repeat forever. Should
/// the thread die anyway (a panic that escapes the catch, e.g. from the
/// panic payload's destructor), the [`RespawnGuard`] replaces it.
fn worker_main(shared: Arc<PoolShared>, index: usize, pin: bool, cores: usize) {
    shared.live.fetch_add(1, Ordering::SeqCst);
    let mut guard = RespawnGuard {
        shared: Arc::clone(&shared),
        index,
        pin,
        cores,
        pinned_core: false,
    };
    if pin {
        // Workers take cores 1.. and wrap, leaving core 0 for the threads
        // that submit batches (which always decode alongside the pool).
        if pin_current_thread((index + 1) % cores.max(1)) {
            shared.pinned.fetch_add(1, Ordering::Relaxed);
            guard.pinned_core = true;
        } else {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "ldpc-core: LDPC_PIN_THREADS set but pinning is unavailable \
                     (unsupported platform or affinity denied); continuing unpinned"
                );
            });
        }
    }
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("decode pool queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .expect("decode pool queue poisoned");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(task.job));
        shared.executed.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            task.latch.panicked.store(true, Ordering::SeqCst);
        }
        task.latch.count_down(1);
    }
}

/// Cancels this scope's still-queued tasks and waits for its in-flight ones.
/// Running as a drop guard makes `run_scoped` sound even when the caller's
/// own closure invocation unwinds: the borrow cannot end before the queue
/// holds no reference to it.
struct ScopeGuard<'a> {
    shared: &'a PoolShared,
    latch: &'a Arc<Latch>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        let cancelled = {
            let mut queue = self
                .shared
                .queue
                .lock()
                .expect("decode pool queue poisoned");
            let before = queue.len();
            queue.retain(|task| !Arc::ptr_eq(&task.latch, self.latch));
            before - queue.len()
        };
        self.shared
            .cancelled
            .fetch_add(cancelled as u64, Ordering::Relaxed);
        self.latch.count_down(cancelled);
        self.latch.wait();
    }
}

impl DecodePool {
    /// The process-wide pool, spawned on first use: `max(1,
    /// available_parallelism − 1)` workers (the submitting thread is always
    /// the +1), pinned per `LDPC_PIN_THREADS`. Subsequent calls return the
    /// same pool; it lives for the rest of the process.
    #[must_use]
    pub fn global() -> &'static DecodePool {
        static POOL: OnceLock<DecodePool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = detected_cores();
            // At least one worker even on a single core: the pool machinery
            // (queueing, stealing, cancellation) then gets exercised — and
            // regression-tested — everywhere, at the cost of one parked
            // thread.
            let workers = cores.saturating_sub(1).max(1);
            let pin = pin_threads_requested();
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                executed: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                pinned: AtomicUsize::new(0),
                live: AtomicUsize::new(0),
                restarts: AtomicU64::new(0),
            });
            for index in 0..workers {
                assert!(
                    spawn_worker(Arc::clone(&shared), index, pin, cores),
                    "cannot spawn decode pool worker"
                );
            }
            DecodePool {
                shared,
                workers,
                pin_requested: pin,
            }
        })
    }

    /// Number of worker threads the pool spawned.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether `LDPC_PIN_THREADS` requested core pinning for this process.
    #[must_use]
    pub fn pin_requested(&self) -> bool {
        self.pin_requested
    }

    /// Number of workers that successfully pinned themselves to a core.
    /// Zero unless pinning was requested (and supported by the platform).
    #[must_use]
    pub fn pinned_workers(&self) -> usize {
        self.shared.pinned.load(Ordering::Relaxed)
    }

    /// Total worker-closure invocations executed on pool threads. Grows only
    /// when fan-out actually reaches a worker — a saturated pool shows
    /// cancellations instead.
    #[must_use]
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Number of worker threads currently alive. Each worker registers
    /// itself on startup, so this can briefly trail [`workers`] right after
    /// the pool (or a replacement worker) spawns; it converges back to
    /// `workers()` after every worker death unless respawning itself failed.
    ///
    /// [`workers`]: DecodePool::workers
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Total workers that died (a panic escaped the per-task catch) and were
    /// replaced over the process lifetime.
    #[must_use]
    pub fn worker_restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// Total queued invocations cancelled un-run because the submitting
    /// thread finished the batch first. A high ratio of cancellations to
    /// executions means batches are too small (or the pool too busy) for
    /// fan-out to help.
    #[must_use]
    pub fn tasks_cancelled(&self) -> u64 {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// Runs `work` on the calling thread *and* up to `fanout` pool workers
    /// concurrently, returning once every invocation has finished.
    ///
    /// `work` is a cooperative worker loop: each invocation is expected to
    /// claim its own slices of the real job (e.g. frame-group chunks off an
    /// atomic cursor) and return when nothing is left, so the set of threads
    /// that actually show up never changes the result — only the speed. Do
    /// not block inside `work` on other `run_scoped` calls' completion; the
    /// pool has no notion of task priority and such cycles can deadlock.
    ///
    /// Invocations still queued when the calling thread finishes are
    /// cancelled un-run (the caller already drained the job), so a busy pool
    /// delays nothing: worst case the whole batch runs on the caller, as if
    /// `fanout` were 0.
    ///
    /// # Panics
    ///
    /// Panics if any invocation of `work` panicked (after all of them have
    /// finished), mirroring the join-and-propagate behaviour of the scoped
    /// threads this pool replaced.
    pub fn run_scoped(&self, fanout: usize, work: &(dyn Fn() + Sync)) {
        if fanout == 0 {
            work();
            return;
        }
        let latch = Arc::new(Latch::new(fanout));
        // SAFETY: the 'static is a lifetime erasure local to this call. The
        // transmuted reference is reachable only through the `fanout` tasks
        // pushed below, and every one of those tasks is accounted for by
        // `latch` in exactly one of two ways: a worker pops it, finishes
        // dereferencing `job` (panics caught), and *then* counts down; or
        // `ScopeGuard::drop` removes it from the queue un-run and counts it
        // down without dereferencing. This function cannot return — normally
        // or by unwind through `work()`, thanks to the guard — before
        // `latch.wait()` has observed all `fanout` counts, i.e. before the
        // queue and the workers hold no copy of `job`. Hence no dereference
        // of `job` can outlive the `work` borrow.
        let job: Job = unsafe { std::mem::transmute::<&(dyn Fn() + Sync), Job>(work) };
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .expect("decode pool queue poisoned");
            for _ in 0..fanout {
                queue.push_back(Task {
                    job,
                    latch: Arc::clone(&latch),
                });
            }
        }
        if fanout == 1 {
            self.shared.work_ready.notify_one();
        } else {
            self.shared.work_ready.notify_all();
        }
        let guard = ScopeGuard {
            shared: &self.shared,
            latch: &latch,
        };
        work();
        drop(guard);
        if latch.panicked.load(Ordering::SeqCst) {
            panic!("decode pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn pin_threads_parsing_follows_the_boolean_ish_convention() {
        assert!(!pin_threads(None));
        for falsey in ["", "0", "false", "no", "off", " Off ", "FALSE"] {
            assert!(!pin_threads(Some(falsey)), "{falsey:?} must not pin");
        }
        for truthy in ["1", "true", "yes", "on", " ON ", "Yes"] {
            assert!(pin_threads(Some(truthy)), "{truthy:?} must pin");
        }
        // Garbled values are diagnosed (once) and honoured as a request.
        assert!(pin_threads(Some("2")));
        assert!(pin_threads(Some("enable the pins")));
    }

    #[test]
    fn run_scoped_drains_a_shared_cursor_from_any_thread_mix() {
        // The canonical usage shape: invocations claim items off a cursor, so
        // the job completes whether zero or all fanout tasks ever run.
        let pool = DecodePool::global();
        for fanout in [0usize, 1, 3, 8] {
            const ITEMS: usize = 64;
            let cursor = AtomicUsize::new(0);
            let hits = AtomicUsize::new(0);
            let work = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= ITEMS {
                    break;
                }
                hits.fetch_add(1, Ordering::Relaxed);
            };
            pool.run_scoped(fanout, &work);
            assert_eq!(
                hits.load(Ordering::Relaxed),
                ITEMS,
                "fanout {fanout}: every item claimed exactly once"
            );
        }
    }

    #[test]
    fn queued_tasks_are_cancelled_once_the_caller_finishes() {
        // With a trivial job and a large fanout, most queued invocations are
        // cancelled by the scope guard rather than executed — and the call
        // still returns promptly with the latch fully resolved.
        let pool = DecodePool::global();
        let before = pool.tasks_cancelled() + pool.tasks_executed();
        for _ in 0..50 {
            pool.run_scoped(4, &|| {});
        }
        let after = pool.tasks_cancelled() + pool.tasks_executed();
        assert_eq!(
            after - before,
            200,
            "every queued invocation is accounted for, run or cancelled"
        );
    }

    #[test]
    fn pool_worker_panics_propagate_to_the_caller() {
        let pool = DecodePool::global();
        let caller = std::thread::current().id();
        // The barrier guarantees a pool worker really invokes the closure
        // (so the panic comes from the pool side, not the caller).
        let rendezvous = Barrier::new(2);
        let work = move || {
            if std::thread::current().id() != caller {
                rendezvous.wait();
                panic!("worker-side failure");
            } else {
                rendezvous.wait();
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            DecodePool::global().run_scoped(1, &work);
        }));
        assert!(outcome.is_err(), "worker panic must reach the caller");
        // The pool survives its task's panic and keeps serving.
        let cursor = AtomicUsize::new(0);
        pool.run_scoped(2, &|| {
            cursor.fetch_add(1, Ordering::Relaxed);
        });
        assert!(cursor.load(Ordering::Relaxed) >= 1);
    }

    /// Spins until `cond` holds, failing the test after 10 s.
    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for: {what}"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn a_dead_worker_is_respawned_at_full_pool_strength() {
        // A panic payload whose own destructor panics escapes the worker's
        // catch_unwind: the payload is dropped after the catch, when the
        // thread is no longer panicking, so its panic starts a fresh unwind
        // that kills the thread. This is the one in-tree way a worker dies —
        // the regression this test pins is that the pool used to shrink by
        // one for the rest of the process.
        struct DropBomb;
        impl Drop for DropBomb {
            fn drop(&mut self) {
                if !std::thread::panicking() {
                    panic!("drop-bomb payload detonating outside the unwind");
                }
            }
        }

        let pool = DecodePool::global();
        let workers = pool.workers();
        wait_for("initial workers to register", || {
            pool.live_workers() == workers
        });
        let restarts_before = pool.worker_restarts();

        let caller = std::thread::current().id();
        let rendezvous = Barrier::new(2);
        let work = move || {
            if std::thread::current().id() != caller {
                rendezvous.wait();
                std::panic::panic_any(DropBomb);
            } else {
                rendezvous.wait();
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(1, &work);
        }));
        assert!(outcome.is_err(), "the task panic still reaches the caller");

        wait_for("the dead worker to be replaced", || {
            pool.worker_restarts() > restarts_before && pool.live_workers() == workers
        });
        // The replacement worker serves work.
        let cursor = AtomicUsize::new(0);
        pool.run_scoped(2, &|| {
            cursor.fetch_add(1, Ordering::Relaxed);
        });
        assert!(cursor.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn global_pool_reports_consistent_shape() {
        let pool = DecodePool::global();
        assert!(pool.workers() >= 1);
        assert!(pool.live_workers() <= pool.workers());
        assert_eq!(pool.pin_requested(), pin_threads_requested());
        assert!(pool.pinned_workers() <= pool.workers());
        if !pool.pin_requested() {
            assert_eq!(pool.pinned_workers(), 0);
        }
        assert!(detected_cores() >= 1);
        let debug = format!("{pool:?}");
        assert!(debug.contains("workers"));
    }
}
