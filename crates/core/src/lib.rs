//! # ldpc-core — layered belief-propagation LDPC decoding
//!
//! This crate is the software model of the paper's primary contribution: a
//! layered belief-propagation (LBP) decoder for block-structured LDPC codes
//! built from ⊞/⊟ (`f`/`g`) check-node recursions with 3-bit correction LUTs,
//! executed by Radix-2 or Radix-4 SISO decoder cores under a block-serial
//! schedule, with an LLR-based early-termination rule for power saving.
//!
//! The crate is organised in layers:
//!
//! * [`fixedpoint`] / [`boxplus`] / [`lut`] — the arithmetic primitives: the
//!   8-bit message format, the exact ⊞/⊟ operators and their 3-bit LUT
//!   approximations,
//! * [`arith`] — interchangeable decoder arithmetics: full BP (float and
//!   bit-accurate fixed point) and the normalized Min-Sum baseline, plus the
//!   lane-parallel [`LaneKernel`] slice kernels the layered engine runs on
//!   (the software analogue of the paper's `z`-wide SISO array) and the
//!   explicit-SIMD kernel tier underneath them ([`arith::simd`]: AVX2 with
//!   hardware LUT gathers, SSE4.1, scalar fallback — selected once per
//!   process by runtime dispatch, bit-identical across tiers),
//! * [`decoder`] — the layered decoder itself (Algorithm 1), lane-major hot
//!   loop plus the row-serial reference kernel,
//! * [`flooding`] — the two-phase baseline schedule,
//! * [`engine`] — the [`Decoder`] trait unifying both schedules, with the
//!   zero-allocation `decode_into` kernel and thread-parallel `decode_batch`,
//! * [`cascade`] — the SNR-adaptive stage ladder (cheap fixed Min-Sum first,
//!   fixed-BP escalation for syndrome failures, optional float-BP last
//!   resort), a [`Decoder`] itself so every batch entry point and the
//!   serving layer run it unchanged,
//! * [`group`] — the frame-major SoA multi-frame layout: `F` frames
//!   interleaved frame-innermost so the lane kernels run over `z · F`-lane
//!   panels (full vectors even at small `z`), with per-frame early
//!   termination compacting converged frames out of the group,
//! * [`workspace`] — the reusable L/Λ/lane buffer set behind the
//!   zero-allocation guarantee,
//! * [`pool`] — per-mode workspace pooling (internally striped so parallel
//!   batch workers don't serialize on one mutex), so repeated `decode_batch`
//!   calls of one mode allocate nothing at all,
//! * [`threadpool`] — the persistent process-wide decode worker pool behind
//!   `decode_batch`: spawned once, parked when idle, chunk-stealing fan-out,
//!   optional core pinning via `LDPC_PIN_THREADS`,
//! * [`siso`] — cycle-annotated models of the Radix-2 / Radix-4 SISO cores,
//! * [`early_term`] — the early-termination rule of §IV,
//! * [`schedule`] — layer-ordering policies (natural / stall-minimizing).
//!
//! ```
//! use ldpc_codes::{CodeId, CodeRate, Standard};
//! use ldpc_core::arith::FixedBpArithmetic;
//! use ldpc_core::decoder::{DecoderConfig, LayeredDecoder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576).build()?;
//! let decoder = LayeredDecoder::new(FixedBpArithmetic::default(), DecoderConfig::default())?;
//! // A trivially clean channel: strong positive LLRs = all-zero codeword.
//! let llrs = vec![8.0; code.n()];
//! let out = decoder.decode(&code, &llrs)?;
//! assert!(out.parity_satisfied);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: exactly two modules are allowed to opt back
// in, each with a per-block safety argument — the explicit-SIMD kernel tier
// (`arith::simd`, `std::arch` intrinsics) and the persistent decode pool
// (`threadpool`, one scoped-lifetime erasure plus the `sched_setaffinity`
// FFI). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod boxplus;
pub mod cascade;
pub mod combine;
pub mod decoder;
pub mod early_term;
pub mod engine;
pub mod error;
pub mod fixedpoint;
pub mod flooding;
pub mod group;
pub mod lut;
pub mod pool;
pub mod result;
pub mod schedule;
pub mod siso;
#[allow(unsafe_code)]
pub mod threadpool;
pub mod workspace;

pub use arith::{
    CheckNodeMode, DecoderArithmetic, FixedBpArithmetic, FixedMinSumArithmetic, FloatBpArithmetic,
    FloatMinSumArithmetic, LaneKernel, LaneScratch, SimdLevel,
};
pub use cascade::{CascadeConfig, CascadeDecoder, CascadeStats};
pub use combine::HarqCombiner;
pub use decoder::{DecoderConfig, LayeredDecoder};
pub use early_term::{DecisionHistory, EarlyTermination};
pub use engine::{batch_threads, kernel_tier, Decoder, LlrBatch, MsgOf};
pub use error::DecodeError;
pub use fixedpoint::FixedFormat;
pub use flooding::FloodingDecoder;
pub use group::{group_width_for, MAX_GROUP_WIDTH, TARGET_PANEL_LANES};
pub use lut::{CorrectionKind, CorrectionLut};
pub use pool::WorkspacePool;
pub use result::{DecodeOutput, DecodeStats};
pub use schedule::LayerOrderPolicy;
pub use siso::{BoxArithmetic, R2Siso, R4Siso, SisoRadix, SisoRowResult};
pub use threadpool::{detected_cores, pin_threads_requested, DecodePool};
pub use workspace::DecodeWorkspace;
