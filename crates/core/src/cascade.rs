//! SNR-adaptive decoder cascade: cheap-first Min-Sum with BP escalation.
//!
//! At realistic operating SNRs most frames are easy — a few Min-Sum
//! iterations decode them — and only a tail needs the heavier fixed-BP (or
//! float-BP) machinery. A [`CascadeDecoder`] runs a configurable stage
//! ladder over every frame-major group the batch engine hands it:
//!
//! ```text
//!   stage 1: fixed Min-Sum, small fixed budget      (all frames)
//!      │  syndrome clean ──────────────► done (bit-identical to Min-Sum)
//!      ▼  syndrome failed
//!   stage 2: fixed BP (forward/backward), ET        (survivors only)
//!      │  syndrome clean ──────────────► done (bit-identical to fixed BP)
//!      ▼  syndrome failed
//!   stage 3: float BP (optional last resort)        (survivors only)
//! ```
//!
//! Stage 1 decodes the whole group; frames whose hard decisions satisfy
//! every parity check keep their Min-Sum output (converged frames compact
//! out of the group exactly as in per-frame early termination — stage 1
//! *is* [`LayeredDecoder`] with the stage-1 config, so enabling early
//! termination there compacts mid-stage too). Only the surviving failures
//! re-enter stage 2 as a fresh, narrower group, re-ingesting **the same
//! quantized LLRs** stage 1 decoded: the handoff values are
//! `dequantize(quantize(llr))`, which round-trip to the identical quantized
//! codes in stage 2's format, so an escalated frame's output is
//! bit-identical to running the stage-2 decoder directly on those LLRs.
//!
//! Why the default stage 1 runs a *fixed* 4-iteration budget instead of the
//! early-termination rule: under the explicit-SIMD kernel tier a decode
//! iteration is cheap enough that the per-iteration scalar convergence scan
//! (decision history + min-|LLR| reduction) costs as much as the iteration
//! it might save. The cascade sidesteps the scan entirely — the syndrome
//! check that [`finish_output`](crate::engine) already performs for every
//! frame doubles as the escalation test, so easy frames pay four SIMD
//! Min-Sum iterations and *zero* convergence bookkeeping. Hard frames pay
//! one wasted stage-1 budget and then the full stage-2 decoder; at realistic
//! SNR mixes the easy majority dominates (see the `cascade_throughput`
//! bench and `BENCH_cascade.json`).
//!
//! The cascade implements [`Decoder`], so `decode_batch`,
//! `decode_batch_into_threads`, the persistent decode pool and the serving
//! layer all work unchanged; per-stage frame counts and escalations are
//! observable through [`CascadeDecoder::stats`].

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use ldpc_codes::CompiledCode;

use crate::arith::{
    DecoderArithmetic, FixedBpArithmetic, FixedMinSumArithmetic, FloatBpArithmetic,
};
use crate::decoder::{DecoderConfig, LayeredDecoder};
use crate::engine::Decoder;
use crate::error::DecodeError;
use crate::pool::WorkspacePool;
use crate::result::DecodeOutput;
use crate::workspace::DecodeWorkspace;

/// Per-stage configurations of a [`CascadeDecoder`] ladder.
///
/// Each stage is a full [`DecoderConfig`], so iteration budgets, early
/// termination and layer order are all tunable per stage. The default
/// ladder is fixed Min-Sum (4 iterations, no convergence scan) → fixed
/// forward/backward BP (the defaults: 10 iterations with early
/// termination), with no float stage.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeConfig {
    /// Stage 1: the cheap fixed Min-Sum pass every frame takes.
    pub min_sum: DecoderConfig,
    /// Stage 2: the fixed forward/backward-BP pass for stage-1 failures.
    pub fixed_bp: DecoderConfig,
    /// Optional stage 3: a float-BP last resort for stage-2 failures.
    pub float_bp: Option<DecoderConfig>,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            min_sum: DecoderConfig::fixed_iterations(4),
            fixed_bp: DecoderConfig::default(),
            float_bp: None,
        }
    }
}

impl CascadeConfig {
    /// A ladder with the default stage shapes but explicit per-stage
    /// iteration budgets (stage 3 present only when `float_bp` is `Some`).
    /// Budgets are clamped to at least one iteration.
    #[must_use]
    pub fn with_budgets(min_sum: usize, fixed_bp: usize, float_bp: Option<usize>) -> Self {
        CascadeConfig {
            min_sum: DecoderConfig::fixed_iterations(min_sum.max(1)),
            fixed_bp: DecoderConfig {
                max_iterations: fixed_bp.max(1),
                ..DecoderConfig::default()
            },
            float_bp: float_bp.map(|iters| DecoderConfig {
                max_iterations: iters.max(1),
                ..DecoderConfig::default()
            }),
        }
    }
}

/// Snapshot of a cascade's per-stage work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Frames decoded by each stage (stage 1 counts every frame; stages 2
    /// and 3 count only the failures escalated to them).
    pub stage_frames: [u64; 3],
    /// Total escalation events (frames re-entering a later stage; equals
    /// `stage_frames[1] + stage_frames[2]`).
    pub escalations: u64,
}

impl CascadeStats {
    /// Fraction of stage-1 frames that escalated to stage 2 (0 when the
    /// cascade has decoded nothing yet).
    #[must_use]
    pub fn escalation_rate(&self) -> f64 {
        if self.stage_frames[0] == 0 {
            0.0
        } else {
            self.stage_frames[1] as f64 / self.stage_frames[0] as f64
        }
    }
}

/// Live cascade counters, shared by clones of one decoder (fresh per
/// [`Decoder::detached_clone`]); relaxed atomics, exact once the decoder
/// is quiescent.
#[derive(Debug, Default)]
struct CascadeCounters {
    stage_frames: [AtomicU64; 3],
    escalations: AtomicU64,
}

impl CascadeCounters {
    fn snapshot(&self) -> CascadeStats {
        CascadeStats {
            stage_frames: [
                self.stage_frames[0].load(Ordering::Relaxed),
                self.stage_frames[1].load(Ordering::Relaxed),
                self.stage_frames[2].load(Ordering::Relaxed),
            ],
            escalations: self.escalations.load(Ordering::Relaxed),
        }
    }

    fn count_stage(&self, stage: usize, frames: usize) {
        self.stage_frames[stage].fetch_add(frames as u64, Ordering::Relaxed);
        if stage > 0 {
            self.escalations.fetch_add(frames as u64, Ordering::Relaxed);
        }
    }
}

/// The SNR-adaptive stage-ladder decoder (see the module docs).
///
/// Implements [`Decoder`] with the stage-1 Min-Sum arithmetic as its
/// nominal back-end: both fixed-point stages share one `i32` workspace
/// (and workspace pool), while the optional float stage checks its `f64`
/// workspace out of its own pool only when a frame actually reaches it.
/// Clones share stage workspace pools *and* counters;
/// [`Decoder::detached_clone`] gives a clone with fresh counters for
/// per-shard accounting.
#[derive(Debug, Clone)]
pub struct CascadeDecoder {
    config: CascadeConfig,
    stage1: LayeredDecoder<FixedMinSumArithmetic>,
    stage2: LayeredDecoder<FixedBpArithmetic>,
    /// Stage 2 with half the iteration budget, pre-built so the effort
    /// ladder switches decoders without allocating. Decodes through the
    /// caller's workspace exactly like [`CascadeDecoder::stage2`], so
    /// engaging it changes no buffer shapes.
    degraded_stage2: LayeredDecoder<FixedBpArithmetic>,
    stage3: Option<LayeredDecoder<FloatBpArithmetic>>,
    counters: Arc<CascadeCounters>,
    /// Effort ladder level (see [`Decoder::set_effort_level`]): 0 = the
    /// full configured ladder, 1 = skip stage 3, 2 = skip stage 3 *and*
    /// halve stage 2's iteration budget. Shared by plain clones (one
    /// serving shard degrades as a unit); fresh per
    /// [`Decoder::detached_clone`].
    effort: Arc<AtomicU8>,
}

impl CascadeDecoder {
    /// Builds the ladder from per-stage configurations. Stage 1 runs
    /// [`FixedMinSumArithmetic`], stage 2
    /// [`FixedBpArithmetic::forward_backward`] (the mode whose waterfall
    /// tracks the float reference), stage 3 — when configured —
    /// [`FloatBpArithmetic`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidConfig`] if any stage configuration is
    /// invalid (e.g. a zero iteration budget).
    pub fn new(config: CascadeConfig) -> Result<Self, DecodeError> {
        let stage1 = LayeredDecoder::new(FixedMinSumArithmetic::default(), config.min_sum.clone())?;
        let stage2 = LayeredDecoder::new(
            FixedBpArithmetic::forward_backward(),
            config.fixed_bp.clone(),
        )?;
        let degraded_stage2 = LayeredDecoder::new(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig {
                max_iterations: (config.fixed_bp.max_iterations / 2).max(1),
                ..config.fixed_bp.clone()
            },
        )?;
        let stage3 = config
            .float_bp
            .as_ref()
            .map(|cfg| LayeredDecoder::new(FloatBpArithmetic::default(), cfg.clone()))
            .transpose()?;
        Ok(CascadeDecoder {
            config,
            stage1,
            stage2,
            degraded_stage2,
            stage3,
            counters: Arc::new(CascadeCounters::default()),
            effort: Arc::new(AtomicU8::new(0)),
        })
    }

    /// The ladder configuration.
    #[must_use]
    pub fn cascade_config(&self) -> &CascadeConfig {
        &self.config
    }

    /// The stage-1 Min-Sum decoder (the ladder's cheap front).
    #[must_use]
    pub fn stage1(&self) -> &LayeredDecoder<FixedMinSumArithmetic> {
        &self.stage1
    }

    /// The stage-2 forward/backward fixed-BP decoder.
    #[must_use]
    pub fn stage2(&self) -> &LayeredDecoder<FixedBpArithmetic> {
        &self.stage2
    }

    /// The optional stage-3 float-BP decoder.
    #[must_use]
    pub fn stage3(&self) -> Option<&LayeredDecoder<FloatBpArithmetic>> {
        self.stage3.as_ref()
    }

    /// Snapshot of the per-stage work counters accumulated so far (shared
    /// by plain clones; see [`Decoder::detached_clone`]).
    #[must_use]
    pub fn stats(&self) -> CascadeStats {
        self.counters.snapshot()
    }

    /// The exact LLR value a stage ≥ 2 re-ingests for a channel LLR `raw`:
    /// the dequantized form of stage 1's quantization, which round-trips to
    /// the identical quantized code. Public so tests and benches can build
    /// the reference "straight fixed BP on the same quantized LLRs" input.
    #[must_use]
    pub fn handoff_llr(&self, raw: f64) -> f64 {
        let arith = self.stage1.arithmetic();
        arith.to_llr(arith.from_channel(raw))
    }

    /// Packs the handoff LLRs of the surviving frames listed in `pending`
    /// into `buf`, frame-contiguous.
    fn pack_handoff(&self, llrs: &[f64], n: usize, pending: &[u32], buf: &mut Vec<f64>) {
        buf.clear();
        for &f in pending {
            let frame = &llrs[f as usize * n..(f as usize + 1) * n];
            buf.extend(frame.iter().map(|&l| self.handoff_llr(l)));
        }
    }

    /// Stages 2 and 3: re-decode the surviving failures as fresh, narrower
    /// groups on the handoff LLRs, swapping each improved output back into
    /// the caller's slot. `scratch` holds the workspace's cascade buffers,
    /// temporarily owned by the caller.
    fn escalate(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<i32>,
        outs: &mut [DecodeOutput],
        scratch: EscalationScratch<'_>,
    ) -> Result<(), DecodeError> {
        let EscalationScratch {
            pending,
            llrs: stage_llrs,
            outs: stage_outs,
        } = scratch;
        let n = compiled.n();
        let effort = self.effort.load(Ordering::Relaxed);
        self.pack_handoff(llrs, n, pending, stage_llrs);
        self.counters.count_stage(1, pending.len());
        let stage2 = if effort >= 2 {
            &self.degraded_stage2
        } else {
            &self.stage2
        };
        stage2.decode_group_into(compiled, stage_llrs, ws, &mut stage_outs[..pending.len()])?;
        for (slot, &f) in pending.iter().enumerate() {
            std::mem::swap(&mut outs[f as usize], &mut stage_outs[slot]);
        }

        // Effort level ≥ 1 drops the float-BP rescue stage: the expensive
        // tail is exactly what a pressured shard cannot afford.
        if effort >= 1 {
            return Ok(());
        }
        let Some(stage3) = &self.stage3 else {
            return Ok(());
        };
        pending.retain(|&f| !outs[f as usize].parity_satisfied);
        if pending.is_empty() {
            return Ok(());
        }
        self.pack_handoff(llrs, n, pending, stage_llrs);
        self.counters.count_stage(2, pending.len());
        let mut ws3 = stage3.worker_workspace(compiled);
        let result = stage3.decode_group_into(
            compiled,
            stage_llrs,
            &mut ws3,
            &mut stage_outs[..pending.len()],
        );
        stage3.finish_worker_workspace(compiled, ws3);
        result?;
        for (slot, &f) in pending.iter().enumerate() {
            std::mem::swap(&mut outs[f as usize], &mut stage_outs[slot]);
        }
        Ok(())
    }
}

/// The workspace's cascade scratch buffers, taken out of the
/// [`DecodeWorkspace`] for the duration of an escalation so stage ≥ 2 can
/// borrow the workspace itself.
struct EscalationScratch<'a> {
    pending: &'a mut Vec<u32>,
    llrs: &'a mut Vec<f64>,
    outs: &'a mut [DecodeOutput],
}

impl Default for CascadeDecoder {
    fn default() -> Self {
        CascadeDecoder::new(CascadeConfig::default()).expect("default cascade config is valid")
    }
}

impl Decoder for CascadeDecoder {
    type Arith = FixedMinSumArithmetic;

    fn arithmetic(&self) -> &FixedMinSumArithmetic {
        self.stage1.arithmetic()
    }

    fn config(&self) -> &DecoderConfig {
        self.stage1.config()
    }

    fn schedule_name(&self) -> &'static str {
        "cascade"
    }

    fn workspace_pool(&self) -> Option<&WorkspacePool<i32>> {
        Decoder::workspace_pool(&self.stage1)
    }

    fn preferred_group_width(&self, compiled: &CompiledCode) -> usize {
        Decoder::preferred_group_width(&self.stage1, compiled)
    }

    fn cascade_stats(&self) -> Option<CascadeStats> {
        Some(self.stats())
    }

    fn detached_clone(&self) -> Self {
        CascadeDecoder {
            counters: Arc::new(CascadeCounters::default()),
            effort: Arc::new(AtomicU8::new(0)),
            ..self.clone()
        }
    }

    fn set_effort_level(&self, level: u8) -> bool {
        // Level 2 is the deepest real rung; anything above degrades the same.
        self.effort.store(level.min(2), Ordering::Relaxed);
        true
    }

    fn effort_level(&self) -> u8 {
        self.effort.load(Ordering::Relaxed)
    }

    fn decode_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<i32>,
        out: &mut DecodeOutput,
    ) -> Result<(), DecodeError> {
        self.decode_group_into(compiled, llrs, ws, std::slice::from_mut(out))
    }

    fn decode_group_into(
        &self,
        compiled: &CompiledCode,
        llrs: &[f64],
        ws: &mut DecodeWorkspace<i32>,
        outs: &mut [DecodeOutput],
    ) -> Result<(), DecodeError> {
        let n = compiled.n();
        let frames = outs.len();
        if llrs.len() != frames * n {
            return Err(DecodeError::BatchShape {
                reason: format!(
                    "group of {frames} outputs needs {} LLRs, got {}",
                    frames * n,
                    llrs.len()
                ),
            });
        }
        if frames == 0 {
            return Ok(());
        }

        #[cfg(debug_assertions)]
        let steady_fingerprint = ws
            .is_ready_for_cascade(compiled, frames)
            .then(|| ws.cascade_fingerprint());
        ws.reserve_for_cascade(compiled, frames);

        // Stage 1: the whole group through the cheap Min-Sum pass. Each
        // output's syndrome (computed by finish_output for every frame
        // anyway) is the escalation test — no extra convergence scan.
        self.stage1.decode_group_into(compiled, llrs, ws, outs)?;
        self.counters.count_stage(0, frames);

        // The surviving failures, by original frame index. The cascade
        // buffers are swapped out of the workspace while stage ≥ 2 borrows
        // it, and unconditionally put back (they are plain scratch: on error
        // their contents are dead, only their allocations are kept).
        let mut pending = std::mem::take(&mut ws.cascade_pending);
        pending.clear();
        pending.extend(
            outs.iter()
                .enumerate()
                .filter(|(_, out)| !out.parity_satisfied)
                .map(|(f, _)| f as u32),
        );
        let result = if pending.is_empty() {
            Ok(())
        } else {
            let mut stage_llrs = std::mem::take(&mut ws.cascade_llrs);
            let mut stage_outs = std::mem::take(&mut ws.cascade_outs);
            let result = self.escalate(
                compiled,
                llrs,
                ws,
                outs,
                EscalationScratch {
                    pending: &mut pending,
                    llrs: &mut stage_llrs,
                    outs: &mut stage_outs,
                },
            );
            ws.cascade_llrs = stage_llrs;
            ws.cascade_outs = stage_outs;
            result
        };
        ws.cascade_pending = pending;

        #[cfg(debug_assertions)]
        if let Some(fingerprint) = steady_fingerprint {
            debug_assert_eq!(
                fingerprint,
                ws.cascade_fingerprint(),
                "steady-state cascade decode must not reallocate workspace buffers"
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LlrBatch;
    use ldpc_codes::{CodeId, CodeRate, Standard};

    fn compiled() -> CompiledCode {
        CodeId::new(Standard::Wimax80216e, CodeRate::R1_2, 576)
            .build()
            .unwrap()
            .compile()
    }

    /// Deterministic mildly-noisy LLRs: mostly-confident positives (the
    /// all-zero codeword) with a sprinkle of flipped, weak values.
    fn noisy_llrs(frames: usize, n: usize, flip_mod: usize) -> Vec<f64> {
        (0..frames * n)
            .map(|i| {
                let sign = if (i * 2654435761) % flip_mod < 5 {
                    -1.0
                } else {
                    1.0
                };
                sign * (0.8 + (i % 11) as f64 * 0.5)
            })
            .collect()
    }

    #[test]
    fn default_ladder_shape() {
        let cascade = CascadeDecoder::default();
        assert_eq!(cascade.cascade_config().min_sum.max_iterations, 4);
        assert!(cascade.cascade_config().min_sum.early_termination.is_none());
        assert_eq!(cascade.cascade_config().fixed_bp.max_iterations, 10);
        assert!(cascade.cascade_config().float_bp.is_none());
        assert!(cascade.stage3().is_none());
        assert_eq!(cascade.schedule_name(), "cascade");
    }

    #[test]
    fn with_budgets_clamps_and_builds_stage3() {
        let config = CascadeConfig::with_budgets(0, 0, Some(0));
        assert_eq!(config.min_sum.max_iterations, 1);
        assert_eq!(config.fixed_bp.max_iterations, 1);
        assert_eq!(config.float_bp.as_ref().unwrap().max_iterations, 1);
        let cascade = CascadeDecoder::new(config).unwrap();
        assert!(cascade.stage3().is_some());
    }

    #[test]
    fn clean_frames_never_escalate() {
        let compiled = compiled();
        let cascade = CascadeDecoder::default();
        let llrs = vec![8.0; 4 * compiled.n()];
        let outs = cascade
            .decode_batch(&compiled, LlrBatch::new(&llrs, compiled.n()).unwrap())
            .unwrap();
        assert!(outs.iter().all(|o| o.parity_satisfied));
        let stats = cascade.stats();
        assert_eq!(stats.stage_frames, [4, 0, 0]);
        assert_eq!(stats.escalations, 0);
        assert_eq!(stats.escalation_rate(), 0.0);
    }

    #[test]
    fn hopeless_frames_escalate_through_every_stage() {
        // A one-iteration Min-Sum budget on heavily corrupted LLRs fails its
        // syndrome, forcing escalation; a one-iteration stage 2 fails too,
        // reaching the float stage.
        let compiled = compiled();
        let cascade = CascadeDecoder::new(CascadeConfig::with_budgets(1, 1, Some(1))).unwrap();
        let llrs = noisy_llrs(3, compiled.n(), 7);
        let outs = cascade
            .decode_batch(&compiled, LlrBatch::new(&llrs, compiled.n()).unwrap())
            .unwrap();
        assert_eq!(outs.len(), 3);
        let stats = cascade.stats();
        assert_eq!(stats.stage_frames[0], 3);
        assert!(stats.stage_frames[1] > 0, "corrupted frames must escalate");
        assert_eq!(
            stats.escalations,
            stats.stage_frames[1] + stats.stage_frames[2]
        );
    }

    #[test]
    fn converged_frames_match_plain_min_sum_and_escalated_match_fixed_bp() {
        let compiled = compiled();
        let cascade = CascadeDecoder::default();
        let min_sum = LayeredDecoder::new(
            FixedMinSumArithmetic::default(),
            cascade.cascade_config().min_sum.clone(),
        )
        .unwrap();
        let fixed_bp = LayeredDecoder::new(
            FixedBpArithmetic::forward_backward(),
            cascade.cascade_config().fixed_bp.clone(),
        )
        .unwrap();

        // Three clean frames (stay at stage 1) interleaved with three heavily
        // corrupted ones (escalate).
        let frames = 6;
        let n = compiled.n();
        let hard = noisy_llrs(3, n, 21);
        let mut llrs = Vec::with_capacity(frames * n);
        for f in 0..3 {
            llrs.extend(std::iter::repeat_n(8.0, n));
            llrs.extend_from_slice(&hard[f * n..(f + 1) * n]);
        }
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        let outs = cascade.decode_batch(&compiled, batch).unwrap();
        let mut saw_converged = false;
        let mut saw_escalated = false;
        for (f, out) in outs.iter().enumerate() {
            let stage1 = min_sum.decode_compiled(&compiled, batch.frame(f)).unwrap();
            if stage1.parity_satisfied {
                saw_converged = true;
                assert_eq!(out, &stage1, "frame {f}: stage-1 convergence");
            } else {
                saw_escalated = true;
                let handoff: Vec<f64> = batch
                    .frame(f)
                    .iter()
                    .map(|&l| cascade.handoff_llr(l))
                    .collect();
                let stage2 = fixed_bp.decode_compiled(&compiled, &handoff).unwrap();
                assert_eq!(out, &stage2, "frame {f}: escalated to stage 2");
            }
        }
        assert!(
            saw_converged && saw_escalated,
            "test vector must exercise both paths"
        );
    }

    #[test]
    fn single_frame_decode_into_matches_batch() {
        let compiled = compiled();
        let cascade = CascadeDecoder::default();
        let llrs = noisy_llrs(1, compiled.n(), 41);
        let batch_out = cascade
            .decode_batch(&compiled, LlrBatch::new(&llrs, compiled.n()).unwrap())
            .unwrap();
        let single = cascade.decode_compiled(&compiled, &llrs).unwrap();
        assert_eq!(single, batch_out[0]);
    }

    #[test]
    fn handoff_llrs_round_trip_to_identical_quantized_codes() {
        let cascade = CascadeDecoder::default();
        let arith = Decoder::arithmetic(&cascade);
        for raw in [-40.0, -3.7, -0.06, 0.0, 0.06, 1.234, 31.74, 40.0] {
            let handoff = cascade.handoff_llr(raw);
            assert_eq!(
                arith.from_channel(handoff),
                arith.from_channel(raw),
                "handoff of {raw} must requantize identically"
            );
            assert_eq!(cascade.handoff_llr(handoff), handoff, "idempotent");
        }
    }

    #[test]
    fn detached_clone_counts_independently_but_shares_pools() {
        let compiled = compiled();
        let cascade = CascadeDecoder::default();
        let detached = cascade.detached_clone();
        let llrs = vec![8.0; compiled.n()];
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        cascade.decode_batch(&compiled, batch).unwrap();
        assert_eq!(cascade.stats().stage_frames[0], 1);
        assert_eq!(detached.stats().stage_frames[0], 0, "fresh counters");
        let plain = cascade.clone();
        detached.decode_batch(&compiled, batch).unwrap();
        assert_eq!(detached.stats().stage_frames[0], 1);
        assert_eq!(cascade.stats().stage_frames[0], 1);
        assert_eq!(
            plain.stats().stage_frames[0],
            1,
            "plain clones share counters"
        );
        // Workspace pools are shared by both clone flavours.
        assert_eq!(
            Decoder::workspace_pool(&cascade)
                .unwrap()
                .workspaces_created(),
            Decoder::workspace_pool(&detached)
                .unwrap()
                .workspaces_created()
        );
    }

    #[test]
    fn steady_state_cascade_reuses_buffers() {
        let compiled = compiled();
        let cascade = CascadeDecoder::new(CascadeConfig::with_budgets(1, 2, None)).unwrap();
        let mut ws = cascade.workspace_for(&compiled);
        let frames = 3;
        let llrs = noisy_llrs(frames, compiled.n(), 7);
        let mut outs = vec![DecodeOutput::empty(); frames];
        // Warm-up decode sizes every buffer (including the escalation path);
        // afterwards the workspace must be cascade-ready and stable.
        cascade
            .decode_group_into(&compiled, &llrs, &mut ws, &mut outs)
            .unwrap();
        assert!(ws.is_ready_for_cascade(&compiled, frames));
        let fingerprint = ws.cascade_fingerprint();
        for _ in 0..3 {
            cascade
                .decode_group_into(&compiled, &llrs, &mut ws, &mut outs)
                .unwrap();
        }
        assert_eq!(fingerprint, ws.cascade_fingerprint());
    }

    #[test]
    fn effort_ladder_skips_stage3_then_halves_stage2() {
        let compiled = compiled();
        let cascade = CascadeDecoder::new(CascadeConfig::with_budgets(1, 8, Some(2))).unwrap();
        assert_eq!(cascade.effort_level(), 0);
        assert!(cascade.set_effort_level(1));
        assert_eq!(cascade.effort_level(), 1);
        assert!(cascade.set_effort_level(200), "over-deep requests clamp");
        assert_eq!(cascade.effort_level(), 2);

        // At level 1 the float stage never runs: hopeless frames stop at
        // stage 2.
        cascade.set_effort_level(1);
        let llrs = noisy_llrs(3, compiled.n(), 7);
        let batch = LlrBatch::new(&llrs, compiled.n()).unwrap();
        cascade.decode_batch(&compiled, batch).unwrap();
        let stats = cascade.stats();
        assert!(stats.stage_frames[1] > 0, "vector must escalate");
        assert_eq!(stats.stage_frames[2], 0, "level 1 drops the float stage");

        // At level 2 the escalated output matches a half-budget stage-2
        // decoder run directly on the handoff LLRs.
        cascade.set_effort_level(2);
        let outs = cascade.decode_batch(&compiled, batch).unwrap();
        let half_bp = LayeredDecoder::new(
            FixedBpArithmetic::forward_backward(),
            DecoderConfig {
                max_iterations: 4,
                ..cascade.cascade_config().fixed_bp.clone()
            },
        )
        .unwrap();
        let handoff: Vec<f64> = batch
            .frame(0)
            .iter()
            .map(|&l| cascade.handoff_llr(l))
            .collect();
        let min_sum_out = cascade
            .stage1()
            .decode_compiled(&compiled, batch.frame(0))
            .unwrap();
        if !min_sum_out.parity_satisfied {
            let expect = half_bp.decode_compiled(&compiled, &handoff).unwrap();
            assert_eq!(outs[0], expect, "level 2 runs the half-budget stage 2");
        }

        // Restoring level 0 restores the full ladder.
        cascade.set_effort_level(0);
        assert_eq!(cascade.effort_level(), 0);
        let detached = cascade.detached_clone();
        cascade.set_effort_level(2);
        assert_eq!(detached.effort_level(), 0, "detached clones degrade alone");
        let plain = cascade.clone();
        assert_eq!(plain.effort_level(), 2, "plain clones share the level");
    }

    #[test]
    fn group_shape_is_validated() {
        let compiled = compiled();
        let cascade = CascadeDecoder::default();
        let mut ws = cascade.workspace_for(&compiled);
        let llrs = vec![1.0; compiled.n()];
        let mut outs = vec![DecodeOutput::empty(); 2];
        assert!(matches!(
            cascade.decode_group_into(&compiled, &llrs, &mut ws, &mut outs),
            Err(DecodeError::BatchShape { .. })
        ));
    }
}
