//! Saturating fixed-point LLR combining for HARQ chase / incremental
//! redundancy.
//!
//! Every retransmission of a frame adds channel information: under BPSK/AWGN
//! the optimal combine is simply LLR addition, position by position (chase
//! combining when transmissions repeat the same bits, incremental redundancy
//! when a rate-compatible puncture pattern rotates which bits each
//! redundancy version observes — punctured positions arrive as erasure LLRs
//! of `0.0` and add nothing).
//!
//! The kernel operates in the quantiser's **integer code space** and splits
//! the combine into two deliberately separate steps:
//!
//! 1. **Wide accumulation** ([`HarqCombiner::accumulate`]): incoming 8-bit
//!    codes add into an `i32` accumulator per position, *without* clamping.
//!    Integer addition is exact, commutative and associative, so the
//!    accumulated soft buffer is **bit-identical whatever order
//!    retransmissions arrive in** — the property the serving tier's
//!    property tests pin. (An `i32` holds > 16 million max-magnitude 8-bit
//!    codes; real HARQ stops after a handful, and the adds saturate at the
//!    `i32` rails rather than wrapping should something pathological loop.)
//! 2. **Saturation on read** ([`HarqCombiner::saturate_into`] /
//!    [`HarqCombiner::combine_saturated`]): only when a decode needs the
//!    combined LLRs is the wide accumulator clamped to the quantiser's
//!    symmetric code range — one clamp of the exact sum, reusing the lane
//!    kernels' clamped-add panel op ([`crate::arith::simd::add_lanes_clamp`],
//!    so the pass runs on the same AVX2/SSE4.1/scalar dispatch tier as the
//!    decoder hot loops). Clamping once at the end is what keeps saturation
//!    from breaking order independence: per-step saturating adds are *not*
//!    associative at the rails, a single saturation of the exact sum is.
//!
//! The kernel is deliberately quantiser-agnostic plumbing: it takes the
//! integer code range and leaves float↔code conversion to
//! `ldpc_channel::quantize::LlrQuantizer`, whose AGC ingest path the serving
//! layer already routes every frame through.

use crate::arith::simd::{self, SimdLevel};

/// Fixed-point HARQ LLR combiner over a symmetric integer code range
/// `[-max_code, +max_code]` (the range of the serving quantiser, e.g. ±127
/// for the paper's 8-bit datapath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarqCombiner {
    max_code: i32,
    level: SimdLevel,
}

impl HarqCombiner {
    /// A combiner saturating to `[-max_code, +max_code]`, running on the
    /// process-wide active SIMD tier.
    ///
    /// # Panics
    ///
    /// Panics unless `max_code > 0`.
    #[must_use]
    pub fn new(max_code: i32) -> Self {
        Self::with_level(max_code, simd::active_level())
    }

    /// As [`new`](HarqCombiner::new) with an explicit kernel tier (the tiers
    /// are bit-identical; this exists for tests and benchmarks).
    #[must_use]
    pub fn with_level(max_code: i32, level: SimdLevel) -> Self {
        assert!(max_code > 0, "combiner needs a positive code range");
        HarqCombiner { max_code, level }
    }

    /// Largest code magnitude the saturated output can carry.
    #[must_use]
    pub fn max_code(&self) -> i32 {
        self.max_code
    }

    /// Adds one transmission's quantised codes into the wide accumulator,
    /// element-wise and without clamping (exact, so order-independent).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn accumulate(&self, acc: &mut [i32], incoming: &[i32]) {
        assert_eq!(acc.len(), incoming.len(), "combine length mismatch");
        for (a, &c) in acc.iter_mut().zip(incoming) {
            *a = a.saturating_add(c);
        }
    }

    /// Writes the saturated form of the wide accumulator into `out`:
    /// `out[i] = clamp(acc[i], -max_code, max_code)` — the codes a
    /// fixed-point decode consumes.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn saturate_into(&self, acc: &[i32], out: &mut [i32]) {
        // clamp(a + 0) panel op: the zero summand makes the lane kernels'
        // fused add-clamp a pure saturation pass on the SIMD tier.
        self.combine_saturated(acc, &vec![0; acc.len()], out);
    }

    /// Fused combine-and-read: `out[i] = clamp(acc[i] + incoming[i])`
    /// without touching `acc` — the decode-facing view of "the stored buffer
    /// plus this retransmission", produced in one clamped-add panel pass.
    /// Callers that keep the buffer also call
    /// [`accumulate`](HarqCombiner::accumulate); callers probing a
    /// hypothetical combine (or evicted state) need only this.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn combine_saturated(&self, acc: &[i32], incoming: &[i32], out: &mut [i32]) {
        simd::add_lanes_clamp(
            self.level,
            -self.max_code,
            self.max_code,
            acc,
            incoming,
            out,
        );
    }

    /// Offline reference combine: accumulates every transmission's codes and
    /// returns the saturated result — exactly what a serving-layer soft
    /// buffer holds after the same transmissions, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the transmissions differ in length or none are given.
    #[must_use]
    pub fn combine_all(&self, transmissions: &[&[i32]]) -> Vec<i32> {
        let first = transmissions.first().expect("at least one transmission");
        let mut acc = vec![0i32; first.len()];
        for tx in transmissions {
            self.accumulate(&mut acc, tx);
        }
        let mut out = vec![0i32; acc.len()];
        self.saturate_into(&acc, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(pattern: &[i32], len: usize) -> Vec<i32> {
        (0..len).map(|i| pattern[i % pattern.len()]).collect()
    }

    #[test]
    fn accumulation_is_exact_and_order_independent() {
        let combiner = HarqCombiner::new(127);
        let a = tx(&[100, -100, 3, 127, -127], 64);
        let b = tx(&[60, -80, 1, 127, -5], 64);
        let c = tx(&[-90, 50, -4, 127, 127], 64);
        let orders: [[&[i32]; 3]; 3] = [[&a, &b, &c], [&c, &b, &a], [&b, &c, &a]];
        let reference = combiner.combine_all(&orders[0]);
        for order in &orders[1..] {
            assert_eq!(combiner.combine_all(order), reference);
        }
        // The exact sum saturates once: 127+127+127 → 127, -127-127 partial
        // sums never distort non-saturating final values.
        assert_eq!(reference[3], 127);
    }

    #[test]
    fn single_saturation_beats_stepwise_clamping_at_the_rails() {
        // The canonical associativity failure of per-step clamping:
        // clamp(clamp(120 + 10) - 10) = 117 but the exact sum is 120.
        let combiner = HarqCombiner::new(127);
        let mut acc = vec![120i32];
        combiner.accumulate(&mut acc, &[10]);
        combiner.accumulate(&mut acc, &[-10]);
        let mut out = vec![0i32];
        combiner.saturate_into(&acc, &mut out);
        assert_eq!(out, vec![120]);
    }

    #[test]
    fn combine_saturated_matches_accumulate_then_saturate() {
        let combiner = HarqCombiner::new(127);
        let stored = tx(&[90, -120, 7, 0, -31], 48);
        let incoming = tx(&[50, -50, -7, 127, 2], 48);
        let mut fused = vec![0i32; 48];
        combiner.combine_saturated(&stored, &incoming, &mut fused);
        let mut acc = stored.clone();
        combiner.accumulate(&mut acc, &incoming);
        let mut stepped = vec![0i32; 48];
        combiner.saturate_into(&acc, &mut stepped);
        assert_eq!(fused, stepped);
        assert!(fused.iter().all(|&c| c.abs() <= 127));
    }

    #[test]
    fn erasures_add_nothing() {
        let combiner = HarqCombiner::new(127);
        let stored = tx(&[13, -90, 127], 24);
        let erasures = vec![0i32; 24];
        let mut out = vec![0i32; 24];
        combiner.combine_saturated(&stored, &erasures, &mut out);
        assert_eq!(out, stored, "an all-erasure retransmission is a no-op");
    }

    #[test]
    fn kernel_tiers_are_bit_identical() {
        let acc = tx(&[250, -4000, 127, -1, 90], 100);
        let inc = tx(&[-120, 90, 127, 1, -3], 100);
        let reference = {
            let mut out = vec![0i32; 100];
            HarqCombiner::with_level(127, SimdLevel::Scalar)
                .combine_saturated(&acc, &inc, &mut out);
            out
        };
        let mut out = vec![0i32; 100];
        HarqCombiner::new(127).combine_saturated(&acc, &inc, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic(expected = "positive code range")]
    fn zero_range_is_rejected() {
        let _ = HarqCombiner::new(0);
    }
}
