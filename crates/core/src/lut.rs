//! 3-bit lookup tables for the non-linear correction terms.
//!
//! In hardware the correction terms `log(1 + e^{-x})` and `log(1 − e^{-x})` of
//! Eq. (2) are approximated with small lookup tables — the paper uses 3-bit
//! (8-entry) LUTs following Hu et al. \[9\]. [`CorrectionLut`] reproduces that
//! approximation bit-accurately: the input magnitude (a fixed-point code) is
//! mapped to one of `2^address_bits` regions and each region returns a
//! pre-quantised correction code.

use crate::arith::simd::{self, SimdLevel};
use crate::fixedpoint::FixedFormat;

/// Which correction term the table approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectionKind {
    /// `log(1 + e^{-x})`, used by the `f(·)` (⊞) unit.
    Plus,
    /// `−log(1 − e^{-x})` (stored as a non-negative magnitude), used by the
    /// `g(·)` (⊟) unit.
    Minus,
}

/// A small lookup table approximating one correction term in the fixed-point
/// code domain.
///
/// Besides the branchy scalar [`CorrectionLut::lookup`] (kept as the
/// bit-identity reference), the table carries two branch-free derived forms
/// used by the hand-tuned lane kernels:
///
/// * `extended` — the region table with the saturation entry appended, so a
///   lookup becomes `extended[min(x / region_width, extended.len() − 1)]`:
///   a clamped, saturating index instead of a per-element region branch;
/// * `dense` — when the covered input range is small (it is for every
///   practical format: `2^address_bits · region_width + 1` codes, 129 entries
///   for the paper's Q6.2/3-bit operating point), the table expanded to one
///   entry *per input code*, so the gather is `dense[min(x, dense.len() − 1)]`
///   with no division at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionLut {
    kind: CorrectionKind,
    format: FixedFormat,
    address_bits: u32,
    /// Input codes `>= cutoff` return the saturation entry (last table value).
    region_width: i32,
    table: Vec<i32>,
    /// `table` plus the saturation entry: region lookups clamp into this.
    extended: Vec<i32>,
    /// Per-input-code expansion of the whole table (empty above
    /// [`CorrectionLut::DENSE_LIMIT`]); index clamps to the last entry.
    dense: Vec<i32>,
}

impl CorrectionLut {
    /// Builds a LUT with `address_bits` address bits (the paper uses 3) for
    /// the given message format.
    ///
    /// The input range `[0, x_max)` covered by the table is chosen so that the
    /// correction term has decayed below half an LSB at `x_max`; beyond the
    /// table the `Plus` correction returns 0 and the `Minus` correction
    /// returns its last (smallest) entry.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits` is 0 or greater than 8.
    #[must_use]
    pub fn new(kind: CorrectionKind, format: FixedFormat, address_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&address_bits),
            "address_bits must be in 1..=8"
        );
        let entries = 1usize << address_bits;
        // Cover x in [0, 2.0): beyond 2.0 both corrections are below 0.13,
        // i.e. at or below one LSB of the default Q6.2 format.
        let covered_range = 2.0;
        let region_width_real = covered_range / entries as f64;
        // Region width in codes (at least one code per region).
        let region_width = ((region_width_real / format.step()).round() as i32).max(1);
        let table = (0..entries)
            .map(|i| {
                let value = match kind {
                    // Evaluate log(1+e^-x) at the centre of each region
                    // (minimises the absolute approximation error).
                    CorrectionKind::Plus => {
                        let x = (i as f64 + 0.5) * region_width as f64 * format.step();
                        crate::boxplus::correction_plus(x)
                    }
                    // Evaluate −log(1−e^-x) at the *end* of each region: the
                    // function diverges at 0, and over-estimating it would
                    // inject over-confident extrinsic messages exactly at the
                    // weakest bit positions (where the ⊟ extraction sees a
                    // near-zero |S|−|λ| difference). Under-estimation merely
                    // slows convergence, so the conservative edge is used.
                    CorrectionKind::Minus => {
                        let x = (i as f64 + 1.0) * region_width as f64 * format.step();
                        crate::boxplus::correction_minus(x)
                    }
                };
                format.quantize(value)
            })
            .collect::<Vec<i32>>();
        let saturation = match kind {
            CorrectionKind::Plus => 0,
            CorrectionKind::Minus => *table.last().expect("table is non-empty"),
        };
        let mut extended = table.clone();
        extended.push(saturation);
        // Expand to one entry per input code when the covered range is small:
        // index `min(x, len − 1)` then reproduces `lookup` for every x ≥ 0
        // (all codes at or beyond the cutoff share the saturation entry).
        let cutoff = region_width as usize * entries;
        let dense = if cutoff < Self::DENSE_LIMIT {
            (0..=cutoff)
                .map(|x| extended[(x / region_width as usize).min(entries)])
                .collect()
        } else {
            Vec::new()
        };
        CorrectionLut {
            kind,
            format,
            address_bits,
            region_width,
            table,
            extended,
            dense,
        }
    }

    /// The standard pair of 3-bit LUTs used by the paper's SISO decoder for a
    /// given message format: `(plus, minus)`.
    #[must_use]
    pub fn standard_pair(format: FixedFormat) -> (CorrectionLut, CorrectionLut) {
        (
            CorrectionLut::new(CorrectionKind::Plus, format, 3),
            CorrectionLut::new(CorrectionKind::Minus, format, 3),
        )
    }

    /// Which correction term this table approximates.
    #[must_use]
    pub fn kind(&self) -> CorrectionKind {
        self.kind
    }

    /// Number of address bits.
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Number of table entries, `2^address_bits`.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The raw table contents (correction codes).
    #[must_use]
    pub fn table(&self) -> &[i32] {
        &self.table
    }

    /// Looks up the correction code for a non-negative input code.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `x_code` is negative.
    #[must_use]
    pub fn lookup(&self, x_code: i32) -> i32 {
        debug_assert!(x_code >= 0, "LUT input must be a magnitude");
        let region = (x_code / self.region_width) as usize;
        if region < self.table.len() {
            self.table[region]
        } else {
            match self.kind {
                CorrectionKind::Plus => 0,
                // The Minus correction saturates to its smallest table entry;
                // it never reaches exactly zero for finite inputs.
                CorrectionKind::Minus => *self.table.last().expect("table is non-empty"),
            }
        }
    }

    /// Expanded-table budget for the dense (division-free) gather form. Any
    /// format with a per-code region resolution up to this many covered codes
    /// gets the dense table; coarser-than-usual formats (very many fractional
    /// bits) fall back to the divide-then-clamp form, still branch-free.
    pub const DENSE_LIMIT: usize = 1 << 16;

    /// The per-input-code dense expansion of the table (empty for formats
    /// past [`CorrectionLut::DENSE_LIMIT`]). This is the array the explicit
    /// SIMD tier hardware-gathers through (`dense[min(x, last)]`, index
    /// clamp in unsigned space); exposed so kernels and tests can address
    /// it directly.
    #[must_use]
    pub fn dense_table(&self) -> &[i32] {
        &self.dense
    }

    /// Branch-free slice lookup: `out[i] = lookup(xs[i])` for non-negative
    /// input codes, computed as a clamped saturating index (no per-element
    /// region branch) — `dense[min(x, last)]` when the dense expansion exists,
    /// `extended[min(x / region_width, last)]` otherwise. Dispatches to the
    /// process-wide kernel tier ([`simd::active_level`]): a true hardware
    /// gather (`vpgatherdd`) on AVX2, the scalar clamped-index loop
    /// elsewhere. [`CorrectionLut::lookup`] is the scalar bit-identity
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length; debug-asserts every input is a
    /// non-negative magnitude.
    pub fn lookup_slice(&self, xs: &[i32], out: &mut [i32]) {
        self.lookup_slice_with(simd::active_level(), xs, out);
    }

    /// [`CorrectionLut::lookup_slice`] pinned to an explicit kernel tier
    /// (clamped to the detected CPU capability) — the form the bit-identity
    /// sweeps and the `simd_vs_scalar` benches drive.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length; debug-asserts every input is a
    /// non-negative magnitude.
    pub fn lookup_slice_with(&self, level: SimdLevel, xs: &[i32], out: &mut [i32]) {
        assert_eq!(xs.len(), out.len(), "lookup_slice length mismatch");
        debug_assert!(xs.iter().all(|&x| x >= 0), "LUT input must be a magnitude");
        if self.dense.is_empty() {
            let last = self.extended.len() - 1;
            let width = self.region_width;
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = self.extended[((x / width) as usize).min(last)];
            }
        } else {
            simd::lut_gather_dense(level, &self.dense, xs, out);
        }
    }

    /// In-place [`CorrectionLut::lookup_slice`]: `xs[i] = lookup(xs[i])`,
    /// dispatched to the process-wide kernel tier.
    ///
    /// # Panics
    ///
    /// Debug-asserts every input is a non-negative magnitude.
    pub fn map_slice(&self, xs: &mut [i32]) {
        self.map_slice_with(simd::active_level(), xs);
    }

    /// [`CorrectionLut::map_slice`] pinned to an explicit kernel tier
    /// (clamped to the detected CPU capability).
    ///
    /// # Panics
    ///
    /// Debug-asserts every input is a non-negative magnitude.
    pub fn map_slice_with(&self, level: SimdLevel, xs: &mut [i32]) {
        debug_assert!(xs.iter().all(|&x| x >= 0), "LUT input must be a magnitude");
        if self.dense.is_empty() {
            let last = self.extended.len() - 1;
            let width = self.region_width;
            for x in xs.iter_mut() {
                *x = self.extended[((*x / width) as usize).min(last)];
            }
        } else {
            simd::lut_map_dense(level, &self.dense, xs);
        }
    }

    /// The exact (unquantised) correction this table approximates, for
    /// accuracy analysis.
    #[must_use]
    pub fn exact(&self, x: f64) -> f64 {
        match self.kind {
            CorrectionKind::Plus => crate::boxplus::correction_plus(x),
            CorrectionKind::Minus => crate::boxplus::correction_minus(x),
        }
    }

    /// Worst-case absolute approximation error (in LLR units) over the covered
    /// input range, sampled at every representable input code.
    #[must_use]
    pub fn max_error(&self) -> f64 {
        let max_input = self.region_width * self.table.len() as i32 * 2;
        (1..=max_input)
            .map(|code| {
                let x = self.format.dequantize(code);
                (self.exact(x) - self.format.dequantize(self.lookup(code))).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pair_is_3_bit() {
        let (plus, minus) = CorrectionLut::standard_pair(FixedFormat::default());
        assert_eq!(plus.address_bits(), 3);
        assert_eq!(minus.address_bits(), 3);
        assert_eq!(plus.entries(), 8);
        assert_eq!(minus.entries(), 8);
        assert_eq!(plus.kind(), CorrectionKind::Plus);
        assert_eq!(minus.kind(), CorrectionKind::Minus);
    }

    #[test]
    fn plus_table_is_monotone_non_increasing_and_ends_near_zero() {
        let (plus, _) = CorrectionLut::standard_pair(FixedFormat::default());
        let t = plus.table();
        assert!(t.windows(2).all(|w| w[0] >= w[1]));
        assert!(t[0] >= 2, "log(2) ≈ 0.69 is roughly 3 LSBs in Q6.2");
        assert!(*t.last().unwrap() <= 1);
        // Beyond the covered range the correction is zero.
        assert_eq!(plus.lookup(1000), 0);
    }

    #[test]
    fn minus_table_is_monotone_and_saturates() {
        let (_, minus) = CorrectionLut::standard_pair(FixedFormat::default());
        let t = minus.table();
        assert!(t.windows(2).all(|w| w[0] >= w[1]));
        assert!(t[0] > t[t.len() - 1]);
        // Far inputs return the last entry, not zero: g keeps a small bias.
        assert_eq!(minus.lookup(1000), *t.last().unwrap());
    }

    #[test]
    fn lookup_matches_exact_value_within_tolerance() {
        let format = FixedFormat::default();
        let (plus, minus) = CorrectionLut::standard_pair(format);
        // Within the covered range the 3-bit LUT should be within ~0.4 of the
        // exact correction (coarse but sufficient, per Hu et al.).
        assert!(plus.max_error() < 0.45, "plus error {}", plus.max_error());
        // The minus correction diverges at 0, so measure from 0.5 onwards.
        for code in 2..16 {
            let x = format.dequantize(code);
            let err = (minus.exact(x) - format.dequantize(minus.lookup(code))).abs();
            assert!(err < 0.8, "minus error {err} at x={x}");
        }
    }

    #[test]
    fn more_address_bits_reduce_error() {
        let format = FixedFormat::new(10, 4);
        let coarse = CorrectionLut::new(CorrectionKind::Plus, format, 2);
        let fine = CorrectionLut::new(CorrectionKind::Plus, format, 5);
        assert!(fine.max_error() <= coarse.max_error());
    }

    #[test]
    #[should_panic(expected = "address_bits")]
    fn rejects_zero_address_bits() {
        let _ = CorrectionLut::new(CorrectionKind::Plus, FixedFormat::default(), 0);
    }

    #[test]
    fn lookup_slice_matches_scalar_lookup_everywhere() {
        // The branch-free clamped-index forms must be bit-identical to the
        // branchy scalar reference over the whole non-negative input range
        // (far past the cutoff), for both kinds and several formats.
        for format in [
            FixedFormat::default(),
            FixedFormat::new(6, 1),
            FixedFormat::new(10, 4),
        ] {
            for kind in [CorrectionKind::Plus, CorrectionKind::Minus] {
                let lut = CorrectionLut::new(kind, format, 3);
                assert!(!lut.dense.is_empty(), "practical formats go dense");
                let xs: Vec<i32> = (0..format.max_code().min(4096)).collect();
                let mut out = vec![0i32; xs.len()];
                lut.lookup_slice(&xs, &mut out);
                let mut inplace = xs.clone();
                lut.map_slice(&mut inplace);
                for (i, &x) in xs.iter().enumerate() {
                    assert_eq!(out[i], lut.lookup(x), "{kind:?} {format} at {x}");
                    assert_eq!(inplace[i], lut.lookup(x));
                }
            }
        }
    }

    #[test]
    fn oversized_formats_fall_back_to_the_divide_form() {
        // frac_bits 14 → region width ≈ 4096 codes → cutoff 32769 ≤ limit;
        // frac_bits 16 → cutoff ≈ 131072 > limit → no dense table. Both paths
        // must agree with the scalar reference.
        let format = FixedFormat::new(24, 16);
        let lut = CorrectionLut::new(CorrectionKind::Plus, format, 3);
        assert!(lut.dense.is_empty(), "past the dense budget");
        let xs: Vec<i32> = (0..200_000).step_by(977).collect();
        let mut out = vec![0i32; xs.len()];
        lut.lookup_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o, lut.lookup(x), "divide form diverged at {x}");
        }
    }

    #[test]
    fn region_width_scales_with_format() {
        let lo = CorrectionLut::new(CorrectionKind::Plus, FixedFormat::new(8, 2), 3);
        let hi = CorrectionLut::new(CorrectionKind::Plus, FixedFormat::new(10, 4), 3);
        // Finer resolution => more codes per region.
        assert!(hi.region_width >= lo.region_width);
    }
}
